"""The fault injector: the flash array's oracle for what goes wrong.

:class:`FlashMemory` consults one injector at every program, read and
erase.  The injector rolls its own :class:`random.Random` (seeded from
the plan), so a fault sequence is a pure function of (plan, operation
order) — rerunning a workload reproduces every fault at the same
operation, which is what makes fault regressions debuggable.

The injector also owns the power-cut countdown.  Power loss is raised at
the *start* of the operation on which power dies, before any state
mutates: the flash then holds exactly the operations that completed,
mirroring how a real controller's NAND state looks to a post-crash scan.
Individual program+invalidate pairs in the FTLs are not split by a cut
because invalidation is out-of-band bookkeeping (derived from page
sequence numbers on real hardware), not a separate flash operation.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ConfigError, PowerLossError
from .plan import FaultPlan


class FaultInjector:
    """Deterministic per-operation fault oracle for one flash array."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._rng = random.Random(self.plan.seed)
        #: flash operations that have started (and not been cut short).
        self.ops_seen = 0
        self._cut_at: Optional[int] = self.plan.power_cut_after_ops
        # injected-fault ground truth, for tests and reports
        self.injected_read_errors = 0
        self.injected_program_failures = 0
        self.injected_erase_failures = 0
        self.power_cuts = 0

    # ------------------------------------------------------------------
    # Power loss
    # ------------------------------------------------------------------
    @property
    def power_loss_armed(self) -> bool:
        """True while a power cut is pending."""
        return self._cut_at is not None

    def arm_power_loss(self, after_ops: int) -> None:
        """Cut power after ``after_ops`` more flash operations complete.

        ``after_ops=0`` means the very next operation dies.  Arming is
        relative to now, so a harness can build and prefill an FTL first
        and only then start the countdown.
        """
        if after_ops < 0:
            raise ConfigError("after_ops must be non-negative")
        self._cut_at = self.ops_seen + after_ops

    def disarm_power_loss(self) -> None:
        """Cancel a pending power cut (the harness 'reconnects power')."""
        self._cut_at = None

    def on_operation(self) -> None:
        """Account one flash operation; raise if power dies on it.

        Called by the flash array at the start of every program attempt,
        read attempt and erase, before any state changes.
        """
        if self._cut_at is not None and self.ops_seen >= self._cut_at:
            self.power_cuts += 1
            raise PowerLossError(
                f"power lost after {self.ops_seen} flash operations")
        self.ops_seen += 1

    # ------------------------------------------------------------------
    # Media faults
    # ------------------------------------------------------------------
    def read_attempt_fails(self) -> bool:
        """Roll one read attempt; True injects a transient ECC error."""
        if self.plan.read_error_rate <= 0.0:
            return False
        if self._rng.random() < self.plan.read_error_rate:
            self.injected_read_errors += 1
            return True
        return False

    def program_fails(self) -> bool:
        """Roll one program attempt; True marks the target page bad."""
        if self.plan.program_fail_rate <= 0.0:
            return False
        if self._rng.random() < self.plan.program_fail_rate:
            self.injected_program_failures += 1
            return True
        return False

    def erase_fails(self) -> bool:
        """Roll one erase; True retires the block."""
        if self.plan.erase_fail_rate <= 0.0:
            return False
        if self._rng.random() < self.plan.erase_fail_rate:
            self.injected_erase_failures += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(ops_seen={self.ops_seen}, "
                f"armed={self.power_loss_armed}, "
                f"read_errors={self.injected_read_errors}, "
                f"program_failures={self.injected_program_failures}, "
                f"erase_failures={self.injected_erase_failures})")
