"""Power-loss torture harness: cut power everywhere, recover everywhere.

The paper's §1 motivates demand-based FTLs partly by the "vulnerability
to a power failure" of large RAM mapping caches.  This harness turns the
simulator's crash-recovery story from a report into a verified
guarantee: it replays a workload against a fresh FTL, cuts power after
the N-th flash operation for a sweep of N, rebuilds the mapping state
with :func:`repro.recovery.scan_flash`, and asserts two invariants at
every cut point:

* **invalidate-before-publish** — the scan is unambiguous: at most one
  valid physical page claims each logical page (``scan_flash`` raises
  otherwise).  This is what the program-then-invalidate pairing in
  every write path guarantees.
* **read-your-writes** — every *acknowledged* operation survives the
  crash: an acknowledged write's LPN is still mapped, an acknowledged
  TRIM's LPN stays unmapped.  The single in-flight operation (the one
  the cut interrupted) is exempt, exactly like a real disk's contract.

The cut fires at the *start* of a flash operation, so the recovered
state is precisely "everything that completed".  GC, merges and
translation-page writebacks all run under the same countdown, which is
what makes the sweep a torture test: cut points land inside collections,
cache writebacks and hybrid merges, not just between user requests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimulationConfig
from ..errors import FTLError, PowerLossError
from ..ftl import make_ftl
from ..recovery import RecoveredState, scan_flash
from ..types import Op, Request, UNMAPPED

#: one page-granular workload step: (operation, LPN)
PageOp = Tuple[Op, int]


def default_ops(count: int, logical_pages: int, seed: int = 0,
                write_ratio: float = 0.7,
                trim_ratio: float = 0.0) -> List[PageOp]:
    """A deterministic random page-op workload for torture runs.

    ``trim_ratio`` defaults to zero because the block-mapped FTLs
    (``block``, ``hybrid``) reject TRIM; page-level sweeps can enable it.
    """
    rng = random.Random(seed)
    ops: List[PageOp] = []
    for _ in range(count):
        roll = rng.random()
        if roll < trim_ratio:
            op = Op.TRIM
        elif roll < trim_ratio + write_ratio:
            op = Op.WRITE
        else:
            op = Op.READ
        ops.append((op, rng.randrange(logical_pages)))
    return ops


def default_cut_points(count: int = 50, start: int = 1,
                       stride: int = 7) -> List[int]:
    """An arithmetic sweep of flash-operation counts to cut power at."""
    return [start + i * stride for i in range(count)]


@dataclass(frozen=True)
class CutOutcome:
    """What one torture run observed."""

    #: flash operations allowed before the cut
    cut_after: int
    #: True if power actually died (False: the workload finished first)
    fired: bool
    #: page ops acknowledged before the cut
    ops_acknowledged: int
    #: LPNs with a recovered mapping after the scan
    recovered_pages: int
    #: translation pages recovered into the GTD
    recovered_translation_pages: int


@dataclass
class TortureReport:
    """Aggregate of a whole cut-point sweep for one FTL."""

    ftl_name: str
    outcomes: List[CutOutcome]

    @property
    def cuts_fired(self) -> int:
        """Sweep points at which power actually died mid-workload."""
        return sum(1 for outcome in self.outcomes if outcome.fired)

    @property
    def cut_points(self) -> List[int]:
        """The swept cut points, in order."""
        return [outcome.cut_after for outcome in self.outcomes]


def verify_crash_state(flash, logical_pages: int,
                       acked: Dict[int, Op],
                       in_flight_lpn: Optional[int] = None
                       ) -> RecoveredState:
    """Scan crashed flash and enforce the acknowledged-ops contract.

    ``acked`` maps each LPN to the last acknowledged WRITE/TRIM on it;
    ``in_flight_lpn`` names the page whose operation the cut interrupted
    (its durability is legitimately undefined).  Raises
    :class:`~repro.errors.FTLError` on any violation; the scan itself
    raises on duplicate or out-of-range claims.
    """
    state = scan_flash(flash, logical_pages)
    for lpn, last_op in acked.items():
        if lpn == in_flight_lpn:
            continue
        mapped = state.data_mapping[lpn] != UNMAPPED
        if last_op is Op.WRITE and not mapped:
            raise FTLError(
                f"acknowledged write of LPN {lpn} lost after power cut")
        if last_op is Op.TRIM and mapped:
            raise FTLError(
                f"acknowledged TRIM of LPN {lpn} resurrected after "
                "power cut")
    return state


def run_with_cut(ftl_name: str, config: SimulationConfig,
                 ops: Sequence[PageOp], cut_after: int) -> CutOutcome:
    """One torture run: replay ``ops``, cut power, recover, verify.

    The FTL is built (and prefilled) first; the countdown starts only
    when the workload does, so every sweep point lands inside the
    measured traffic.
    """
    ftl = make_ftl(ftl_name, config)
    injector = ftl.flash.injector
    injector.arm_power_loss(cut_after)
    acked: Dict[int, Op] = {}
    acknowledged = 0
    in_flight: Optional[int] = None
    fired = False
    try:
        for op, lpn in ops:
            in_flight = lpn
            if op is Op.WRITE:
                ftl.write_page(lpn)
                acked[lpn] = Op.WRITE
            elif op is Op.READ:
                ftl.read_page(lpn)
            else:
                ftl.serve_request(
                    Request(arrival=0.0, op=Op.TRIM, lpn=lpn, npages=1))
                acked[lpn] = Op.TRIM
            in_flight = None
            acknowledged += 1
    except PowerLossError:
        fired = True
    injector.disarm_power_loss()
    state = verify_crash_state(
        ftl.flash, config.ssd.logical_pages, acked,
        in_flight_lpn=in_flight if fired else None)
    return CutOutcome(
        cut_after=cut_after,
        fired=fired,
        ops_acknowledged=acknowledged,
        recovered_pages=state.mapped_pages(),
        recovered_translation_pages=len(state.gtd),
    )


def torture_sweep(ftl_name: str, config: SimulationConfig,
                  ops: Optional[Sequence[PageOp]] = None,
                  cut_points: Optional[Sequence[int]] = None,
                  seed: int = 0) -> TortureReport:
    """Sweep power cuts over a workload; raise on any invariant break.

    Every cut point replays the same workload against a fresh FTL, so
    outcomes are independent and deterministic.  Returns the per-cut
    observations for reporting; all verification happens inline.
    """
    if ops is None:
        ops = default_ops(400, config.ssd.logical_pages, seed=seed)
    if cut_points is None:
        cut_points = default_cut_points()
    outcomes = [run_with_cut(ftl_name, config, ops, cut_after)
                for cut_after in cut_points]
    return TortureReport(ftl_name=ftl_name, outcomes=outcomes)
