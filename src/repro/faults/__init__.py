"""Fault injection and reliability testing for the NAND substrate.

The paper motivates TPFTL partly by the vulnerability of large RAM
mapping caches to power failure (§1); this package makes that concern —
and the rest of the NAND failure model — testable:

* :class:`FaultPlan` / :class:`FaultInjector` — deterministic, seedable
  injection of transient read errors, program failures and erase
  failures, consulted by :class:`~repro.flash.FlashMemory` on every
  operation.
* :mod:`repro.faults.powerloss` — a torture harness that cuts power
  after the N-th flash operation for a sweep of N, reconstructs state
  with :func:`repro.recovery.scan_flash`, and checks crash-consistency
  invariants (imported explicitly, not re-exported here, because it
  depends on the FTL layer).
"""

from .injector import FaultInjector
from .plan import FaultPlan

__all__ = ["FaultPlan", "FaultInjector"]
