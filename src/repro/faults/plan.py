"""The fault plan: a declarative, seedable description of NAND faults.

A :class:`FaultPlan` says *what can go wrong and how often*; the
:class:`~repro.faults.injector.FaultInjector` built from it decides
*when* each fault fires, deterministically from the seed and the order
of flash operations.  Keeping the plan a frozen dataclass means a run is
reproducible from its configuration alone, and plans can be embedded in
:class:`~repro.config.SSDConfig` (which is hashed as an experiment key).

Rates follow the failure modes NAND datasheets specify:

* **read errors** — transient bit flips; corrected by ECC retries with
  exponential backoff, uncorrectable only if the retry budget runs out;
* **program failures** — a page fails to program; the page is marked
  bad and the write moves to the next programmable page;
* **erase failures** — a block fails to erase and is retired (the
  classic grown-bad-block event).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and budgets of every injectable fault class.

    All rates are per-operation probabilities in ``[0, 1]``.  The plan
    with every rate zero and no power cut is a no-op; the flash fast-
    paths around the injector in that case.
    """

    #: RNG seed; two injectors with equal plans inject identical faults
    #: when consulted in the same operation order.
    seed: int = 0
    #: probability a single read attempt returns an ECC error.
    read_error_rate: float = 0.0
    #: probability a program attempt fails (page goes bad).
    program_fail_rate: float = 0.0
    #: probability an erase fails (block is retired).
    erase_fail_rate: float = 0.0
    #: ECC retries allowed before a read is declared uncorrectable.
    max_read_retries: int = 8
    #: fraction of a block's pages gone bad at which the next erase
    #: retires the block instead of returning it to the free pool.
    bad_page_retire_fraction: float = 0.5
    #: cut power at the start of flash operation N+1 (i.e. after N
    #: operations complete); None disables the cut.
    power_cut_after_ops: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "program_fail_rate",
                     "erase_fail_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.max_read_retries < 0:
            raise ConfigError("max_read_retries must be non-negative")
        if not 0.0 < self.bad_page_retire_fraction <= 1.0:
            raise ConfigError(
                "bad_page_retire_fraction must be in (0, 1]")
        if (self.power_cut_after_ops is not None
                and self.power_cut_after_ops < 0):
            raise ConfigError("power_cut_after_ops must be non-negative")

    @property
    def is_noop(self) -> bool:
        """True when this plan can never inject anything."""
        return (self.read_error_rate == 0.0
                and self.program_fail_rate == 0.0
                and self.erase_fail_rate == 0.0
                and self.power_cut_after_ops is None)

    @property
    def injects_media_faults(self) -> bool:
        """True when any of the random media-fault rates is non-zero."""
        return (self.read_error_rate > 0.0
                or self.program_fail_rate > 0.0
                or self.erase_fail_rate > 0.0)
