"""Operation counters for the flash substrate.

The flash array counts *physical* operations only; attribution of those
operations to causes (user access, cache writeback, GC migration, ...)
happens in the FTL-level metrics.  Keeping a physical ground truth lets
integration tests check that the two accountings agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..types import BlockKind, PageKind


@dataclass
class FlashStats:
    """Raw counts of physical flash operations."""

    page_reads: Dict[PageKind, int] = field(
        default_factory=lambda: {k: 0 for k in PageKind})
    page_writes: Dict[PageKind, int] = field(
        default_factory=lambda: {k: 0 for k in PageKind})
    erases: Dict[BlockKind, int] = field(
        default_factory=lambda: {k: 0 for k in BlockKind})

    # -- fault handling (all zero on an ideal device) -------------------
    #: ECC retry reads issued after transient read errors.
    read_retries: int = 0
    #: reads that needed at least one retry but ultimately succeeded.
    ecc_recovered_reads: int = 0
    #: reads that exhausted the retry budget (raised ReadError).
    uncorrectable_reads: int = 0
    #: simulated time spent in retry backoff, in microseconds.
    read_backoff_us: float = 0.0
    #: program attempts that failed (one bad page each).
    program_failures: int = 0
    #: erases that failed (the block was retired).
    erase_failures: int = 0
    #: blocks taken out of service (erase failure or bad-page wear-out).
    retired_blocks: int = 0

    def record_read(self, kind: PageKind) -> None:
        """Count one page read of the given kind."""
        self.page_reads[kind] += 1

    def record_write(self, kind: PageKind) -> None:
        """Count one page program of the given kind."""
        self.page_writes[kind] += 1

    def record_erase(self, kind: BlockKind) -> None:
        """Count one block erase of the given kind."""
        self.erases[kind] += 1

    def record_read_retry(self, backoff_us: float) -> None:
        """Count one ECC retry and the backoff time it cost."""
        self.read_retries += 1
        self.read_backoff_us += backoff_us

    def record_ecc_recovery(self) -> None:
        """Count one read recovered by retrying."""
        self.ecc_recovered_reads += 1

    def record_uncorrectable_read(self) -> None:
        """Count one read lost despite the full retry budget."""
        self.uncorrectable_reads += 1

    def record_program_failure(self) -> None:
        """Count one failed program attempt (page went bad)."""
        self.program_failures += 1

    def record_erase_failure(self) -> None:
        """Count one failed erase."""
        self.erase_failures += 1

    def record_block_retired(self) -> None:
        """Count one block leaving service permanently."""
        self.retired_blocks += 1

    # ------------------------------------------------------------------
    # Convenience totals
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """All page reads, across kinds."""
        return sum(self.page_reads.values())

    @property
    def total_writes(self) -> int:
        """All page programs, across kinds."""
        return sum(self.page_writes.values())

    @property
    def total_erases(self) -> int:
        """All block erases, across kinds."""
        return sum(self.erases.values())

    @property
    def data_writes(self) -> int:
        """Programs of data pages."""
        return self.page_writes[PageKind.DATA]

    @property
    def translation_writes(self) -> int:
        """Programs of translation pages."""
        return self.page_writes[PageKind.TRANSLATION]

    @property
    def data_reads(self) -> int:
        """Reads of data pages."""
        return self.page_reads[PageKind.DATA]

    @property
    def translation_reads(self) -> int:
        """Reads of translation pages."""
        return self.page_reads[PageKind.TRANSLATION]

    def fault_summary(self) -> Dict[str, float]:
        """The fault/retry counters as a flat dict, for reports."""
        return {
            "read_retries": self.read_retries,
            "ecc_recovered_reads": self.ecc_recovered_reads,
            "uncorrectable_reads": self.uncorrectable_reads,
            "read_backoff_us": self.read_backoff_us,
            "program_failures": self.program_failures,
            "erase_failures": self.erase_failures,
            "retired_blocks": self.retired_blocks,
        }

    def snapshot(self) -> "FlashStats":
        """An independent copy, for before/after deltas."""
        return FlashStats(
            page_reads=dict(self.page_reads),
            page_writes=dict(self.page_writes),
            erases=dict(self.erases),
            read_retries=self.read_retries,
            ecc_recovered_reads=self.ecc_recovered_reads,
            uncorrectable_reads=self.uncorrectable_reads,
            read_backoff_us=self.read_backoff_us,
            program_failures=self.program_failures,
            erase_failures=self.erase_failures,
            retired_blocks=self.retired_blocks,
        )

    def reset(self) -> None:
        """Zero all counters (used after warm-up/prefill).

        Fault counters are zeroed too: a warm-up's faults are part of
        the warm-up, just like its writes.
        """
        for key in self.page_reads:
            self.page_reads[key] = 0
        for key in self.page_writes:
            self.page_writes[key] = 0
        for key in self.erases:
            self.erases[key] = 0
        self.read_retries = 0
        self.ecc_recovered_reads = 0
        self.uncorrectable_reads = 0
        self.read_backoff_us = 0.0
        self.program_failures = 0
        self.erase_failures = 0
        self.retired_blocks = 0
