"""Operation counters for the flash substrate.

The flash array counts *physical* operations only; attribution of those
operations to causes (user access, cache writeback, GC migration, ...)
happens in the FTL-level metrics.  Keeping a physical ground truth lets
integration tests check that the two accountings agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..types import BlockKind, PageKind


@dataclass
class FlashStats:
    """Raw counts of physical flash operations."""

    page_reads: Dict[PageKind, int] = field(
        default_factory=lambda: {k: 0 for k in PageKind})
    page_writes: Dict[PageKind, int] = field(
        default_factory=lambda: {k: 0 for k in PageKind})
    erases: Dict[BlockKind, int] = field(
        default_factory=lambda: {k: 0 for k in BlockKind})

    def record_read(self, kind: PageKind) -> None:
        """Count one page read of the given kind."""
        self.page_reads[kind] += 1

    def record_write(self, kind: PageKind) -> None:
        """Count one page program of the given kind."""
        self.page_writes[kind] += 1

    def record_erase(self, kind: BlockKind) -> None:
        """Count one block erase of the given kind."""
        self.erases[kind] += 1

    # ------------------------------------------------------------------
    # Convenience totals
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """All page reads, across kinds."""
        return sum(self.page_reads.values())

    @property
    def total_writes(self) -> int:
        """All page programs, across kinds."""
        return sum(self.page_writes.values())

    @property
    def total_erases(self) -> int:
        """All block erases, across kinds."""
        return sum(self.erases.values())

    @property
    def data_writes(self) -> int:
        """Programs of data pages."""
        return self.page_writes[PageKind.DATA]

    @property
    def translation_writes(self) -> int:
        """Programs of translation pages."""
        return self.page_writes[PageKind.TRANSLATION]

    @property
    def data_reads(self) -> int:
        """Reads of data pages."""
        return self.page_reads[PageKind.DATA]

    @property
    def translation_reads(self) -> int:
        """Reads of translation pages."""
        return self.page_reads[PageKind.TRANSLATION]

    def snapshot(self) -> "FlashStats":
        """An independent copy, for before/after deltas."""
        return FlashStats(
            page_reads=dict(self.page_reads),
            page_writes=dict(self.page_writes),
            erases=dict(self.erases),
        )

    def reset(self) -> None:
        """Zero all counters (used after warm-up/prefill)."""
        for key in self.page_reads:
            self.page_reads[key] = 0
        for key in self.page_writes:
            self.page_writes[key] = 0
        for key in self.erases:
            self.erases[key] = 0
