"""NAND flash substrate: pages, blocks, and the flash array.

This package models the physical medium the FTLs manage.  It enforces the
NAND rules the paper's design responds to — erase-before-write, sequential
in-block programming, block-granularity erase — and counts every operation
so the layers above can report translation overhead precisely.
"""

from .block import Block
from .flash import FlashMemory
from .stats import FlashStats

__all__ = ["Block", "FlashMemory", "FlashStats"]
