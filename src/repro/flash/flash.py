"""The flash array: blocks, free list, and per-kind write frontiers.

``FlashMemory`` is deliberately policy-free.  It will program the next page
of the active block for a region (data or translation), invalidate pages,
and erase blocks — and it counts every operation — but *when* to collect
garbage, which block to victimise, and how mappings change are decisions of
the FTL layered on top.  This mirrors the split in FlashSim that the paper
extends.

Reliability is handled here, below the FTLs, the way real controllers do:
every program, read and erase consults a :class:`~repro.faults.FaultInjector`
(a no-op by default).  Transient read errors are retried with exponential
backoff; a failed program marks the page bad and transparently moves the
write to the next programmable page; a failed erase — or an erase of a
block whose bad pages crossed the retirement threshold — takes the block
out of service.  Retirement eats the spare capacity; when more blocks
retire than the over-provisioning can absorb, the array raises
:class:`~repro.errors.DeviceWornOutError`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..config import SSDConfig
from ..errors import (DeviceWornOutError, EraseError, FlashError,
                      OutOfSpaceError, ReadError, SimInvariantError)
from ..faults import FaultInjector
from ..types import BlockKind, PageKind, PageState
from .block import Block
from .stats import FlashStats

#: Block kind owning pages of each page kind.
_REGION_OF = {
    PageKind.DATA: BlockKind.DATA,
    PageKind.TRANSLATION: BlockKind.TRANSLATION,
}


class FlashMemory:
    """An array of NAND blocks with one write frontier per region."""

    def __init__(self, config: SSDConfig,
                 injector: Optional[FaultInjector] = None) -> None:
        self.config = config
        self.pages_per_block = config.pages_per_block
        self.blocks: List[Block] = [
            Block(i, config.pages_per_block)
            for i in range(config.physical_blocks)
        ]
        self._free: Deque[int] = deque(range(config.physical_blocks))
        self._active: Dict[BlockKind, Optional[Block]] = {
            BlockKind.DATA: None,
            BlockKind.TRANSLATION: None,
        }
        self.stats = FlashStats()
        #: monotonic operation sequence, stamped onto blocks at program
        #: time so GC policies can reason about block age.
        self.op_seq = 0
        #: fault oracle consulted on every operation (no-op by default).
        self.injector = (injector if injector is not None
                         else FaultInjector(config.fault_plan()))
        #: blocks permanently out of service, in retirement order.
        self.retired_block_ids: List[int] = []
        #: bad pages in a block at which its next erase retires it.
        self._bad_retire_pages = max(1, math.ceil(
            config.pages_per_block
            * self.injector.plan.bad_page_retire_fraction))

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def ppn_of(self, block_id: int, offset: int) -> int:
        """Compose a PPN from a block id and in-block offset."""
        return block_id * self.pages_per_block + offset

    def block_id_of(self, ppn: int) -> int:
        """Block id owning ``ppn``."""
        return ppn // self.pages_per_block

    def offset_of(self, ppn: int) -> int:
        """In-block offset of ``ppn``."""
        return ppn % self.pages_per_block

    def block_of(self, ppn: int) -> Block:
        """The Block object owning ``ppn``."""
        return self.blocks[self.block_id_of(ppn)]

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def free_block_count(self) -> int:
        """Blocks currently in the free pool."""
        return len(self._free)

    @property
    def gc_needed(self) -> bool:
        """True once the free pool has shrunk to the GC trigger level."""
        return len(self._free) <= self.config.gc_trigger_blocks

    @property
    def exhausted(self) -> bool:
        """True when only the emergency reserve remains."""
        return len(self._free) <= self.config.gc_reserve_blocks

    @property
    def retired_block_count(self) -> int:
        """Blocks permanently out of service."""
        return len(self.retired_block_ids)

    @property
    def spare_blocks_remaining(self) -> int:
        """Retirements the device can still absorb before wearing out.

        Grown bad pages in live blocks are charged against the spares
        too (in whole-block equivalents): capacity they ate is just as
        gone as a retired block's.
        """
        return (self.config.spare_blocks - len(self.retired_block_ids)
                - self.bad_page_count // self.pages_per_block)

    @property
    def is_worn(self) -> bool:
        """True once retirement or bad pages have consumed any capacity."""
        return bool(self.retired_block_ids) or self.bad_page_count > 0

    @property
    def bad_page_count(self) -> int:
        """Pages lost to program failures, device-wide."""
        return sum(block.bad_count for block in self.blocks)

    def blocks_of_kind(self, kind: BlockKind) -> Iterable[Block]:
        """Iterate blocks currently playing role ``kind``."""
        for block in self.blocks:
            if block.kind is kind:
                yield block

    def active_block(self, kind: BlockKind) -> Optional[Block]:
        """The current write frontier for a region (may be None)."""
        return self._active[kind]

    def total_erase_count(self) -> int:
        """Sum of per-block erase counts (wear)."""
        return sum(block.erase_count for block in self.blocks)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def program(self, kind: PageKind, meta: int) -> int:
        """Program one page of the given kind; returns its PPN.

        ``meta`` is the logical identity of the content (LPN for data
        pages, VTPN for translation pages), recorded so GC can find the
        owner of every valid page.  An injected program failure marks
        the target page bad and retries on the next programmable page
        (allocating a fresh frontier block if needed), as a real
        controller's write path does.
        """
        region = _REGION_OF[kind]
        while True:
            block = self._active[region]
            if block is None or block.is_full:
                block = self._allocate(region)
            self.injector.on_operation()
            self.op_seq += 1
            if self.injector.program_fails():
                block.mark_bad()
                self.stats.record_program_failure()
                self._check_spares()
                continue
            offset = block.program(meta, self.op_seq)
            self.stats.record_write(kind)
            return self.ppn_of(block.block_id, offset)

    def allocate_block(self, region: BlockKind) -> Block:
        """Take a free block for dedicated use (not the region frontier).

        Used by block-granular FTLs that fill whole blocks themselves
        (e.g. hybrid-FTL merges); pair with :meth:`program_into`.
        """
        if region is BlockKind.FREE or region is BlockKind.RETIRED:
            raise FlashError(
                f"cannot allocate a block as {region.value.upper()}")
        if not self._free:
            raise OutOfSpaceError(
                "no free blocks left; GC failed to reclaim space")
        block = self.blocks[self._free.popleft()]
        block.kind = region
        return block

    def program_into(self, block: Block, kind: PageKind, meta: int) -> int:
        """Program the next page of a specific block; returns its PPN.

        A program failure marks the page bad and retries within the same
        block; callers that need full, contiguous blocks (block-mapped
        FTLs) must not enable program-fault injection.
        """
        while True:
            self.injector.on_operation()
            self.op_seq += 1
            if self.injector.program_fails():
                block.mark_bad()
                self.stats.record_program_failure()
                self._check_spares()
                continue
            offset = block.program(meta, self.op_seq)
            self.stats.record_write(kind)
            return self.ppn_of(block.block_id, offset)

    def read(self, ppn: int, kind: PageKind) -> int:
        """Read a page; returns its metadata (LPN/VTPN).

        Reading a non-valid page is a simulator bug and raises.
        Transient (injected) read errors are retried with exponential
        backoff up to the plan's retry budget; each retry is itself a
        flash operation.  Exhausting the budget raises
        :class:`~repro.errors.ReadError`.
        """
        block = self.block_of(ppn)
        offset = self.offset_of(ppn)
        if block.state(offset) is not PageState.VALID:
            raise FlashError(
                f"read of {block.state(offset).name} page at PPN {ppn}")
        self.injector.on_operation()
        failures = 0
        while self.injector.read_attempt_fails():
            failures += 1
            if failures > self.injector.plan.max_read_retries:
                self.stats.record_uncorrectable_read()
                raise ReadError(
                    f"uncorrectable error at PPN {ppn} after "
                    f"{failures} attempts")
            self.injector.on_operation()
            self.stats.record_read_retry(
                backoff_us=self.config.read_us * (2 ** (failures - 1)))
        if failures:
            self.stats.record_ecc_recovery()
        self.stats.record_read(kind)
        meta = block.meta(offset)
        if meta is None:  # pragma: no cover - valid pages carry metadata
            raise SimInvariantError(
                f"valid page at PPN {ppn} has no recorded metadata")
        return meta

    def invalidate(self, ppn: int) -> None:
        """Invalidate the page at ``ppn`` (its content was superseded)."""
        self.block_of(ppn).invalidate(self.offset_of(ppn))

    def erase(self, block_id: int) -> bool:
        """Erase a block; True if it returned to the free pool.

        False means the block was retired instead — its erase failed, or
        its accumulated bad pages crossed the retirement threshold.  The
        physical erase is still counted in the latter case.  Retiring
        past the spare capacity raises
        :class:`~repro.errors.DeviceWornOutError`.
        """
        block = self.blocks[block_id]
        if block.is_free:
            raise FlashError(f"block {block_id} is already free")
        if block.kind is BlockKind.RETIRED:
            raise FlashError(f"block {block_id} is retired")
        if block.valid_count:
            raise EraseError(
                f"block {block_id} still has {block.valid_count} "
                "valid pages")
        kind = block.kind
        if self._active.get(kind) is block:
            self._active[kind] = None
        self.injector.on_operation()
        if self.injector.erase_fails():
            self.stats.record_erase_failure()
            self._retire(block)
            return False
        block.erase()
        self.stats.record_erase(kind)
        if block.bad_count >= self._bad_retire_pages:
            self._retire(block)
            return False
        self._free.append(block_id)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate(self, region: BlockKind) -> Block:
        if not self._free:
            raise OutOfSpaceError(
                "no free blocks left; GC failed to reclaim space")
        block = self.blocks[self._free.popleft()]
        block.kind = region
        self._active[region] = block
        return block

    def _retire(self, block: Block) -> None:
        """Take ``block`` out of service permanently."""
        block.kind = BlockKind.RETIRED
        self.retired_block_ids.append(block.block_id)
        self.stats.record_block_retired()
        self._check_spares()

    def _check_spares(self) -> None:
        if self.spare_blocks_remaining < 0:
            raise DeviceWornOutError(
                f"{len(self.retired_block_ids)} blocks retired and "
                f"{self.bad_page_count} pages grown bad, but the device "
                f"has only {self.config.spare_blocks} spare blocks; the "
                "remaining capacity cannot hold the logical space")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashMemory(blocks={len(self.blocks)}, "
                f"free={self.free_block_count}, "
                f"retired={self.retired_block_count})")
