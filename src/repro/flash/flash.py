"""The flash array: blocks, free list, and per-kind write frontiers.

``FlashMemory`` is deliberately policy-free.  It will program the next page
of the active block for a region (data or translation), invalidate pages,
and erase blocks — and it counts every operation — but *when* to collect
garbage, which block to victimise, and how mappings change are decisions of
the FTL layered on top.  This mirrors the split in FlashSim that the paper
extends.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..config import SSDConfig
from ..errors import FlashError, OutOfSpaceError
from ..types import BlockKind, PageKind, PageState
from .block import Block
from .stats import FlashStats

#: Block kind owning pages of each page kind.
_REGION_OF = {
    PageKind.DATA: BlockKind.DATA,
    PageKind.TRANSLATION: BlockKind.TRANSLATION,
}


class FlashMemory:
    """An array of NAND blocks with one write frontier per region."""

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.pages_per_block = config.pages_per_block
        self.blocks: List[Block] = [
            Block(i, config.pages_per_block)
            for i in range(config.physical_blocks)
        ]
        self._free: Deque[int] = deque(range(config.physical_blocks))
        self._active: Dict[BlockKind, Optional[Block]] = {
            BlockKind.DATA: None,
            BlockKind.TRANSLATION: None,
        }
        self.stats = FlashStats()
        #: monotonic operation sequence, stamped onto blocks at program
        #: time so GC policies can reason about block age.
        self.op_seq = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def ppn_of(self, block_id: int, offset: int) -> int:
        """Compose a PPN from a block id and in-block offset."""
        return block_id * self.pages_per_block + offset

    def block_id_of(self, ppn: int) -> int:
        """Block id owning ``ppn``."""
        return ppn // self.pages_per_block

    def offset_of(self, ppn: int) -> int:
        """In-block offset of ``ppn``."""
        return ppn % self.pages_per_block

    def block_of(self, ppn: int) -> Block:
        """The Block object owning ``ppn``."""
        return self.blocks[self.block_id_of(ppn)]

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def free_block_count(self) -> int:
        """Blocks currently in the free pool."""
        return len(self._free)

    @property
    def gc_needed(self) -> bool:
        """True once the free pool has shrunk to the GC trigger level."""
        return len(self._free) <= self.config.gc_trigger_blocks

    @property
    def exhausted(self) -> bool:
        """True when only the emergency reserve remains."""
        return len(self._free) <= self.config.gc_reserve_blocks

    def blocks_of_kind(self, kind: BlockKind) -> Iterable[Block]:
        """Iterate blocks currently playing role ``kind``."""
        active = self._active[kind] if kind in self._active else None
        for block in self.blocks:
            if block.kind is kind:
                yield block

    def active_block(self, kind: BlockKind) -> Optional[Block]:
        """The current write frontier for a region (may be None)."""
        return self._active[kind]

    def total_erase_count(self) -> int:
        """Sum of per-block erase counts (wear)."""
        return sum(block.erase_count for block in self.blocks)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def program(self, kind: PageKind, meta: int) -> int:
        """Program one page of the given kind; returns its PPN.

        ``meta`` is the logical identity of the content (LPN for data
        pages, VTPN for translation pages), recorded so GC can find the
        owner of every valid page.
        """
        region = _REGION_OF[kind]
        block = self._active[region]
        if block is None or block.is_full:
            block = self._allocate(region)
        self.op_seq += 1
        offset = block.program(meta, self.op_seq)
        self.stats.record_write(kind)
        return self.ppn_of(block.block_id, offset)

    def allocate_block(self, region: BlockKind) -> Block:
        """Take a free block for dedicated use (not the region frontier).

        Used by block-granular FTLs that fill whole blocks themselves
        (e.g. hybrid-FTL merges); pair with :meth:`program_into`.
        """
        if region is BlockKind.FREE:
            raise FlashError("cannot allocate a block as FREE")
        if not self._free:
            raise OutOfSpaceError(
                "no free blocks left; GC failed to reclaim space")
        block = self.blocks[self._free.popleft()]
        block.kind = region
        return block

    def program_into(self, block: Block, kind: PageKind, meta: int) -> int:
        """Program the next page of a specific block; returns its PPN."""
        self.op_seq += 1
        offset = block.program(meta, self.op_seq)
        self.stats.record_write(kind)
        return self.ppn_of(block.block_id, offset)

    def read(self, ppn: int, kind: PageKind) -> int:
        """Read a page; returns its metadata (LPN/VTPN).

        Reading a non-valid page is a simulator bug and raises.
        """
        block = self.block_of(ppn)
        offset = self.offset_of(ppn)
        if block.state(offset) is not PageState.VALID:
            raise FlashError(
                f"read of {block.state(offset).name} page at PPN {ppn}")
        self.stats.record_read(kind)
        meta = block.meta(offset)
        assert meta is not None
        return meta

    def invalidate(self, ppn: int) -> None:
        """Invalidate the page at ``ppn`` (its content was superseded)."""
        self.block_of(ppn).invalidate(self.offset_of(ppn))

    def erase(self, block_id: int) -> None:
        """Erase a block and return it to the free pool."""
        block = self.blocks[block_id]
        if block.is_free:
            raise FlashError(f"block {block_id} is already free")
        kind = block.kind
        if self._active.get(kind) is block:
            self._active[kind] = None
        block.erase()
        self._free.append(block_id)
        self.stats.record_erase(kind)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate(self, region: BlockKind) -> Block:
        if not self._free:
            raise OutOfSpaceError(
                "no free blocks left; GC failed to reclaim space")
        block = self.blocks[self._free.popleft()]
        block.kind = region
        self._active[region] = block
        return block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashMemory(blocks={len(self.blocks)}, "
                f"free={self.free_block_count})")
