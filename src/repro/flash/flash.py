"""The flash array: blocks, free list, and per-kind write frontiers.

``FlashMemory`` is deliberately policy-free.  It will program the next page
of the active block for a region (data or translation), invalidate pages,
and erase blocks — and it counts every operation — but *when* to collect
garbage, which block to victimise, and how mappings change are decisions of
the FTL layered on top.  This mirrors the split in FlashSim that the paper
extends.

Batched execution (the fast mode): on an ideal device — a no-op
:class:`~repro.faults.FaultPlan` — every per-operation fault consult is
dead code and the per-op ``FlashStats`` dict updates dominate the
simulator's profile.  :meth:`FlashMemory.enter_fast_mode` switches the
array onto mechanically-equivalent operation paths that skip the
injector, fold operation counts into plain integers (merged back into
``stats`` by :meth:`FlashMemory.fold_stats`), maintain a lazy victim
heap so greedy GC selection is O(log blocks) instead of a full scan,
and track the device-wide erase-count spread so wear-leveling checks
are O(1).  Every observable outcome — block states, mapping metadata,
``op_seq``, counters after a fold, raised errors — is identical to the
reference path; the parity suite diffs entire runs field by field.

Reliability is handled here, below the FTLs, the way real controllers do:
every program, read and erase consults a :class:`~repro.faults.FaultInjector`
(a no-op by default).  Transient read errors are retried with exponential
backoff; a failed program marks the page bad and transparently moves the
write to the next programmable page; a failed erase — or an erase of a
block whose bad pages crossed the retirement threshold — takes the block
out of service.  Retirement eats the spare capacity; when more blocks
retire than the over-provisioning can absorb, the array raises
:class:`~repro.errors.DeviceWornOutError`.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..config import SSDConfig
from ..errors import (DeviceWornOutError, EraseError, FlashError,
                      OutOfSpaceError, ProgramError, ReadError,
                      SimInvariantError)
from ..faults import FaultInjector
from ..types import BlockKind, PageKind, PageState
from .block import Block
from .stats import FlashStats

#: Block kind owning pages of each page kind.
_REGION_OF = {
    PageKind.DATA: BlockKind.DATA,
    PageKind.TRANSLATION: BlockKind.TRANSLATION,
}


class FlashMemory:
    """An array of NAND blocks with one write frontier per region."""

    def __init__(self, config: SSDConfig,
                 injector: Optional[FaultInjector] = None) -> None:
        self.config = config
        self.pages_per_block = config.pages_per_block
        self.blocks: List[Block] = [
            Block(i, config.pages_per_block)
            for i in range(config.physical_blocks)
        ]
        self._free: Deque[int] = deque(range(config.physical_blocks))
        self._active: Dict[BlockKind, Optional[Block]] = {
            BlockKind.DATA: None,
            BlockKind.TRANSLATION: None,
        }
        #: plain-attribute mirrors of the two ``_active`` frontiers,
        #: kept in sync at every assignment site so the per-page fast
        #: program path avoids enum-keyed dict lookups.  ``_active``
        #: stays the source of truth for everything else.
        self._active_data: Optional[Block] = None
        self._active_trans: Optional[Block] = None
        self.stats = FlashStats()
        #: monotonic operation sequence, stamped onto blocks at program
        #: time so GC policies can reason about block age.
        self.op_seq = 0
        #: fault oracle consulted on every operation (no-op by default).
        self.injector = (injector if injector is not None
                         else FaultInjector(config.fault_plan()))
        #: blocks permanently out of service, in retirement order.
        self.retired_block_ids: List[int] = []
        #: bad pages in a block at which its next erase retires it.
        self._bad_retire_pages = max(1, math.ceil(
            config.pages_per_block
            * self.injector.plan.bad_page_retire_fraction))
        #: free-pool level at which GC triggers (cached off the config
        #: so the per-page ``gc_needed`` check stays one comparison).
        self._gc_trigger = config.gc_trigger_blocks
        # -- batched execution (fast mode) -----------------------------
        #: True while the injector-free fast operation paths are active.
        self.fast_mode = False
        #: lazy greedy-victim index: ``(-invalid, erase_count, id)``
        #: entries pushed on every invalidation; stale entries (the
        #: block's counts moved on) are dropped at pop time.
        self.victim_heap: List[Tuple[int, int, int]] = []
        #: exact running device-wide max/min erase counts (fast mode).
        self.max_erase = 0
        self.min_erase = 0
        #: blocks per erase-count level, backing ``min_erase``.
        self._erase_hist: Dict[int, int] = {}
        # operation-count folds, merged into ``stats`` by fold_stats()
        self._fold_data_reads = 0
        self._fold_trans_reads = 0
        self._fold_data_writes = 0
        self._fold_trans_writes = 0
        self._fold_data_erases = 0
        self._fold_trans_erases = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def ppn_of(self, block_id: int, offset: int) -> int:
        """Compose a PPN from a block id and in-block offset."""
        return block_id * self.pages_per_block + offset

    def block_id_of(self, ppn: int) -> int:
        """Block id owning ``ppn``."""
        return ppn // self.pages_per_block

    def offset_of(self, ppn: int) -> int:
        """In-block offset of ``ppn``."""
        return ppn % self.pages_per_block

    def block_of(self, ppn: int) -> Block:
        """The Block object owning ``ppn``."""
        return self.blocks[self.block_id_of(ppn)]

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def free_block_count(self) -> int:
        """Blocks currently in the free pool."""
        return len(self._free)

    @property
    def gc_needed(self) -> bool:
        """True once the free pool has shrunk to the GC trigger level."""
        return len(self._free) <= self._gc_trigger

    @property
    def exhausted(self) -> bool:
        """True when only the emergency reserve remains."""
        return len(self._free) <= self.config.gc_reserve_blocks

    @property
    def retired_block_count(self) -> int:
        """Blocks permanently out of service."""
        return len(self.retired_block_ids)

    @property
    def spare_blocks_remaining(self) -> int:
        """Retirements the device can still absorb before wearing out.

        Grown bad pages in live blocks are charged against the spares
        too (in whole-block equivalents): capacity they ate is just as
        gone as a retired block's.
        """
        return (self.config.spare_blocks - len(self.retired_block_ids)
                - self.bad_page_count // self.pages_per_block)

    @property
    def is_worn(self) -> bool:
        """True once retirement or bad pages have consumed any capacity."""
        return bool(self.retired_block_ids) or self.bad_page_count > 0

    @property
    def bad_page_count(self) -> int:
        """Pages lost to program failures, device-wide."""
        return sum(block.bad_count for block in self.blocks)

    def blocks_of_kind(self, kind: BlockKind) -> Iterable[Block]:
        """Iterate blocks currently playing role ``kind``."""
        for block in self.blocks:
            if block.kind is kind:
                yield block

    def active_block(self, kind: BlockKind) -> Optional[Block]:
        """The current write frontier for a region (may be None)."""
        return self._active[kind]

    def total_erase_count(self) -> int:
        """Sum of per-block erase counts (wear)."""
        return sum(block.erase_count for block in self.blocks)

    # ------------------------------------------------------------------
    # Batched execution (fast mode)
    # ------------------------------------------------------------------
    def enter_fast_mode(self) -> None:
        """Switch to the injector-free batched operation paths.

        Only legal on an ideal device: a fault plan that can never
        inject (and therefore an array with no bad pages or retired
        blocks).  Builds the victim heap and the erase-count histogram
        from the current array state, so fast mode can be entered at
        any point of a device's life — e.g. after a prefill that ran on
        the reference path.
        """
        if self.fast_mode:
            return
        if not self.injector.plan.is_noop:
            raise FlashError(
                "fast mode requires a no-op fault plan; this injector "
                "can fire, so every operation must consult it")
        if self.retired_block_ids or self.bad_page_count:
            raise FlashError(
                "fast mode requires a pristine array (no bad pages or "
                "retired blocks)")
        heap: List[Tuple[int, int, int]] = []
        hist: Dict[int, int] = {}
        max_erase = 0
        for block in self.blocks:
            count = block.erase_count
            hist[count] = hist.get(count, 0) + 1
            if count > max_erase:
                max_erase = count
            if block.invalid_count and block.kind is not BlockKind.FREE:
                heap.append((-block.invalid_count, count, block.block_id))
        heapq.heapify(heap)
        self.victim_heap = heap
        self._erase_hist = hist
        self.max_erase = max_erase
        self.min_erase = min(hist)
        self.fast_mode = True

    def exit_fast_mode(self) -> None:
        """Return to the reference paths, folding pending counters."""
        if not self.fast_mode:
            return
        self.fold_stats()
        self.fast_mode = False
        self.victim_heap = []
        self._erase_hist = {}

    def fold_stats(self) -> None:
        """Merge the fast-mode count folds into :attr:`stats`.

        Callers that reset or read ``stats`` while fast mode is active
        (the batched run loop does both) must fold first; afterwards
        the counters are exactly what the reference path would hold.
        """
        stats = self.stats
        if self._fold_data_reads:
            stats.page_reads[PageKind.DATA] += self._fold_data_reads
            self._fold_data_reads = 0
        if self._fold_trans_reads:
            stats.page_reads[PageKind.TRANSLATION] += self._fold_trans_reads
            self._fold_trans_reads = 0
        if self._fold_data_writes:
            stats.page_writes[PageKind.DATA] += self._fold_data_writes
            self._fold_data_writes = 0
        if self._fold_trans_writes:
            stats.page_writes[PageKind.TRANSLATION] += self._fold_trans_writes
            self._fold_trans_writes = 0
        if self._fold_data_erases:
            stats.erases[BlockKind.DATA] += self._fold_data_erases
            self._fold_data_erases = 0
        if self._fold_trans_erases:
            stats.erases[BlockKind.TRANSLATION] += self._fold_trans_erases
            self._fold_trans_erases = 0

    def gc_scan_valid(self, block: Block,
                      kind: PageKind) -> List[Tuple[int, int]]:
        """Fast-mode GC helper: read every valid page of ``block``.

        Returns ascending ``(offset, meta)`` pairs and counts one page
        read of ``kind`` per pair — the batched equivalent of calling
        :meth:`read` on each valid page of a victim.
        """
        meta = block._meta
        pairs = [(offset, meta[offset])
                 for offset in block.valid_offsets()]
        if self.fast_mode:
            if kind is PageKind.DATA:
                self._fold_data_reads += len(pairs)
            else:
                self._fold_trans_reads += len(pairs)
        else:
            for _ in pairs:
                self.stats.record_read(kind)
        return pairs

    def program_batch(self, kind: PageKind, metas: List[int]) -> List[int]:
        """Fast-mode GC helper: program ``metas`` in order; returns PPNs.

        Chunk-fills the region's write frontier: mechanically identical
        to programming one page at a time on an ideal device (same
        frontier allocations from the free pool, same final ``op_seq``
        and per-block ``last_program_seq``), minus the per-op
        bookkeeping.  Only legal in fast mode — with faults armed every
        program must roll the injector individually.
        """
        if not self.fast_mode:
            raise FlashError("program_batch requires fast mode")
        region = _REGION_OF[kind]
        ppb = self.pages_per_block
        ppns: List[int] = []
        i, total = 0, len(metas)
        while i < total:
            block = self._active[region]
            if block is None or block._write_ptr >= ppb:
                block = self._allocate(region)
            write_ptr = block._write_ptr
            take = min(total - i, ppb - write_ptr)
            end = write_ptr + take
            block._states[write_ptr:end] = [PageState.VALID] * take
            block._meta[write_ptr:end] = metas[i:i + take]
            block._write_ptr = end
            block.valid_count += take
            self.op_seq += take
            block.last_program_seq = self.op_seq
            base = block.block_id * ppb + write_ptr
            ppns.extend(range(base, base + take))
            i += take
        if kind is PageKind.DATA:
            self._fold_data_writes += total
        else:
            self._fold_trans_writes += total
        return ppns

    def invalidate_batch(self, block: Block, offsets: List[int]) -> None:
        """Fast-mode GC helper: invalidate valid pages of one block.

        ``offsets`` must all be valid (the caller holds them from
        :meth:`gc_scan_valid`); the victim index is refreshed once for
        the whole batch instead of once per page.
        """
        if not self.fast_mode:
            for offset in offsets:
                block.invalidate(offset)
            return
        states = block._states
        meta = block._meta
        for offset in offsets:
            if states[offset] is not PageState.VALID:
                raise FlashError(
                    f"batch invalidate of {states[offset].name} page "
                    f"{offset} in block {block.block_id}")
            states[offset] = PageState.INVALID
            meta[offset] = None
        count = len(offsets)
        block.valid_count -= count
        block.invalid_count += count
        if count:
            heapq.heappush(self.victim_heap,
                           (-block.invalid_count, block.erase_count,
                            block.block_id))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def program(self, kind: PageKind, meta: int) -> int:
        """Program one page of the given kind; returns its PPN.

        ``meta`` is the logical identity of the content (LPN for data
        pages, VTPN for translation pages), recorded so GC can find the
        owner of every valid page.  An injected program failure marks
        the target page bad and retries on the next programmable page
        (allocating a fresh frontier block if needed), as a real
        controller's write path does.
        """
        if self.fast_mode:
            # No injector, no bad pages: the write pointer always sits
            # on a FREE page, so the state transition is unconditional.
            # The frontier comes off the plain-attribute mirrors — no
            # enum-keyed dict lookups on this per-page path.
            if kind is PageKind.DATA:
                block = self._active_data
                if (block is None
                        or block._write_ptr >= self.pages_per_block):
                    block = self._allocate(BlockKind.DATA)
                self._fold_data_writes += 1
            else:
                block = self._active_trans
                if (block is None
                        or block._write_ptr >= self.pages_per_block):
                    block = self._allocate(BlockKind.TRANSLATION)
                self._fold_trans_writes += 1
            seq = self.op_seq + 1
            self.op_seq = seq
            offset = block._write_ptr
            block._states[offset] = PageState.VALID
            block._meta[offset] = meta
            block._write_ptr = offset + 1
            block.valid_count += 1
            block.last_program_seq = seq
            return block.block_id * self.pages_per_block + offset
        region = _REGION_OF[kind]
        while True:
            block = self._active[region]
            if block is None or block.is_full:
                block = self._allocate(region)
            self.injector.on_operation()
            self.op_seq += 1
            if self.injector.program_fails():
                block.mark_bad()
                self.stats.record_program_failure()
                self._check_spares()
                continue
            offset = block.program(meta, self.op_seq)
            self.stats.record_write(kind)
            return self.ppn_of(block.block_id, offset)

    def allocate_block(self, region: BlockKind) -> Block:
        """Take a free block for dedicated use (not the region frontier).

        Used by block-granular FTLs that fill whole blocks themselves
        (e.g. hybrid-FTL merges); pair with :meth:`program_into`.
        """
        if region is BlockKind.FREE or region is BlockKind.RETIRED:
            raise FlashError(
                f"cannot allocate a block as {region.value.upper()}")
        if not self._free:
            raise OutOfSpaceError(
                "no free blocks left; GC failed to reclaim space")
        block = self.blocks[self._free.popleft()]
        block.kind = region
        return block

    def program_into(self, block: Block, kind: PageKind, meta: int) -> int:
        """Program the next page of a specific block; returns its PPN.

        A program failure marks the page bad and retries within the same
        block; callers that need full, contiguous blocks (block-mapped
        FTLs) must not enable program-fault injection.
        """
        while True:
            self.injector.on_operation()
            self.op_seq += 1
            if self.injector.program_fails():
                block.mark_bad()
                self.stats.record_program_failure()
                self._check_spares()
                continue
            offset = block.program(meta, self.op_seq)
            self.stats.record_write(kind)
            return self.ppn_of(block.block_id, offset)

    def read(self, ppn: int, kind: PageKind) -> int:
        """Read a page; returns its metadata (LPN/VTPN).

        Reading a non-valid page is a simulator bug and raises.
        Transient (injected) read errors are retried with exponential
        backoff up to the plan's retry budget; each retry is itself a
        flash operation.  Exhausting the budget raises
        :class:`~repro.errors.ReadError`.
        """
        if self.fast_mode:
            block = self.blocks[ppn // self.pages_per_block]
            offset = ppn % self.pages_per_block
            if block._states[offset] is not PageState.VALID:
                raise FlashError(
                    f"read of {block._states[offset].name} page at "
                    f"PPN {ppn}")
            if kind is PageKind.DATA:
                self._fold_data_reads += 1
            else:
                self._fold_trans_reads += 1
            # valid pages always carry metadata (the reference path's
            # SimInvariantError guard is vacuous and skipped here)
            return block._meta[offset]
        block = self.block_of(ppn)
        offset = self.offset_of(ppn)
        if block.state(offset) is not PageState.VALID:
            raise FlashError(
                f"read of {block.state(offset).name} page at PPN {ppn}")
        self.injector.on_operation()
        failures = 0
        while self.injector.read_attempt_fails():
            failures += 1
            if failures > self.injector.plan.max_read_retries:
                self.stats.record_uncorrectable_read()
                raise ReadError(
                    f"uncorrectable error at PPN {ppn} after "
                    f"{failures} attempts")
            self.injector.on_operation()
            self.stats.record_read_retry(
                backoff_us=self.config.read_us * (2 ** (failures - 1)))
        if failures:
            self.stats.record_ecc_recovery()
        self.stats.record_read(kind)
        meta = block.meta(offset)
        if meta is None:  # pragma: no cover - valid pages carry metadata
            raise SimInvariantError(
                f"valid page at PPN {ppn} has no recorded metadata")
        return meta

    def invalidate(self, ppn: int) -> None:
        """Invalidate the page at ``ppn`` (its content was superseded)."""
        if self.fast_mode:
            block = self.blocks[ppn // self.pages_per_block]
            offset = ppn % self.pages_per_block
            # Block.invalidate inlined (same check, same transition):
            # this plus the heap push runs once per superseded page.
            states = block._states
            if states[offset] is not PageState.VALID:
                raise ProgramError(
                    f"page {offset} of block {block.block_id} is "
                    f"{states[offset].name}, cannot invalidate")
            states[offset] = PageState.INVALID
            block._meta[offset] = None
            block.valid_count -= 1
            invalid = block.invalid_count + 1
            block.invalid_count = invalid
            heapq.heappush(self.victim_heap,
                           (-invalid, block.erase_count, block.block_id))
            return
        self.block_of(ppn).invalidate(self.offset_of(ppn))

    def erase(self, block_id: int) -> bool:
        """Erase a block; True if it returned to the free pool.

        False means the block was retired instead — its erase failed, or
        its accumulated bad pages crossed the retirement threshold.  The
        physical erase is still counted in the latter case.  Retiring
        past the spare capacity raises
        :class:`~repro.errors.DeviceWornOutError`.
        """
        block = self.blocks[block_id]
        if block.is_free:
            raise FlashError(f"block {block_id} is already free")
        if block.kind is BlockKind.RETIRED:
            raise FlashError(f"block {block_id} is retired")
        if block.valid_count:
            raise EraseError(
                f"block {block_id} still has {block.valid_count} "
                "valid pages")
        kind = block.kind
        if self._active.get(kind) is block:
            self._active[kind] = None
            if kind is BlockKind.DATA:
                self._active_data = None
            elif kind is BlockKind.TRANSLATION:
                self._active_trans = None
        if self.fast_mode:
            # No BAD pages exist, so the whole block returns to FREE
            # and the per-page skip loop of Block.erase is unnecessary.
            ppb = self.pages_per_block
            old_count = block.erase_count
            block._states = [PageState.FREE] * ppb
            block._meta = [None] * ppb
            block._write_ptr = 0
            block.valid_count = 0
            block.invalid_count = 0
            block.erase_count = old_count + 1
            block.kind = BlockKind.FREE
            if kind is BlockKind.DATA:
                self._fold_data_erases += 1
            else:
                self._fold_trans_erases += 1
            # keep the erase-count spread exact: histogram + running max
            hist = self._erase_hist
            remaining = hist[old_count] - 1
            if remaining:
                hist[old_count] = remaining
            else:
                del hist[old_count]
            new_count = old_count + 1
            hist[new_count] = hist.get(new_count, 0) + 1
            if new_count > self.max_erase:
                self.max_erase = new_count
            while self.min_erase not in hist:
                self.min_erase += 1
            self._free.append(block_id)
            return True
        self.injector.on_operation()
        if self.injector.erase_fails():
            self.stats.record_erase_failure()
            self._retire(block)
            return False
        block.erase()
        self.stats.record_erase(kind)
        if block.bad_count >= self._bad_retire_pages:
            self._retire(block)
            return False
        self._free.append(block_id)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate(self, region: BlockKind) -> Block:
        if not self._free:
            raise OutOfSpaceError(
                "no free blocks left; GC failed to reclaim space")
        block = self.blocks[self._free.popleft()]
        block.kind = region
        self._active[region] = block
        if region is BlockKind.DATA:
            self._active_data = block
        else:
            self._active_trans = block
        return block

    def _retire(self, block: Block) -> None:
        """Take ``block`` out of service permanently."""
        block.kind = BlockKind.RETIRED
        self.retired_block_ids.append(block.block_id)
        self.stats.record_block_retired()
        self._check_spares()

    def _check_spares(self) -> None:
        if self.spare_blocks_remaining < 0:
            raise DeviceWornOutError(
                f"{len(self.retired_block_ids)} blocks retired and "
                f"{self.bad_page_count} pages grown bad, but the device "
                f"has only {self.config.spare_blocks} spare blocks; the "
                "remaining capacity cannot hold the logical space")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashMemory(blocks={len(self.blocks)}, "
                f"free={self.free_block_count}, "
                f"retired={self.retired_block_count})")
