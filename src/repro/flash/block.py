"""A NAND flash block: the unit of erase.

Each block tracks per-page state and the metadata written alongside each
page (the LPN for data pages, the VTPN for translation pages) — the
simulator's stand-in for the out-of-band area real FTLs use to rebuild
mappings.  Programming is enforced to be sequential within a block and
erase is only legal once no valid pages remain, so GC bugs surface as
exceptions instead of silent corruption.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import EraseError, ProgramError
from ..types import BlockKind, PageState


class Block:
    """One erase block of ``pages_per_block`` pages."""

    __slots__ = ("block_id", "pages_per_block", "kind", "erase_count",
                 "last_program_seq", "_states", "_meta", "_write_ptr",
                 "valid_count", "invalid_count", "bad_count")

    def __init__(self, block_id: int, pages_per_block: int) -> None:
        self.block_id = block_id
        self.pages_per_block = pages_per_block
        self.kind = BlockKind.FREE
        self.erase_count = 0
        #: global operation sequence of the most recent program into this
        #: block; lets cost-benefit GC estimate block age without wall time.
        self.last_program_seq = 0
        self._states: List[PageState] = [PageState.FREE] * pages_per_block
        #: per-page metadata (LPN or VTPN of the content), None when free.
        self._meta: List[Optional[int]] = [None] * pages_per_block
        self._write_ptr = 0
        self.valid_count = 0
        self.invalid_count = 0
        #: pages permanently lost to program failures (survive erases).
        self.bad_count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        """Programmable pages left in this block (bad pages excluded)."""
        return sum(1 for state in self._states[self._write_ptr:]
                   if state is PageState.FREE)

    @property
    def is_full(self) -> bool:
        """True once no programmable page remains."""
        return self._write_ptr >= self.pages_per_block

    @property
    def is_free(self) -> bool:
        """True while the block sits in the free pool."""
        return self.kind is BlockKind.FREE

    def state(self, offset: int) -> PageState:
        """Lifecycle state of the page at ``offset``."""
        return self._states[offset]

    def meta(self, offset: int) -> Optional[int]:
        """LPN/VTPN recorded when the page at ``offset`` was programmed."""
        return self._meta[offset]

    def valid_offsets(self) -> List[int]:
        """Offsets of currently valid pages (ascending)."""
        return [i for i in range(self._write_ptr)
                if self._states[i] is PageState.VALID]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Move the write pointer to the next FREE page (skipping BAD).

        Maintains the invariant that ``_write_ptr`` either indexes a
        programmable page or equals ``pages_per_block`` — which is what
        makes :attr:`is_full` a plain comparison.
        """
        while (self._write_ptr < self.pages_per_block
               and self._states[self._write_ptr] is not PageState.FREE):
            self._write_ptr += 1

    def program(self, meta: int, seq: int = 0) -> int:
        """Program the next free page; returns its offset in the block.

        ``seq`` is the flash array's global operation sequence number.
        Raises :class:`ProgramError` if the block is full or not owned
        (programming a FREE-kind block indicates an allocator bug).
        """
        if self.kind is BlockKind.FREE:
            raise ProgramError(
                f"block {self.block_id} programmed before allocation")
        if self.is_full:
            raise ProgramError(f"block {self.block_id} is full")
        offset = self._write_ptr
        if self._states[offset] is not PageState.FREE:
            raise ProgramError(
                f"page {offset} of block {self.block_id} is not free")
        self._states[offset] = PageState.VALID
        self._meta[offset] = meta
        self._write_ptr += 1
        self.valid_count += 1
        self.last_program_seq = seq
        self._advance()
        return offset

    def mark_bad(self) -> int:
        """Mark the next programmable page BAD (a program failure).

        The page is consumed permanently: erases leave it BAD and the
        write pointer skips over it.  Returns the offset marked.
        """
        if self.kind is BlockKind.FREE:
            raise ProgramError(
                f"block {self.block_id} marked bad before allocation")
        if self.is_full:
            raise ProgramError(f"block {self.block_id} is full")
        offset = self._write_ptr
        self._states[offset] = PageState.BAD
        self._meta[offset] = None
        self.bad_count += 1
        self._advance()
        return offset

    def invalidate(self, offset: int) -> None:
        """Mark a valid page invalid (its content was superseded)."""
        if self._states[offset] is not PageState.VALID:
            raise ProgramError(
                f"page {offset} of block {self.block_id} is "
                f"{self._states[offset].name}, cannot invalidate")
        self._states[offset] = PageState.INVALID
        self._meta[offset] = None
        self.valid_count -= 1
        self.invalid_count += 1

    def erase(self) -> None:
        """Erase the block, returning every page to FREE.

        Valid pages must have been migrated first; erasing data that is
        still live is the cardinal FTL sin and raises :class:`EraseError`.
        """
        if self.valid_count:
            raise EraseError(
                f"block {self.block_id} still has {self.valid_count} "
                "valid pages")
        for i in range(self.pages_per_block):
            if self._states[i] is PageState.BAD:
                continue
            self._states[i] = PageState.FREE
            self._meta[i] = None
        self._write_ptr = 0
        self.valid_count = 0
        self.invalid_count = 0
        self.erase_count += 1
        self.kind = BlockKind.FREE
        self._advance()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Block(id={self.block_id}, kind={self.kind.value}, "
                f"valid={self.valid_count}, invalid={self.invalid_count}, "
                f"free={self.free_count}, bad={self.bad_count}, "
                f"erases={self.erase_count})")
