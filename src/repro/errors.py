"""Exception hierarchy for the TPFTL reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.  Subclasses are split
along subsystem lines (flash substrate, cache management, FTL logic,
workload handling, configuration) because those are the natural recovery
boundaries: a trace-format problem is actionable by the user, while a flash
invariant violation indicates a simulator bug and should propagate.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another."""


class FlashError(ReproError):
    """Base class for flash-substrate errors."""


class ProgramError(FlashError):
    """A page was programmed in violation of NAND constraints.

    Raised when writing to a non-free page (erase-before-write violation)
    or to an out-of-range physical address.
    """


class EraseError(FlashError):
    """A block erase violated NAND constraints (e.g. valid pages remain)."""


class ReadError(FlashError):
    """A page read failed even after exhausting the ECC retry budget.

    Injected read errors are normally transient and corrected by the
    retry-with-backoff loop; this is the uncorrectable tail.
    """


class DeviceWornOutError(FlashError):
    """Block retirement has exhausted the device's spare capacity.

    Raised when retiring one more block (after an erase failure or a
    bad-page accumulation) would leave fewer usable blocks than the
    logical space plus metadata and GC reserve require.  The device can
    still be read; it can no longer safely accept writes.
    """


class PowerLossError(FlashError):
    """A simulated power cut stopped the device mid-workload.

    Raised by the fault injector at the start of the flash operation on
    which power dies, so the flash state equals everything completed
    before the cut — exactly what a post-crash scan would find.
    """


class OutOfSpaceError(FlashError):
    """The flash ran out of free blocks and garbage collection cannot help.

    This happens when the logical space plus metadata exceeds the physical
    capacity minus over-provisioning, i.e. the device is misconfigured for
    the workload footprint.
    """


class CacheError(ReproError):
    """Base class for mapping-cache errors."""


class CacheCapacityError(CacheError):
    """The cache budget is too small to hold even one working unit."""


class FTLError(ReproError):
    """An FTL-level invariant was violated (simulator bug)."""


class SimInvariantError(ReproError):
    """A structural invariant of the simulator was violated.

    Raised where the code used to rely on bare ``assert`` statements:
    unlike those, these checks survive ``python -O`` and carry enough
    context to debug.  Seeing one always means a simulator bug, never a
    user error.
    """


class SanitizerError(ReproError):
    """FTLSan detected a broken runtime invariant (see ``repro.analysis``).

    Carries the sanitizer rule code (e.g. ``"SAN005"`` for the §4.5
    prefetch-boundary rule) and the host operation sequence number at
    which the violation was detected, so a failing run can be replayed
    deterministically up to the offending operation.
    """

    def __init__(self, code: str, message: str,
                 op_seq: "int | None" = None) -> None:
        prefix = f"[{code}" + (f" @ op {op_seq}" if op_seq is not None
                               else "") + "] "
        super().__init__(prefix + message)
        #: sanitizer rule code, e.g. ``"SAN001"``
        self.code = code
        #: host page-operation sequence number at detection time
        self.op_seq = op_seq


class TranslationError(FTLError):
    """Address translation failed: the LPN has no mapping anywhere."""


class MetricsError(ReproError):
    """A statistic was requested that the run did not collect.

    Raised e.g. when :meth:`~repro.metrics.ResponseStats.percentile` is
    called on stats that were aggregated without ``keep_samples=True``:
    silently returning nothing would let a caller mistake "not measured"
    for "no data".
    """


class WorkloadError(ReproError):
    """A trace could not be parsed or a generator was misconfigured."""


class ExperimentError(ReproError):
    """An experiment runner was asked for an unknown experiment/FTL."""


class RunnerError(ExperimentError):
    """Base class for supervised-execution failures in the runner.

    Everything the supervision layer reports derives from this, so a
    caller that already guards experiments with ``except
    ExperimentError`` keeps working unchanged when supervision is on.
    """


class CellTimeoutError(RunnerError):
    """A simulation cell exceeded its wall-clock watchdog timeout.

    The supervisor kills the worker process and requeues the cell; this
    type appears as the ``error_type`` of the resulting attempt record.
    Timeouts always count as transient (the next attempt may be
    scheduled on a less loaded machine), so they are retried up to the
    policy's attempt budget.
    """


class WorkerCrashError(RunnerError):
    """A worker process died without delivering a result.

    Covers OOM kills, segfaults in native code, ``os._exit`` and the
    shapes that surface as ``BrokenProcessPool`` under a shared pool.
    Always transient: the cell is requeued with backoff.
    """


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """Structured record of one permanently failed cell.

    This is data, not an exception: a quarantined cell becomes one of
    these in the bench report, the journal and the failure manifest,
    while the rest of the matrix keeps running.  ``transient`` records
    whether the attempts were retryable (worker death, timeout,
    ``OSError``) or the first attempt failed deterministically.
    """

    key: str
    label: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    elapsed_s: float
    transient: bool

    def to_payload(self) -> Dict[str, Any]:
        """The record as a JSON-safe dict (journal/manifest encoding)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CellFailure":
        """Rebuild a record from :meth:`to_payload` output."""
        return cls(**{f.name: payload[f.name]
                      for f in dataclasses.fields(cls)})

    def summary(self) -> str:
        """One-line human-readable description of the failure."""
        kind = "transient" if self.transient else "deterministic"
        return (f"{self.label}: {self.error_type}: {self.message} "
                f"({kind}, {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''}, "
                f"{self.elapsed_s:.1f}s)")


class MatrixFailureError(RunnerError):
    """One or more cells of a batch were quarantined.

    Raised *after* every other cell of the batch has completed (and
    been committed to the run cache), so no finished work is lost: a
    rerun — or ``--resume`` — only retries the failed cells.  Carries
    the :class:`CellFailure` records as :attr:`failures`.
    """

    def __init__(self, failures: "Sequence[CellFailure]") -> None:
        self.failures = list(failures)
        lines = "; ".join(f.summary() for f in self.failures[:5])
        extra = (f" (+{len(self.failures) - 5} more)"
                 if len(self.failures) > 5 else "")
        super().__init__(
            f"{len(self.failures)} cell"
            f"{'s' if len(self.failures) != 1 else ''} quarantined after "
            f"supervision: {lines}{extra}; completed cells are cached — "
            f"rerun to retry only the failures")
