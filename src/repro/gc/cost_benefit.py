"""Cost-benefit victim selection (Kawaguchi et al. style).

Scores each candidate by ``benefit/cost = age * (1 - u) / (2 * u)`` where
``u`` is the block's valid-page utilisation and ``age`` the time since the
block last received a write, approximated here by the flash array's
operation sequence.  Fully invalid blocks are free wins and always chosen
first.

Included as an extension: the paper fixes greedy GC, but cost-benefit lets
users probe how the Vd/Vt terms of the analytical model react to hot/cold
separation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..flash.block import Block
from .base import VictimPolicy


class CostBenefitPolicy(VictimPolicy):
    """Pick the candidate with the highest age*(1-u)/(2u) score."""

    def select(self, candidates: Iterable[Block],
               now_seq: int = 0) -> Optional[Block]:
        """Return the victim block, or None if none collectible."""
        best: Optional[Block] = None
        best_score = -1.0
        for block in candidates:
            if not self.collectible(block):
                continue
            utilisation = block.valid_count / block.pages_per_block
            if utilisation == 0.0:
                return block  # erase is pure gain; nothing beats it
            age = max(1, now_seq - block.last_program_seq)
            score = age * (1.0 - utilisation) / (2.0 * utilisation)
            if score > best_score:
                best, best_score = block, score
        return best
