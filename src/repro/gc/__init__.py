"""Garbage-collection victim policies and wear leveling.

The paper holds the GC policy fixed (greedy, per §3.1 its effect is "beyond
the scope") while varying the FTL's caching; we therefore default to greedy
but also ship cost-benefit selection and an erase-count wear leveler as
extensions so ablations against the model's Vd/Vt assumptions are possible.
"""

from .base import VictimPolicy
from .cost_benefit import CostBenefitPolicy
from .greedy import GreedyPolicy
from .wear_leveling import WearLeveler

__all__ = ["VictimPolicy", "GreedyPolicy", "CostBenefitPolicy",
           "WearLeveler"]
