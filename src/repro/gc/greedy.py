"""Greedy victim selection: reclaim the block with the most invalid pages.

This is the policy FlashSim's DFTL module uses and the one the paper's
evaluation holds fixed across FTLs.  Ties break toward the lower erase
count so wear is spread without a separate leveler.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..flash.block import Block
from .base import VictimPolicy


class GreedyPolicy(VictimPolicy):
    """Pick the candidate with the most invalid pages."""

    def select(self, candidates: Iterable[Block],
               now_seq: int = 0) -> Optional[Block]:
        """Return the victim block, or None if none collectible."""
        best: Optional[Block] = None
        for block in candidates:
            if not self.collectible(block):
                continue
            if (best is None
                    or block.invalid_count > best.invalid_count
                    or (block.invalid_count == best.invalid_count
                        and block.erase_count < best.erase_count)):
                best = block
        return best
