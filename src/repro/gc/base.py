"""Victim-selection interface for garbage collection.

A policy looks at the candidate blocks of one region (data or translation)
and picks the block to reclaim.  Policies never see the mapping layer; the
FTL performs the migrations and mapping updates for whatever block the
policy chooses.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional

from ..flash.block import Block


class VictimPolicy(abc.ABC):
    """Chooses the next block to garbage-collect."""

    @abc.abstractmethod
    def select(self, candidates: Iterable[Block],
               now_seq: int = 0) -> Optional[Block]:
        """Return the victim block, or None if nothing is collectible.

        ``candidates`` are blocks of the region being collected; the
        caller excludes active write frontiers.  ``now_seq`` is the flash
        array's current operation sequence, for age-aware policies.
        """

    @staticmethod
    def collectible(block: Block) -> bool:
        """A block is collectible if erasing it gains at least one page."""
        return block.invalid_count > 0
