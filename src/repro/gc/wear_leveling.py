"""Threshold-based static wear leveling.

When the spread between the most- and least-erased blocks exceeds a
threshold, the leveler nominates the coldest collectible block for a forced
collection, cycling its long-lived content forward so the block re-enters
the hot rotation.  This is the classic erase-count-balancing scheme
(cf. Jimenez et al., FAST'14 background in the paper's §2.3).

The leveler only *nominates*; the owning FTL performs the migration using
its normal GC machinery, so mapping consistency is preserved for free.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..flash.block import Block


class WearLeveler:
    """Nominates cold blocks for forced collection when wear skews."""

    def __init__(self, threshold: int = 32) -> None:
        if threshold < 1:
            raise ValueError("wear threshold must be >= 1")
        self.threshold = threshold
        self.forced_collections = 0

    def nominate(self, candidates: Iterable[Block],
                 max_erase: Optional[int] = None) -> Optional[Block]:
        """Return a block to force-collect, or None if wear is balanced.

        Candidates should exclude active frontiers.  The nominated block
        is the least-erased one whose erase count trails the maximum by
        at least the threshold; blocks with no reclaimable or movable
        pages are skipped.  ``max_erase`` should be the device-wide
        maximum (the most-worn blocks are usually in the free pool and
        thus absent from ``candidates``); it defaults to the candidates'
        own maximum.
        """
        blocks = [b for b in candidates if not b.is_free]
        if not blocks:
            return None
        if max_erase is None:
            max_erase = max(b.erase_count for b in blocks)
        coldest: Optional[Block] = None
        for block in blocks:
            if max_erase - block.erase_count < self.threshold:
                continue
            if block.valid_count == 0 and block.invalid_count == 0:
                continue  # still blank; erasing it levels nothing
            if coldest is None or block.erase_count < coldest.erase_count:
                coldest = block
        if coldest is not None:
            self.forced_collections += 1
        return coldest
