"""Fast-path bench: measure the batched core against the reference core.

``python -m repro.experiments.fastbench`` times every tier-1 cell
through both execution cores, *asserts digest parity between them* (the
bench doubles as the parity diff gate: a cell whose results diverge
fails the run before any timing is reported), and writes the trajectory
to ``BENCH_fastpath.json``::

    {"bench": "fastpath", "schema": 1,
     "num_requests": 60000, "warmup_requests": 15000,
     "cells": [{"label": "financial1:dftl", "digest": "...",
                "reference_s": 14.2, "fast_s": 2.1, "speedup": 6.7},
               ...]}

``--baseline FILE`` replays the scale recorded in a committed
trajectory and fails (exit 1) when any cell's measured speedup drops
below ``baseline_speedup * (1 - tolerance)``.  Speedups are ratios of
two runs on the *same* machine, so they transfer across hardware in a
way raw wall-clock numbers never could — that is what makes a committed
trajectory a meaningful CI gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..ftl import make_ftl
from ..ssd import run_fast
from ..ssd.parallel import make_device
from .common import ExperimentScale, simulation_config
from .runner import RunSpec, build_spec_trace, encode_result

#: the tier-1 cells: every workload under the paper's baseline mapping
#: FTL (GC-heavy, where batching pays most) and the page-level optimal
#: FTL (policy-light, guards against fast-path overhead regressions)
FASTBENCH_CELLS = (
    ("financial1", "dftl"), ("financial1", "optimal"),
    ("financial2", "dftl"), ("financial2", "optimal"),
    ("msr-ts", "dftl"), ("msr-ts", "optimal"),
    ("msr-src", "dftl"), ("msr-src", "optimal"),
)

#: default slack against a committed trajectory: a cell may lose up to
#: this fraction of its committed speedup before the gate fails
DEFAULT_TOLERANCE = 0.2


def result_digest(result) -> str:
    """sha256 of the run cache's JSON encoding (the parity key)."""
    payload = json.dumps(encode_result(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _build_device(spec: RunSpec, trace):
    """A fresh device for one timed replay (same wiring as the runner)."""
    config = simulation_config(trace, cache_fraction=spec.cache_fraction,
                               tpftl=spec.tpftl, channels=spec.channels)
    ftl = make_ftl(spec.ftl, config)
    return make_device(ftl, channels=config.channels,
                       sample_interval=spec.sample_interval)


def measure_cell(spec: RunSpec, repeats: int = 3) -> Dict[str, Any]:
    """Time one cell through both cores; fail hard on divergence.

    Trace generation and device construction (prefill) happen outside
    the timed region — both are identical for the two cores, and the
    trajectory measures the *execution core*, i.e. the replay loop.
    Each core is replayed ``repeats`` times on a fresh device and the
    minimum is kept: the replay is deterministic, so the fastest
    observation is the one least perturbed by the host.
    """
    trace = build_spec_trace(spec)
    warmup = spec.scale.warmup_requests
    reference = None
    reference_s = math.inf
    for _ in range(repeats):
        device = _build_device(spec, trace)
        started = time.perf_counter()  # tp: allow=TP002 - harness timing, not simulation
        reference = device.run(trace, warmup_requests=warmup)
        reference_s = min(reference_s,
                          time.perf_counter() - started)  # tp: allow=TP002 - harness timing
    fast = None
    fast_s = math.inf
    for _ in range(repeats):
        device = _build_device(spec, trace)
        started = time.perf_counter()  # tp: allow=TP002 - harness timing
        fast = run_fast(device, trace, warmup_requests=warmup)
        fast_s = min(fast_s,
                     time.perf_counter() - started)  # tp: allow=TP002 - harness timing
    ref_key = result_digest(reference)
    fast_key = result_digest(fast)
    if ref_key != fast_key:
        raise AssertionError(  # tp: allow=TP003 - the bench IS the parity gate
            f"fast path diverged from reference on {spec.label()}: "
            f"{fast_key[:12]} != {ref_key[:12]}")
    return {
        "label": spec.label(),
        "digest": spec.digest,
        "reference_s": reference_s,
        "fast_s": fast_s,
        "speedup": reference_s / fast_s if fast_s else 0.0,
    }


def run_bench(num_requests: int, warmup_requests: int,
              repeats: int = 3) -> Dict[str, Any]:
    """Measure every tier-1 cell and assemble the trajectory."""
    scale = ExperimentScale(num_requests=num_requests,
                            warmup_requests=warmup_requests)
    cells: List[Dict[str, Any]] = []
    for workload, ftl in FASTBENCH_CELLS:
        spec = RunSpec(workload=workload, ftl=ftl, scale=scale)
        cell = measure_cell(spec, repeats=repeats)
        print(f"{cell['label']:>22}: reference {cell['reference_s']:6.2f}s"
              f"  fast {cell['fast_s']:6.2f}s"
              f"  x{cell['speedup']:.2f}", file=sys.stderr)
        cells.append(cell)
    return {
        "bench": "fastpath",
        "schema": 1,
        "num_requests": num_requests,
        "warmup_requests": warmup_requests,
        "cells": cells,
    }


def check_against_baseline(report: Dict[str, Any],
                           baseline: Dict[str, Any],
                           tolerance: float) -> List[str]:
    """Return one message per cell whose speedup regressed too far."""
    measured = {cell["label"]: cell for cell in report["cells"]}
    failures: List[str] = []
    for committed in baseline["cells"]:
        label = committed["label"]
        cell = measured.get(label)
        if cell is None:
            failures.append(f"{label}: committed cell was not measured")
            continue
        floor = committed["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            failures.append(
                f"{label}: speedup x{cell['speedup']:.2f} fell below "
                f"x{floor:.2f} (committed x{committed['speedup']:.2f} "
                f"- {tolerance:.0%} tolerance)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fastbench",
        description="Benchmark (and parity-gate) the batched fast path "
                    "against the reference execution core")
    parser.add_argument("--requests", type=int, default=None,
                        help="trace requests per cell (default: the "
                             "small scale, or the baseline's value)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup requests per cell")
    parser.add_argument("--out", metavar="FILE",
                        default="BENCH_fastpath.json",
                        help="where to write the measured trajectory")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="committed trajectory to gate against: "
                             "replays its scale and fails on >tolerance "
                             "speedup regressions")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup loss vs the "
                             "baseline (default 0.2)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per core per cell; the minimum "
                             "is kept (default 3)")
    args = parser.parse_args(argv)
    baseline = None
    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text(
            encoding="utf-8"))
    small = ExperimentScale.small()
    num_requests = (args.requests if args.requests is not None
                    else baseline["num_requests"] if baseline is not None
                    else small.num_requests)
    warmup = (args.warmup if args.warmup is not None
              else baseline["warmup_requests"] if baseline is not None
              else small.warmup_requests)
    report = run_bench(num_requests, warmup, repeats=args.repeats)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    print(f"fastpath trajectory -> {args.out}", file=sys.stderr)
    if baseline is not None:
        failures = check_against_baseline(report, baseline,
                                          args.tolerance)
        for message in failures:
            print(f"REGRESSION {message}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
