"""Figure 9 — impact of cache sizes on TPFTL.

(a) cache hit ratio, (b) mean system response time normalised to the
fully-cached configuration, and (c) write amplification, for cache sizes
from 1/128 of the mapping table up to the whole table, per workload.
Shares its runs with Fig 8(c).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ssd import RunResult
from .common import ExperimentResult, ExperimentScale, WORKLOADS
from .fig8 import cache_sweep_runs


def _sweep_result(experiment_id: str, title: str,
                  scale: ExperimentScale,
                  metric: Callable[[RunResult], float],
                  normalise_to_full: bool,
                  notes: str) -> ExperimentResult:
    runs = cache_sweep_runs(scale)
    fractions = list(scale.cache_fractions)
    rows: List[List[object]] = []
    data: Dict[str, Dict[float, float]] = {}
    for workload in WORKLOADS:
        base = metric(runs[(workload, fractions[-1])])
        row: List[object] = [workload]
        data[workload] = {}
        for fraction in fractions:
            value = metric(runs[(workload, fraction)])
            if normalise_to_full:
                value = value / base if base else 0.0
            row.append(value)
            data[workload][fraction] = value
        rows.append(row)
    headers = ["Workload"] + [f"1/{round(1 / f)}" if f < 1 else "1"
                              for f in fractions]
    return ExperimentResult(experiment_id=experiment_id, title=title,
                            headers=headers, rows=rows, notes=notes,
                            data=data)


def run_fig9a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _sweep_result(
        "fig9a", "TPFTL cache hit ratio vs cache size", scale,
        lambda r: r.metrics.hit_ratio, False,
        "paper: rises with cache size, 100% when fully cached; "
        "Financial stays lower (large working sets)")


def run_fig9b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _sweep_result(
        "fig9b",
        "TPFTL response time vs cache size (normalised to full table)",
        scale, lambda r: r.response.mean, True,
        "paper: decreases with cache size; a larger cache helps little "
        "on MSR (already near-optimal) but keeps paying off on "
        "Financial")


def run_fig9c(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _sweep_result(
        "fig9c", "TPFTL write amplification vs cache size", scale,
        lambda r: r.metrics.write_amplification, False,
        "paper: decreases with cache size; MSR WAs stay near 1")
