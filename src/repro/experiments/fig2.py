"""Figure 2 — spatial-locality analyses of the Financial1 workload.

(a) the access scatter (address vs time): sequential runs show up as
diagonal streaks among the random-dominant cloud; rendered here as a
coarse time x address density map plus run statistics.
(b) the number of cached translation pages in DFTL over time: sequential
bursts make the count dip sharply (consecutive entries concentrate on
few pages, evicting dispersed ones) and recover afterwards.
"""

from __future__ import annotations

from typing import List

from ..metrics import labelled_sparkline
from ..types import Trace
from ..errors import SimInvariantError
from .common import (ExperimentResult, ExperimentScale, build_workload,
                     run_one)

#: density-map geometry (time buckets x address buckets)
MAP_COLS = 16
MAP_ROWS = 12
_SHADES = " .:-=+*#%@"


def _density_map(trace: Trace) -> List[str]:
    """Coarse ASCII scatter of (arrival time, LPN) densities."""
    if not len(trace):
        return []
    t_max = max(r.arrival for r in trace) or 1.0
    grid = [[0] * MAP_COLS for _ in range(MAP_ROWS)]
    for request in trace:
        col = min(MAP_COLS - 1, int(request.arrival / t_max * MAP_COLS))
        row = min(MAP_ROWS - 1,
                  int(request.lpn / trace.logical_pages * MAP_ROWS))
        grid[row][col] += request.npages
    peak = max(max(row) for row in grid) or 1
    lines = []
    for row in reversed(grid):  # high addresses on top
        lines.append("".join(
            _SHADES[min(len(_SHADES) - 1,
                        int(v / peak * (len(_SHADES) - 1)))]
            for v in row))
    return lines


def run_fig2a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    trace = build_workload("financial1", scale)
    sequential = 0
    last_end = None
    for request in trace:
        if last_end is not None and request.lpn == last_end:
            sequential += 1
        last_end = request.end_lpn
    density = _density_map(trace)
    rows = [[f"row{idx:02d}", line] for idx, line in enumerate(density)]
    return ExperimentResult(
        experiment_id="fig2a",
        title=("Access distribution of Financial1 (address vs time "
               "density; diagonal streaks = sequential runs)"),
        headers=["", "time ->  (address increases upward)"],
        rows=rows,
        notes=(f"{sequential} of {len(trace)} requests directly extend "
               "the previous one; sequential runs are interspersed with "
               "random accesses, as in the paper's Fig 2(a)"),
        data={"density_map": density,
              "sequential_extensions": sequential,
              "requests": len(trace)},
    )


def run_fig2b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    result = run_one("financial1", "dftl", scale,
                     sample_interval=max(500, scale.sample_interval // 4))
    if result.sampler is None:  # pragma: no cover - run_one samples
        raise SimInvariantError("run_one returned no sampler")
    series = result.sampler.cached_pages_series()
    counts = [count for _, count in series]
    rows: List[List[object]] = []
    stride = max(1, len(series) // 20)
    for access, count in series[::stride]:
        rows.append([access, count])
    notes = ""
    if counts:
        notes = (f"cached translation pages range "
                 f"{min(counts)}..{max(counts)} across {len(counts)} "
                 "samples; dips correspond to sequential bursts "
                 "concentrating entries on few pages (paper Fig 2(b))\n"
                 + labelled_sparkline("cached TPs", counts))
    return ExperimentResult(
        experiment_id="fig2b",
        title="Cached translation pages over time (DFTL, Financial1)",
        headers=["User page access #", "Cached translation pages"],
        rows=rows,
        notes=notes,
        data={"series": series},
    )
