"""Figure 7 — erase counts plus the per-technique ablations (part 1).

(a) block erase count normalised to DFTL, per workload and FTL;
(b) probability of replacing a dirty entry for each TPFTL technique
    combination on Financial1;
(c) cache hit ratio for the same combinations.

Monograms: ``r`` request-level prefetching, ``s`` selective prefetching,
``b`` batch-update replacement, ``c`` clean-first replacement; ``-`` is
the bare two-level-LRU variant, ``rsbc`` the complete TPFTL.
"""

from __future__ import annotations

from typing import Dict, List

from ..ssd import RunResult
from .common import (ABLATION_CONFIGS, ExperimentResult, ExperimentScale,
                     HEADLINE_FTLS, WORKLOADS, run_matrix)
from .runner import RunSpec, get_runner


def ablation_runs(scale: ExperimentScale) -> Dict[str, RunResult]:
    """All Fig 7(b,c)/8(a,b) cells on Financial1, via the run cache."""
    specs = [RunSpec.for_ablation(monogram, scale)
             for monogram in ABLATION_CONFIGS]
    results = get_runner().run_specs(specs)
    return dict(zip(ABLATION_CONFIGS, results))


def run_fig7a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    matrix = run_matrix(scale)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOADS:
        base = matrix[(workload, "dftl")].metrics.total_erases
        row: List[object] = [workload]
        data[workload] = {}
        for ftl in HEADLINE_FTLS:
            erases = matrix[(workload, ftl)].metrics.total_erases
            value = erases / base if base else 0.0
            row.append(value)
            data[workload][ftl] = value
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig7a",
        title="Block erase count (normalised to DFTL)",
        headers=["Workload"] + [f.upper() for f in HEADLINE_FTLS],
        rows=rows,
        notes="paper: TPFTL erases -34.5% vs DFTL, -11.8% vs S-FTL on "
              "average (up to -55.6%/-17.1%)",
        data=data,
    )


def run_fig7b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = ablation_runs(scale)
    rows = [[monogram, runs[monogram].metrics.p_replace_dirty]
            for monogram in ABLATION_CONFIGS]
    return ExperimentResult(
        experiment_id="fig7b",
        title=("Probability of replacing a dirty entry per TPFTL "
               "configuration (Financial1)"),
        headers=["Config", "P(replace dirty)"],
        rows=rows,
        notes="paper: 'b' drops Prd sharply; 'c' alone helps little but "
              "'bc' halves 'b' again; prefetching ('rsbc') raises Prd "
              "slightly over 'bc'",
        data={m: runs[m].metrics.p_replace_dirty
              for m in ABLATION_CONFIGS},
    )


def run_fig7c(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = ablation_runs(scale)
    rows = [[monogram, runs[monogram].metrics.hit_ratio]
            for monogram in ABLATION_CONFIGS]
    return ExperimentResult(
        experiment_id="fig7c",
        title="Cache hit ratio per TPFTL configuration (Financial1)",
        headers=["Config", "Hit ratio"],
        rows=rows,
        notes="paper: 'r' +4.7%, 's' +5.6%, 'rs' +11% over '-'; '-' "
              "itself edges out DFTL; replacement techniques barely "
              "move the hit ratio",
        data={m: runs[m].metrics.hit_ratio for m in ABLATION_CONFIGS},
    )
