"""Model validation (beyond the paper's figures).

Feeds each simulated run's measured parameters (Hr, Prd, Rw, Hgcr, Vd,
Vt) into the paper's closed-form models (Eq. 1 and Eq. 13) and compares
against the simulator's own measurements — the consistency check behind
the paper's §3 claim that the two factors Hr and Prd govern both the
performance and lifetime cost of address translation.

The write-amplification model slightly overestimates FTLs that batch
same-translation-page updates during GC (the model charges one write
per missed migration), so ratios near but above 1.0 are expected for
DFTL-family FTLs.
"""

from __future__ import annotations

from typing import List

from ..models import params_from_run, write_amplification
from ..models.performance import avg_translation_time
from .common import (ExperimentResult, ExperimentScale, WORKLOADS,
                     run_matrix, simulation_config, build_workload)


def run(scale: ExperimentScale) -> ExperimentResult:
    """Replay a trace and return the measured results."""
    matrix = run_matrix(scale, ftls=("dftl", "tpftl"))
    rows: List[List[object]] = []
    data = {}
    for workload in WORKLOADS:
        trace = build_workload(workload, scale)
        ssd = simulation_config(trace).ssd
        for ftl in ("dftl", "tpftl"):
            result = matrix[(workload, ftl)]
            p = params_from_run(result, ssd)
            modeled_wa = write_amplification(p)
            measured_wa = result.metrics.write_amplification
            # measured mean translation cost per page access, from the
            # cause-attributed counters (load + writeback traffic only)
            m = result.metrics
            accesses = max(1, m.user_page_accesses)
            measured_tat = (
                (m.trans_reads_load + m.trans_reads_writeback)
                * ssd.read_us
                + m.trans_writes_writeback * ssd.write_us) / accesses
            modeled_tat = avg_translation_time(p)
            rows.append([
                workload, ftl, modeled_wa, measured_wa,
                modeled_wa / measured_wa if measured_wa else 0.0,
                modeled_tat, measured_tat,
            ])
            data[(workload, ftl)] = {
                "modeled_wa": modeled_wa, "measured_wa": measured_wa,
                "modeled_tat": modeled_tat,
                "measured_tat": measured_tat,
            }
    return ExperimentResult(
        experiment_id="modelcheck",
        title=("Analytical models (Eq. 1/13) vs simulation "
               "[extension]"),
        headers=["Workload", "FTL", "WA model", "WA sim", "WA ratio",
                 "Tat model (us)", "Tat sim (us)"],
        rows=rows,
        notes=("WA ratio slightly above 1 is expected: the model "
               "ignores GC-time batching of same-page updates"),
        data={"cells": data},
    )
