"""Parallel experiment runner with a persistent, content-addressed run cache.

The paper's evaluation (Fig 6-10, Table 2) is an embarrassingly parallel
matrix of independent (workload x FTL x configuration) simulations.  This
module gives the experiment layer the shape trace-driven simulators such
as wiscsee use to stay fast:

* :class:`RunSpec` — a picklable, content-addressed description of one
  simulation cell (workload, FTL, scale, cache fraction, TPFTL config,
  seed, sampling).  Equal specs have equal digests; changing any field
  changes the digest.
* :class:`RunCache` — persists each cell's :class:`~repro.ssd.RunResult`
  as JSON under ``results/.runcache/<digest>.json``.  Entries carry a
  schema version and a fingerprint of the simulator's source code, so a
  cache survives interpreter restarts but never a code change.  Corrupt
  files are quarantined to ``corrupt/`` and recomputed (surfaced via
  :meth:`RunCache.stats`), never fatal; stale-version files are misses.
* :class:`ParallelRunner` — fans cells out across supervised worker
  processes (``--jobs N`` / ``REPRO_JOBS``), deduplicates identical
  cells, consults the cache first, and records per-cell wall-clock so
  :meth:`ParallelRunner.write_bench` can emit ``BENCH_runner.json``
  (wall-clock per cell, speedup vs serial, cache hit counts).  With
  ``jobs=1`` it degrades to a plain serial loop with no worker
  processes, so tests and small runs behave exactly as before.

Execution is *supervised* (see :mod:`repro.experiments.supervisor`):
cells get a wall-clock watchdog (``--timeout``), transient failures —
worker death, ``BrokenProcessPool``, ``OSError`` — are retried with
exponential backoff and seeded jitter (``--retries``), persistently
failing cells are quarantined as structured
:class:`~repro.errors.CellFailure` records instead of aborting the
matrix, a JSONL journal under the cache directory makes interrupted
matrices resumable (``--resume``), and repeated worker-spawn failures
degrade the batch to serial instead of dying.

Every cell is deterministic: traces are generated from per-workload
seeds and the simulator itself contains no unseeded randomness (the TP
lint rules enforce this), so parallel and serial execution produce
field-for-field identical results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from ..config import TPFTLConfig
from ..errors import CellFailure, ExperimentError, MatrixFailureError
from ..ftl import make_ftl
from ..metrics import CacheSample, CacheSampler, FTLMetrics, ResponseStats
from ..ssd import RunResult, simulate
from ..types import Trace
from ..workloads import TrafficSpec, compose, make_preset
from .common import ExperimentScale, simulation_config
from .supervisor import (JOURNAL_NAME, Journal, RetryPolicy, Supervisor,
                         Task)

#: bump when the cache-file layout or RunResult encoding changes
#: (3: RunResult grew ``background_gc_time_us``; 4: per-tenant
#: response statistics and the ``qos`` dispatch-policy field)
CACHE_SCHEMA = 4
#: environment variable overriding the worker count (``--jobs`` wins)
JOBS_ENV = "REPRO_JOBS"
#: environment variable selecting the execution core: truthy values
#: (the default when unset) use the batched fast path, ``0``/``off``/
#: ``false``/``reference`` force the reference per-operation path.
#: The spec digest deliberately excludes this — both paths produce
#: field-for-field identical results (CI diff-gates this), so they
#: share cache entries.
FASTPATH_ENV = "REPRO_FASTPATH"
#: environment variable overriding the cache directory; the values
#: ``off``, ``none`` and ``0`` disable on-disk caching entirely
CACHE_ENV = "REPRO_RUNCACHE"
#: default on-disk cache location, relative to the working directory
DEFAULT_CACHE_DIR = Path("results") / ".runcache"
#: in-memory decoded-result entries kept per cache (L1 over the disk L2)
MEMORY_CACHE_ENTRIES = 64
#: generated traces memoised per process (they are deterministic)
TRACE_MEMO_ENTRIES = 4


# ----------------------------------------------------------------------
# RunSpec: one content-addressed simulation cell
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RunSpec:
    """A picklable description of one (workload, FTL, config) cell.

    ``seed`` overrides the workload preset's default seed when set;
    ``tpftl`` defaults to the complete configuration (monogram
    ``rsbc``); ``channels`` selects the device model (1 = the paper's
    single-server queue).  The digest is stable across processes and
    runs: it hashes the canonical JSON of every field.

    A ``traffic`` spec replaces the single-stream preset with a
    composed multi-tenant schedule (``workload`` then only labels the
    cell; the trace comes from :func:`~repro.workloads.compose`).
    ``qos`` picks the dispatch policy and ``keep_response_samples``
    retains per-request samples for percentile reads.  All three
    default to the paper model and are *omitted from the canonical
    form at their defaults*, so every pre-existing cell digest — and
    therefore every existing cache entry address — is unchanged.
    """

    workload: str
    ftl: str
    scale: ExperimentScale
    cache_fraction: Optional[float] = None
    tpftl: Optional[TPFTLConfig] = None
    seed: Optional[int] = None
    sample_interval: int = 0
    channels: int = 1
    traffic: Optional[TrafficSpec] = None
    qos: str = "fifo"
    keep_response_samples: bool = False

    @classmethod
    def for_ablation(cls, monogram: str, scale: ExperimentScale,
                     workload: str = "financial1") -> "RunSpec":
        """The cell for a paper-style ablation monogram (or ``dftl``)."""
        if monogram == "dftl":
            return cls(workload=workload, ftl="dftl", scale=scale)
        return cls(workload=workload, ftl="tpftl", scale=scale,
                   tpftl=TPFTLConfig.from_monogram(monogram))

    def canonical(self) -> Dict[str, Any]:
        """The spec as a JSON-safe dict with a stable key order.

        The post-v3 fields (``traffic``, ``qos``,
        ``keep_response_samples``) appear only when they deviate from
        the paper-model defaults: a default-valued spec canonicalises
        exactly as it did before those fields existed, keeping every
        historical digest (and cache address) valid.
        """
        data: Dict[str, Any] = {
            "workload": self.workload,
            "ftl": self.ftl,
            "scale": dataclasses.asdict(self.scale),
            "cache_fraction": self.cache_fraction,
            "tpftl": (dataclasses.asdict(self.tpftl)
                      if self.tpftl is not None else None),
            "seed": self.seed,
            "sample_interval": self.sample_interval,
            "channels": self.channels,
        }
        if self.traffic is not None:
            data["traffic"] = self.traffic.canonical()
        if self.qos != "fifo":
            data["qos"] = self.qos
        if self.keep_response_samples:
            data["keep_response_samples"] = True
        return data

    @property
    def digest(self) -> str:
        """Content address of this cell: sha256 of the canonical JSON."""
        text = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable cell name for logs and bench records."""
        parts = [self.workload, self.ftl]
        if self.tpftl is not None:
            parts.append(self.tpftl.monogram or "-")
        if self.cache_fraction is not None:
            parts.append(f"cf={self.cache_fraction:g}")
        if self.channels != 1:
            parts.append(f"ch={self.channels}")
        if self.traffic is not None:
            parts.append(f"mix={len(self.traffic.tenants)}t")
        if self.qos != "fifo":
            parts.append(self.qos)
        return ":".join(parts)


# ----------------------------------------------------------------------
# Deterministic cell execution (shared by serial path and pool workers)
# ----------------------------------------------------------------------
_TRACE_MEMO: Dict[Tuple, Trace] = {}


def build_spec_trace(spec: RunSpec) -> Trace:
    """Build (or reuse) the deterministic trace a spec describes.

    Traffic cells compose their multi-tenant schedule from the embedded
    :class:`~repro.workloads.TrafficSpec` (which carries its own
    namespace sizes, request budgets and seeds); single-stream cells
    generate their preset from the experiment scale as before.  Both
    are memoised per process — composition is deterministic.
    """
    scale = spec.scale
    if spec.traffic is not None:
        key: Tuple = ("traffic",
                      json.dumps(spec.traffic.canonical(),
                                 sort_keys=True))
    else:
        pages = (scale.msr_pages if spec.workload.startswith("msr")
                 else scale.financial_pages)
        key = (spec.workload, pages, scale.num_requests, spec.seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        if spec.traffic is not None:
            trace = compose(spec.traffic)
        else:
            kwargs: Dict[str, Any] = dict(logical_pages=pages,
                                          num_requests=scale.num_requests)
            if spec.seed is not None:
                kwargs["seed"] = spec.seed
            trace = make_preset(spec.workload, **kwargs)
        while len(_TRACE_MEMO) >= TRACE_MEMO_ENTRIES:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


def fastpath_enabled() -> bool:
    """Whether the runner executes cells through the batched core.

    Controlled by ``REPRO_FASTPATH`` (env vars propagate to pool
    workers); unset means *on* — the fast path is the default because
    it reproduces the reference field-for-field.
    """
    value = os.environ.get(FASTPATH_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no", "reference")


def execute_spec(spec: RunSpec, fast: Optional[bool] = None) -> RunResult:
    """Run one cell from scratch (no cache) and return its result.

    ``fast`` picks the execution core (batched vs reference);
    ``None`` defers to :func:`fastpath_enabled`.  Both cores return
    identical results, so the choice never affects cached digests.
    """
    trace = build_spec_trace(spec)
    config = simulation_config(trace, cache_fraction=spec.cache_fraction,
                               tpftl=spec.tpftl, channels=spec.channels)
    ftl = make_ftl(spec.ftl, config)
    if fast is None:
        fast = fastpath_enabled()
    weights = (spec.traffic.weights()
               if spec.traffic is not None and spec.qos == "fair"
               else None)
    return simulate(ftl, trace, sample_interval=spec.sample_interval,
                    keep_response_samples=spec.keep_response_samples,
                    warmup_requests=spec.scale.warmup_requests,
                    channels=config.channels, fast=fast, qos=spec.qos,
                    tenant_weights=weights)


def _timed_execute(spec: RunSpec) -> Tuple[RunResult, float]:
    """Pool worker: execute a cell and measure its wall-clock."""
    started = time.perf_counter()  # tp: allow=TP002 - harness timing, not simulation
    result = execute_spec(spec)
    elapsed = time.perf_counter() - started  # tp: allow=TP002 - harness timing
    return result, elapsed


# ----------------------------------------------------------------------
# RunResult <-> JSON
# ----------------------------------------------------------------------
def _encode_stats(stats: ResponseStats) -> Dict[str, Any]:
    """One :class:`ResponseStats` as a JSON-safe dict."""
    return {
        "count": stats.count,
        "mean": stats.mean,
        "m2": stats._m2,
        "max": stats.max,
        "total_queue_delay": stats.total_queue_delay,
        "total_service_time": stats.total_service_time,
        "keep_samples": stats.keep_samples,
        "samples": list(stats.samples),
    }


def _decode_stats(payload: Dict[str, Any]) -> ResponseStats:
    """Rebuild a :class:`ResponseStats` from :func:`_encode_stats`."""
    return ResponseStats(
        count=payload["count"], mean=payload["mean"],
        _m2=payload["m2"], max=payload["max"],
        total_queue_delay=payload["total_queue_delay"],
        total_service_time=payload["total_service_time"],
        keep_samples=payload["keep_samples"],
        samples=[float(v) for v in payload["samples"]])


def encode_result(result: RunResult) -> Dict[str, Any]:
    """Encode a :class:`RunResult` as a JSON-safe dict."""
    sampler = None
    if result.sampler is not None:
        sampler = {
            "interval": result.sampler.interval,
            "next_at": result.sampler._next_at,
            "samples": [[s.access_number, s.cached_pages,
                         s.cached_entries, s.dirty_entries]
                        for s in result.sampler.samples],
            "dirty_histogram": {str(k): v for k, v
                                in result.sampler.dirty_histogram.items()},
        }
    return {
        "ftl_name": result.ftl_name,
        "trace_name": result.trace_name,
        "requests": result.requests,
        "metrics": dataclasses.asdict(result.metrics),
        "response": _encode_stats(result.response),
        "sampler": sampler,
        "makespan": result.makespan,
        "gc_time_us": result.gc_time_us,
        "service_time_us": result.service_time_us,
        "background_gc_time_us": result.background_gc_time_us,
        "background_collections": result.background_collections,
        "channels": result.channels,
        "faults": dict(result.faults),
        "tenants": {name: _encode_stats(stats)
                    for name, stats in sorted(result.tenants.items())},
        "qos": result.qos,
    }


def decode_result(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`encode_result` output.

    Raises on any shape mismatch (missing keys, renamed fields); the
    cache layer treats every decoding error as a miss.
    """
    response = _decode_stats(payload["response"])
    sampler = None
    if payload["sampler"] is not None:
        samp = payload["sampler"]
        sampler = CacheSampler(
            interval=samp["interval"],
            samples=[CacheSample(access_number=a, cached_pages=p,
                                 cached_entries=e, dirty_entries=d)
                     for a, p, e, d in samp["samples"]],
            dirty_histogram={int(k): v for k, v
                             in samp["dirty_histogram"].items()})
        sampler._next_at = samp["next_at"]
    return RunResult(
        ftl_name=payload["ftl_name"],
        trace_name=payload["trace_name"],
        requests=payload["requests"],
        metrics=FTLMetrics(**payload["metrics"]),
        response=response,
        sampler=sampler,
        makespan=payload["makespan"],
        gc_time_us=payload["gc_time_us"],
        service_time_us=payload["service_time_us"],
        background_gc_time_us=payload["background_gc_time_us"],
        background_collections=payload["background_collections"],
        channels=payload["channels"],
        faults=dict(payload["faults"]),
        tenants={name: _decode_stats(stats)
                 for name, stats in payload["tenants"].items()},
        qos=payload["qos"],
    )


# ----------------------------------------------------------------------
# Code fingerprint: invalidates the cache whenever the simulator changes
# ----------------------------------------------------------------------
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file, memoised per process.

    Any change to the package (FTL logic, workload generators, metrics,
    the runner itself) yields a new fingerprint, so stale cache entries
    can never leak across code versions.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


# ----------------------------------------------------------------------
# RunCache: content-addressed, persistent, self-invalidating
# ----------------------------------------------------------------------
class RunCache:
    """Two-level cache of finished cells, keyed by :attr:`RunSpec.digest`.

    Level 1 is a small in-process dict of decoded results (bounded to
    :data:`MEMORY_CACHE_ENTRIES`, evicting the oldest entry — unlike its
    predecessor ``_MATRIX_CACHE`` it cannot grow without bound).  Level 2
    is one JSON file per cell under ``directory``; files from another
    schema or code version are misses, and undecodable files are
    quarantined into ``directory/corrupt/`` and counted in
    :meth:`stats` — a flaky disk surfaces as a number, not a silent
    recompute.
    """

    #: subdirectory receiving quarantined (undecodable) cache files
    CORRUPT_DIR = "corrupt"

    def __init__(self,
                 directory: "Path | str | None | bool" = True) -> None:
        if directory is True:
            directory = default_cache_dir()
        elif directory is False:
            directory = None
        #: ``None`` disables the persistent level entirely
        self.directory = Path(directory) if directory is not None else None
        self._memory: Dict[str, Tuple[RunResult, float]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalid = 0
        self.corrupt = 0
        self.write_errors = 0
        self._warned_unwritable = False

    # -- lookup ---------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[Tuple[RunResult, float]]:
        """Return ``(result, original_elapsed_s)`` for a cached cell."""
        digest = spec.digest
        entry = self._memory.get(digest)
        if entry is not None:
            self.hits += 1
            return entry
        entry = self._read_disk(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._remember(digest, entry)
        return entry

    def _read_disk(self, digest: str) -> Optional[Tuple[RunResult, float]]:
        if self.directory is None:
            return None
        path = self.directory / f"{digest}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if (payload["schema"] != CACHE_SCHEMA
                    or payload["fingerprint"] != code_fingerprint()
                    or payload["digest"] != digest):
                self.invalid += 1
                return None
            return (decode_result(payload["result"]),
                    float(payload["elapsed_s"]))
        except FileNotFoundError:
            return None
        except Exception:
            # corrupt/truncated file: quarantine it, count it, recompute
            self.corrupt += 1
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Move an undecodable cache file aside for post-mortem.

        The file lands in ``directory/corrupt/`` (best-effort: a
        read-only cache directory leaves it in place) so the evidence
        of a flaky disk or torn write survives instead of being
        clobbered by the recomputed entry.
        """
        if self.directory is None:
            return
        target_dir = self.directory / self.CORRUPT_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            pass

    # -- store ----------------------------------------------------------
    def put(self, spec: RunSpec, result: RunResult,
            elapsed_s: float) -> None:
        """Persist one finished cell (atomically) and remember it."""
        digest = spec.digest
        self._remember(digest, (result, elapsed_s))
        if self.directory is None:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": code_fingerprint(),
            "digest": digest,
            "spec": spec.canonical(),
            "elapsed_s": elapsed_s,
            "result": encode_result(result),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, self.directory / f"{digest}.json")
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            self.stores += 1
        except OSError as exc:
            # read-only filesystem etc.: run uncached rather than fail,
            # but say so once — a cache that never persists should not
            # masquerade as a working cache
            self.write_errors += 1
            if not self._warned_unwritable:
                self._warned_unwritable = True
                warnings.warn(
                    f"run cache directory {self.directory} is not "
                    f"writable ({exc}); results will not persist "
                    f"across runs", RuntimeWarning, stacklevel=2)

    def _remember(self, digest: str,
                  entry: Tuple[RunResult, float]) -> None:
        self._memory.pop(digest, None)
        while len(self._memory) >= MEMORY_CACHE_ENTRIES:
            self._memory.pop(next(iter(self._memory)))
        self._memory[digest] = entry

    # -- maintenance ----------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process level (tests use this to control memory)."""
        self._memory.clear()

    def wipe(self) -> int:
        """Delete every persistent entry (quarantined files included);
        returns the number removed."""
        self.clear_memory()
        if self.directory is None or not self.directory.is_dir():
            return 0
        removed = 0
        targets = list(self.directory.glob("*.json"))
        targets += list((self.directory / self.CORRUPT_DIR).glob("*.json"))
        for path in targets:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store/corruption counters since this cache was
        created.  ``corrupt`` counts quarantined undecodable files,
        ``write_errors`` counts entries that could not be persisted."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "invalid": self.invalid,
                "corrupt": self.corrupt,
                "write_errors": self.write_errors}


def default_cache_dir() -> Optional[Path]:
    """Cache directory from :data:`CACHE_ENV`, or the default; ``None``
    when the environment disables persistent caching."""
    value = os.environ.get(CACHE_ENV)
    if value is None:
        return DEFAULT_CACHE_DIR
    if value.strip().lower() in ("", "off", "none", "0", "disabled"):
        return None
    return Path(value)


# ----------------------------------------------------------------------
# ParallelRunner
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CellOutcome:
    """Bench record of one cell inside a :meth:`run_specs` batch.

    ``attempts`` counts supervised execution attempts (0 for a cache
    hit); ``failed`` marks a quarantined cell whose
    :class:`~repro.errors.CellFailure` record appears in the bench
    report's ``failures`` list.
    """

    digest: str
    label: str
    elapsed_s: float
    cached: bool
    attempts: int = 0
    failed: bool = False


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit ``jobs`` wins, then :data:`JOBS_ENV`,
    then 1 (serial)."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV} must be an integer, got {env!r}")
        else:
            jobs = 1
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


class ParallelRunner:
    """Executes batches of cells, cache-first, under supervision.

    ``jobs=1`` with no ``timeout_s`` (the default) runs cells inline
    with no worker processes — the exact serial behaviour the figure
    modules had before this runner existed.  ``jobs>1`` (or any
    watchdog timeout) fans cache misses out across supervised worker
    processes: stuck cells are killed and requeued, transient failures
    (worker death, ``BrokenProcessPool``, ``OSError``) are retried with
    backoff, persistent failures are quarantined as
    :class:`~repro.errors.CellFailure` records, and repeated
    worker-spawn failures degrade the batch to serial instead of
    failing.  Completed cells are committed to the cache the moment
    they finish, so a SIGINT (or a later ``--resume``) never loses
    finished work.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[RunCache] = None,
                 timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 fail_fast: bool = False,
                 journal: Optional[Journal] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        #: ``None`` disables caching (every cell recomputes)
        self.cache = cache
        #: per-cell wall-clock watchdog (``None`` = no watchdog)
        self.timeout_s = timeout_s
        #: transient-failure retry/backoff policy
        self.retry = retry if retry is not None else RetryPolicy()
        #: quarantine the batch at the first failed cell
        self.fail_fast = fail_fast
        #: checkpoint/resume journal (``None`` = no journal)
        self.journal = journal
        #: quarantine records accumulated across batches
        self.failures: List[CellFailure] = []
        self.outcomes: List[CellOutcome] = []
        self._batches: List[Dict[str, Any]] = []
        self._degraded = False

    def _make_supervisor(self) -> Supervisor:
        """A supervisor configured with this runner's policy."""
        supervisor = Supervisor(jobs=self.jobs, timeout_s=self.timeout_s,
                                retry=self.retry,
                                fail_fast=self.fail_fast,
                                journal=self.journal)
        supervisor.degraded = self._degraded
        return supervisor

    # -- cell batches ---------------------------------------------------
    def run_specs(self, specs: Sequence[RunSpec],
                  allow_failures: bool = False
                  ) -> "List[Optional[RunResult]]":
        """Run a batch of cells and return results in input order.

        Identical specs are executed once; cached cells are served from
        the :class:`RunCache` without simulating.  Quarantined cells
        raise :class:`~repro.errors.MatrixFailureError` *after* every
        other cell has completed and been cached — unless
        ``allow_failures`` is set, in which case their slots hold
        ``None`` and the records are available on :attr:`failures`.
        """
        batch_started = time.perf_counter()  # tp: allow=TP002 - harness timing
        order = [spec.digest for spec in specs]
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.digest, spec)
        done: Dict[str, Tuple[RunResult, float, bool]] = {}
        pending: List[RunSpec] = []
        for digest, spec in unique.items():
            entry = self.cache.get(spec) if self.cache is not None else None
            if entry is not None:
                done[digest] = (entry[0], entry[1], True)
            else:
                pending.append(spec)
        failures: Dict[str, CellFailure] = {}
        attempts: Dict[str, int] = {}
        retries = 0
        if pending:
            supervisor = self._make_supervisor()
            tasks = [Task(key=spec.digest, label=spec.label(),
                          fn=_timed_execute, args=(spec,))
                     for spec in pending]

            def commit(key: str, value: Tuple[RunResult, float],
                       _elapsed_s: float, _attempts: int) -> None:
                """Cache a finished cell immediately (SIGINT-safe)."""
                result, elapsed = value
                if self.cache is not None:
                    self.cache.put(unique[key], result, elapsed)
                done[key] = (result, elapsed, False)

            report = supervisor.run(tasks, on_complete=commit)
            self._degraded = self._degraded or supervisor.degraded
            failures = report.failures
            attempts = report.attempts
            retries = report.retries
            self.failures.extend(failures.values())
        hits = misses = 0
        serial_equivalent = 0.0
        for digest in unique:
            if digest in done:
                result, elapsed, cached = done[digest]
                hits += cached
                misses += not cached
                serial_equivalent += elapsed
                self.outcomes.append(CellOutcome(
                    digest=digest, label=unique[digest].label(),
                    elapsed_s=elapsed, cached=cached,
                    attempts=attempts.get(digest,
                                          0 if cached else 1)))
            elif digest in failures:
                failure = failures[digest]
                misses += 1
                self.outcomes.append(CellOutcome(
                    digest=digest, label=unique[digest].label(),
                    elapsed_s=failure.elapsed_s, cached=False,
                    attempts=failure.attempts, failed=True))
            # cells abandoned by fail-fast are neither counted nor
            # recorded: they never ran, and a resume will run them
        wall = time.perf_counter() - batch_started  # tp: allow=TP002 - harness timing
        self._batches.append({
            "cells": len(unique),
            "cache_hits": hits,
            "cache_misses": misses,
            "failed": len(failures),
            "retries": retries,
            "wall_clock_s": wall,
            "serial_equivalent_s": serial_equivalent,
            "speedup_vs_serial": (serial_equivalent / wall) if wall > 0
            else 1.0,
        })
        if self.journal is not None:
            self.journal.record("batch", cells=len(unique),
                                cache_hits=hits, failed=len(failures),
                                retries=retries,
                                wall_clock_s=round(wall, 4))
        if failures and not allow_failures:
            raise MatrixFailureError(
                [failures[d] for d in unique if d in failures])
        return [done[digest][0] if digest in done else None
                for digest in order]

    # -- generic fan-out (faults/analysis registry experiments) ---------
    def map(self, fn: Callable[..., Any],
            items: Sequence[Tuple]) -> List[Any]:
        """Apply ``fn(*args)`` to every args-tuple, in order.

        ``fn`` must be a module-level (picklable) callable; with
        ``jobs=1`` and no watchdog this is a plain loop (exceptions
        propagate raw, as they always did).  Otherwise items run under
        the same supervision as :meth:`run_specs` — watchdog, retry
        with backoff, degrade-to-serial — and persistent failures raise
        :class:`~repro.errors.MatrixFailureError` after the remaining
        items complete.  Results are not cached — use :meth:`run_specs`
        for content-addressed cells.
        """
        payloads = [(fn, tuple(args)) for args in items]
        if (self.jobs > 1 or self.timeout_s is not None) and payloads:
            name = getattr(fn, "__name__", "fn")
            tasks = [Task(key=f"map:{index:04d}:{name}",
                          label=f"{name}[{index}]", fn=fn, args=args)
                     for index, (fn, args) in enumerate(payloads)]
            supervisor = self._make_supervisor()
            report = supervisor.run(tasks)
            self._degraded = self._degraded or supervisor.degraded
            if report.failures:
                self.failures.extend(report.failures.values())
                raise MatrixFailureError(
                    [report.failures[t.key] for t in tasks
                     if t.key in report.failures])
            return [report.results[t.key] for t in tasks]
        return [fn(*args) for fn, args in payloads]

    # -- bench trajectory ----------------------------------------------
    def bench_report(self) -> Dict[str, Any]:
        """Everything measured so far, in ``BENCH_runner.json`` shape."""
        total_serial = sum(b["serial_equivalent_s"] for b in self._batches)
        total_wall = sum(b["wall_clock_s"] for b in self._batches)
        hits = sum(b["cache_hits"] for b in self._batches)
        misses = sum(b["cache_misses"] for b in self._batches)
        retries = sum(b.get("retries", 0) for b in self._batches)
        return {
            "bench": "runner",
            "schema": CACHE_SCHEMA,
            "jobs": self.jobs,
            "supervision": {
                "timeout_s": self.timeout_s,
                "max_attempts": self.retry.max_attempts,
                "fail_fast": self.fail_fast,
                "degraded_to_serial": self._degraded,
            },
            "cells": [dataclasses.asdict(outcome)
                      for outcome in self.outcomes],
            "batches": list(self._batches),
            "failures": [failure.to_payload()
                         for failure in self.failures],
            "totals": {
                "cells": hits + misses,
                "cache_hits": hits,
                "cache_misses": misses,
                "failed": len(self.failures),
                "retries": retries,
                "wall_clock_s": total_wall,
                "serial_equivalent_s": total_serial,
                "speedup_vs_serial": (total_serial / total_wall)
                if total_wall > 0 else 1.0,
            },
            "cache": (self.cache.stats() if self.cache is not None
                      else None),
        }

    def write_bench(self, path: "Path | str") -> Path:
        """Write :meth:`bench_report` as JSON; returns the path."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.bench_report(), indent=2)
                          + "\n", encoding="utf-8")
        return target

    # -- failure manifest ----------------------------------------------
    def failure_manifest(self) -> Dict[str, Any]:
        """Every quarantined cell so far, as a JSON-safe manifest."""
        return {
            "manifest": "runner-failures",
            "schema": 1,
            "failed": len(self.failures),
            "degraded_to_serial": self._degraded,
            "supervision": {
                "jobs": self.jobs,
                "timeout_s": self.timeout_s,
                "max_attempts": self.retry.max_attempts,
                "fail_fast": self.fail_fast,
            },
            "failures": [failure.to_payload()
                         for failure in self.failures],
        }

    def write_failure_manifest(self, path: "Path | str") -> Path:
        """Write :meth:`failure_manifest` as JSON; returns the path."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.failure_manifest(), indent=2)
                          + "\n", encoding="utf-8")
        return target


# ----------------------------------------------------------------------
# The process-wide default runner (what run_matrix & friends use)
# ----------------------------------------------------------------------
_DEFAULT_RUNNER: Optional[ParallelRunner] = None


def get_runner() -> ParallelRunner:
    """The shared runner, created on first use from the environment."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        cache = RunCache()
        journal = (Journal(cache.directory / JOURNAL_NAME)
                   if cache.directory is not None else None)
        _DEFAULT_RUNNER = ParallelRunner(cache=cache, journal=journal)
    return _DEFAULT_RUNNER


def configure_runner(jobs: Optional[int] = None,
                     cache_dir: "Path | str | None | bool" = True,
                     timeout_s: Optional[float] = None,
                     retries: Optional[int] = None,
                     fail_fast: bool = False,
                     resume: bool = False,
                     journal: bool = True) -> ParallelRunner:
    """Install (and return) a new default runner.

    ``cache_dir=True`` keeps the environment-resolved default location,
    ``None``/``False`` disables persistent caching, and a path uses that
    directory.  ``timeout_s``/``retries``/``fail_fast`` configure the
    supervision layer; ``resume`` appends to (instead of rotating) the
    journal under the cache directory, replaying the previous session's
    completed/failed counts into :attr:`Journal.prior`.  ``journal=False``
    disables journalling entirely (it is also off whenever persistent
    caching is off — there is nothing to resume from without a cache).
    """
    global _DEFAULT_RUNNER
    if cache_dir in (None, False):
        cache = RunCache(directory=False)
    elif cache_dir is True:
        cache = RunCache()
    else:
        cache = RunCache(directory=Path(cache_dir))
    journal_obj = None
    if journal and cache.directory is not None:
        journal_obj = Journal(cache.directory / JOURNAL_NAME,
                              resume=resume)
    retry = (RetryPolicy(max_attempts=retries) if retries is not None
             else RetryPolicy())
    _DEFAULT_RUNNER = ParallelRunner(jobs=jobs, cache=cache,
                                     timeout_s=timeout_s, retry=retry,
                                     fail_fast=fail_fast,
                                     journal=journal_obj)
    return _DEFAULT_RUNNER


def reset_runner() -> None:
    """Forget the default runner (next use rebuilds from environment)."""
    global _DEFAULT_RUNNER
    _DEFAULT_RUNNER = None


def clear_run_caches() -> None:
    """Drop in-process memoisation: the default runner's L1 cache and
    the per-process trace memo.  Persistent cache files are untouched
    (use :meth:`RunCache.wipe` for those)."""
    _TRACE_MEMO.clear()
    if _DEFAULT_RUNNER is not None and _DEFAULT_RUNNER.cache is not None:
        _DEFAULT_RUNNER.cache.clear_memory()
