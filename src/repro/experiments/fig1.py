"""Figure 1 — distribution of entries in DFTL's mapping cache.

(a) the average number of cached entries per cached translation page,
sampled over time; (b) the CDF of dirty entries per cached translation
page on the write-dominant workloads.  The paper observes fewer than 150
entries per page (under 15% of a page) and that 53%-71% of cached pages
hold more than one dirty entry, with per-page dirty means above 15 —
the two facts motivating TP-node clustering and batch updates.
"""

from __future__ import annotations

from typing import Dict, List

from ..metrics import labelled_sparkline
from ..errors import SimInvariantError
from .common import (ExperimentResult, ExperimentScale, WORKLOADS,
                     run_one)

#: write-dominant workloads used for the Fig 1(b) CDF
WRITE_DOMINANT = ("financial1", "msr-ts", "msr-src")


def run_fig1a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    rows: List[List[object]] = []
    data: Dict[str, object] = {}
    sparklines: List[str] = []
    for workload in WORKLOADS:
        result = run_one(workload, "dftl", scale,
                         sample_interval=scale.sample_interval)
        if result.sampler is None:  # pragma: no cover - run_one samples
            raise SimInvariantError("run_one returned no sampler")
        series = result.sampler.entries_per_page_series()
        means = [value for _, value in series]
        rows.append([
            workload,
            min(means) if means else 0.0,
            (sum(means) / len(means)) if means else 0.0,
            max(means) if means else 0.0,
            len(series),
        ])
        data[workload] = {"series": series}
        sparklines.append(labelled_sparkline(f"{workload:>10s}", means))
    notes = ("paper: <=150 entries on average (<15% of a 1024-entry "
             "page); i.e. caching whole pages is space-inefficient\n"
             + "\n".join(sparklines))
    return ExperimentResult(
        experiment_id="fig1a",
        title=("Average number of entries in each cached translation "
               "page (DFTL)"),
        headers=["Workload", "Min", "Mean", "Max", "Samples"],
        rows=rows,
        notes=notes,
        data=data,
    )


def run_fig1b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    rows: List[List[object]] = []
    data: Dict[str, object] = {}
    for workload in WRITE_DOMINANT:
        result = run_one(workload, "dftl", scale,
                         sample_interval=scale.sample_interval)
        if result.sampler is None:  # pragma: no cover - run_one samples
            raise SimInvariantError("run_one returned no sampler")
        sampler = result.sampler
        multi_dirty = sampler.fraction_pages_with_dirty_above(1)
        mean_dirty = sampler.mean_dirty_per_page()
        rows.append([workload, f"{multi_dirty * 100:.1f}%", mean_dirty])
        data[workload] = {
            "cdf": sampler.dirty_cdf(),
            "fraction_pages_multi_dirty": multi_dirty,
            "mean_dirty_per_page": mean_dirty,
        }
    return ExperimentResult(
        experiment_id="fig1b",
        title=("CDF of dirty entries per cached translation page "
               "(DFTL, write-dominant workloads)"),
        headers=["Workload", ">1 dirty entry", "Mean dirty/page"],
        rows=rows,
        notes=("paper: 53%-71% of cached pages hold more than one dirty "
               "entry; average dirty counts above 15"),
        data=data,
    )
