"""Reliability torture (beyond the paper's figures).

Two sweeps over every registered FTL:

* **media faults** — replay a synthetic hot/cold workload with injected
  transient read errors, program failures and erase failures, and report
  how the device degraded: ECC retries, grown bad pages, retired blocks
  and remaining spare capacity.  The block-mapped FTLs run with program
  faults off (their rigid offset-aligned layout cannot tolerate grown
  bad pages; they reject the configuration) but take the read and erase
  faults like everyone else.
* **power loss** — a cut-point sweep with the torture harness: power
  dies after the N-th flash operation, the mapping state is rebuilt by
  scanning flash, and the invalidate-before-publish and read-your-writes
  invariants are asserted at every cut.

Both sweeps are deterministic (seeded) and run on a deliberately tiny
geometry so that the sweep covers many device lifetimes of wear in
seconds; the scale knob only widens the power-loss sweep.
"""

from __future__ import annotations

from typing import List

from ..config import CacheConfig, SimulationConfig, SSDConfig
from ..errors import DeviceWornOutError
from ..faults import powerloss
from ..ftl import FTL_NAMES, make_ftl
from ..workloads import make_preset
from .common import ExperimentResult, ExperimentScale

#: tiny geometry: a handful of device overwrites completes in seconds
FAULT_PAGES = 2_048
FAULT_PAGE_SIZE = 512
FAULT_PAGES_PER_BLOCK = 16

#: injected fault rates for the media sweep (high by design: the point
#: is to exercise degradation, not to model a healthy device)
READ_ERROR_RATE = 0.01
PROGRAM_FAIL_RATE = 0.002
ERASE_FAIL_RATE = 0.01

#: FTLs whose block-granular layout cannot absorb grown bad pages
BLOCK_MAPPED = ("block", "hybrid")


def _config_for(ftl_name: str, program_faults: bool) -> SimulationConfig:
    ssd = SSDConfig(
        logical_pages=FAULT_PAGES,
        page_size=FAULT_PAGE_SIZE,
        pages_per_block=FAULT_PAGES_PER_BLOCK,
        read_error_rate=READ_ERROR_RATE,
        program_fail_rate=PROGRAM_FAIL_RATE if program_faults else 0.0,
        erase_fail_rate=ERASE_FAIL_RATE,
        fault_seed=17,
    )
    cache = None
    if ftl_name in ("sftl", "cdftl"):
        cache = CacheConfig(budget_bytes=4_096)
    return SimulationConfig(ssd=ssd, cache=cache)


def _media_row(ftl_name: str, scale: ExperimentScale) -> List[object]:
    program_faults = ftl_name not in BLOCK_MAPPED
    config = _config_for(ftl_name, program_faults)
    ftl = make_ftl(ftl_name, config)
    trace = make_preset("financial1", logical_pages=FAULT_PAGES,
                        num_requests=max(2_000,
                                         scale.num_requests // 10))
    served = 0
    worn_out = False
    try:
        for request in trace.requests:
            ftl.serve_request(request)
            served += 1
    except DeviceWornOutError:
        worn_out = True
    stats = ftl.flash.stats
    return [
        ftl_name,
        "on" if program_faults else "off",
        served,
        stats.ecc_recovered_reads,
        stats.uncorrectable_reads,
        ftl.flash.bad_page_count,
        ftl.flash.retired_block_count,
        max(0, ftl.flash.spare_blocks_remaining),
        "worn out" if worn_out else "healthy",
    ]


def _powerloss_row(ftl_name: str, scale: ExperimentScale) -> List[object]:
    ssd = SSDConfig(logical_pages=FAULT_PAGES,
                    page_size=FAULT_PAGE_SIZE,
                    pages_per_block=FAULT_PAGES_PER_BLOCK)
    cache = None
    if ftl_name in ("sftl", "cdftl"):
        cache = CacheConfig(budget_bytes=4_096)
    config = SimulationConfig(ssd=ssd, cache=cache)
    cuts = 120 if scale.name == "full" else 50
    trim_ratio = 0.0 if ftl_name in BLOCK_MAPPED else 0.05
    ops = powerloss.default_ops(600, FAULT_PAGES, seed=23,
                                trim_ratio=trim_ratio)
    report = powerloss.torture_sweep(
        ftl_name, config, ops=ops,
        cut_points=powerloss.default_cut_points(cuts, start=1, stride=11))
    return [ftl_name, cuts, report.cuts_fired, "verified"]


def run(scale: ExperimentScale) -> ExperimentResult:
    """Run the media-fault and power-loss sweeps over every FTL.

    Both sweeps fan out per-FTL across the default runner's supervised
    workers (they are deterministic and independent per FTL); with
    ``jobs=1`` they run serially as before.  Under ``--jobs``/
    ``--timeout`` a hung or crashed per-FTL row is retried and, if
    persistent, quarantined as a structured failure after the other
    rows complete (:class:`~repro.errors.MatrixFailureError`).
    """
    from .runner import get_runner
    runner = get_runner()
    media_rows = runner.map(_media_row,
                            [(name, scale) for name in FTL_NAMES])
    power_rows = runner.map(_powerloss_row,
                            [(name, scale) for name in FTL_NAMES])
    return ExperimentResult(
        experiment_id="faults",
        title="Fault injection & power-loss torture [extension]",
        headers=["FTL", "Pfaults", "Served", "ECC rec", "Uncorr",
                 "Bad pages", "Retired", "Spares left", "State"],
        rows=media_rows,
        notes=("power-loss sweep: " + ", ".join(
            f"{r[0]} {r[2]}/{r[1]} cuts verified" for r in power_rows)
            + "; every cut recovered by flash scan with "
              "invalidate-before-publish and read-your-writes intact"),
        data={
            "media": {row[0]: row[1:] for row in media_rows},
            "powerloss": {row[0]: {"cut_points": row[1],
                                   "cuts_fired": row[2]}
                          for row in power_rows},
        },
    )
