"""Command-line entry point for the experiment runners.

Usage::

    python -m repro.experiments fig6a fig6b      # specific experiments
    python -m repro.experiments all              # everything, in order
    python -m repro.experiments all --scale full # paper-scale runs
    tpftl-experiments table2                     # installed script
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .common import ExperimentScale
from .registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tpftl-experiments",
        description=("Regenerate the tables and figures of the TPFTL "
                     "paper (EuroSys'15)"))
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument(
        "--scale", choices=("small", "full"), default="small",
        help="small: CI-sized runs (default); full: paper-scale runs")
    parser.add_argument(
        "--requests", type=int, default=None,
        help="override the number of trace requests")
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="override the number of warmup requests")
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each result as JSON into this directory")
    return parser


def resolve_scale(args: argparse.Namespace) -> ExperimentScale:
    """Build the ExperimentScale the CLI args select."""
    scale = (ExperimentScale.full() if args.scale == "full"
             else ExperimentScale.small())
    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.warmup is not None:
        overrides["warmup_requests"] = args.warmup
    if overrides:
        from dataclasses import replace
        scale = replace(scale, **overrides)
    return scale


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ids = list(args.experiments)
    if len(ids) == 1 and ids[0].lower() == "all":
        ids = list(EXPERIMENTS)
    unknown = [i for i in ids if i.lower() not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    scale = resolve_scale(args)
    json_dir = None
    if args.json is not None:
        from pathlib import Path
        json_dir = Path(args.json)
        json_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id in ids:
        started = time.time()  # tp: allow=TP002 - CLI progress display
        result = run_experiment(experiment_id, scale)
        elapsed = time.time() - started  # tp: allow=TP002 - CLI progress display
        print(result.render())
        print(f"({elapsed:.1f}s)\n")
        if json_dir is not None:
            path = json_dir / f"{experiment_id}_{scale.name}.json"
            path.write_text(result.to_json(), encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
