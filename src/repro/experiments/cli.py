"""Command-line entry point for the experiment runners.

Usage::

    python -m repro.experiments fig6a fig6b      # specific experiments
    python -m repro.experiments all              # everything, in order
    python -m repro.experiments all --scale full # paper-scale runs
    python -m repro.experiments all --jobs 8     # parallel cells
    python -m repro.experiments all --bench BENCH_runner.json
    tpftl-experiments table2                     # installed script

Finished simulation cells persist in ``results/.runcache`` (override
with ``--cache-dir``/``$REPRO_RUNCACHE``, disable with ``--no-cache``,
reset with ``--wipe-cache``), so re-runs only simulate what changed.

Execution is supervised: ``--timeout`` arms a per-cell watchdog,
``--retries`` bounds backoff retries of transient failures, persistent
failures become a structured manifest (``failure-manifest.json`` next
to the cache) instead of an escaped traceback, and Ctrl-C drains
completed cells into the cache before exiting so ``--resume`` can
finish an interrupted matrix without repeating any work.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..errors import RunnerError
from .common import ExperimentScale
from .registry import EXPERIMENTS, run_experiment
from .runner import FASTPATH_ENV, configure_runner

#: manifest written next to the run cache when cells are quarantined
MANIFEST_NAME = "failure-manifest.json"


def _attempt_budget(text: str) -> int:
    """``--retries`` argument type: a total attempt budget >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"attempt budget must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tpftl-experiments",
        description=("Regenerate the tables and figures of the TPFTL "
                     "paper (EuroSys'15)"))
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument(
        "--scale", choices=("small", "full"), default="small",
        help="small: CI-sized runs (default); full: paper-scale runs")
    parser.add_argument(
        "--requests", type=int, default=None,
        help="override the number of trace requests")
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="override the number of warmup requests")
    parser.add_argument(
        "--channels", type=int, default=None, metavar="N",
        help="flash channels for every simulation cell (default 1 = "
             "the paper's single-server queue)")
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each result as JSON into this directory")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent simulation cells "
             "(default: $REPRO_JOBS or 1 = serial)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent run cache for this invocation")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="run-cache directory (default: $REPRO_RUNCACHE or "
             "results/.runcache)")
    parser.add_argument(
        "--wipe-cache", action="store_true",
        help="delete every cached run before executing")
    parser.add_argument(
        "--bench", metavar="FILE", default=None,
        help="write runner bench data (per-cell wall-clock, speedup vs "
             "serial, cache hits) to this JSON file, e.g. "
             "BENCH_runner.json")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-cell wall-clock watchdog: a cell exceeding this is "
             "killed, requeued with backoff, and eventually quarantined "
             "(default: no watchdog)")
    parser.add_argument(
        "--retries", type=_attempt_budget, default=None, metavar="N",
        help="total attempt budget per cell (first try included) for "
             "transient failures — worker death, OSError, watchdog "
             "timeouts; must be >= 1 (default 3)")
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted/failed session: append to the "
             "runner journal and serve previously completed cells from "
             "the run cache")
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort the matrix at the first quarantined cell instead "
             "of completing the remaining cells first")
    execution = parser.add_mutually_exclusive_group()
    execution.add_argument(
        "--fast", dest="fastpath", action="store_true", default=None,
        help="execute cells through the batched fast path (the "
             "default; identical results, several times faster)")
    execution.add_argument(
        "--reference", dest="fastpath", action="store_false",
        help="execute cells through the reference per-operation path "
             "(for parity diffing and debugging)")
    return parser


def resolve_scale(args: argparse.Namespace) -> ExperimentScale:
    """Build the ExperimentScale the CLI args select."""
    scale = (ExperimentScale.full() if args.scale == "full"
             else ExperimentScale.small())
    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.warmup is not None:
        overrides["warmup_requests"] = args.warmup
    if args.channels is not None:
        overrides["channels"] = args.channels
    if overrides:
        from dataclasses import replace
        scale = replace(scale, **overrides)
    return scale


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ids = list(args.experiments)
    if len(ids) == 1 and ids[0].lower() == "all":
        ids = list(EXPERIMENTS)
    unknown = [i for i in ids if i.lower() not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    scale = resolve_scale(args)
    if args.fastpath is not None:
        # Propagate through the environment so supervised worker
        # processes inherit the choice of execution core.
        os.environ[FASTPATH_ENV] = "1" if args.fastpath else "0"
    runner = configure_runner(
        jobs=args.jobs,
        cache_dir=(False if args.no_cache
                   else args.cache_dir if args.cache_dir is not None
                   else True),
        timeout_s=args.timeout,
        retries=args.retries,
        fail_fast=args.fail_fast,
        resume=args.resume)
    if args.wipe_cache and runner.cache is not None:
        removed = runner.cache.wipe()
        print(f"wiped {removed} cached runs", file=sys.stderr)
    if args.resume and runner.journal is not None:
        prior = runner.journal.prior
        print(f"resuming: {len(prior.completed)} cells previously "
              f"completed, {len(prior.failed)} previously failed"
              + (", session was interrupted" if prior.interrupted
                 else ""), file=sys.stderr)
    json_dir = None
    if args.json is not None:
        json_dir = Path(args.json)
        json_dir.mkdir(parents=True, exist_ok=True)
    try:
        for experiment_id in ids:
            started = time.time()  # tp: allow=TP002 - CLI progress display
            result = run_experiment(experiment_id, scale)
            elapsed = time.time() - started  # tp: allow=TP002 - CLI progress display
            print(result.render())
            print(f"({elapsed:.1f}s)\n")
            if json_dir is not None:
                path = json_dir / f"{experiment_id}_{scale.name}.json"
                path.write_text(result.to_json(), encoding="utf-8")
    except KeyboardInterrupt:
        cached = (runner.cache.stats()["stores"]
                  if runner.cache is not None else 0)
        print(f"\ninterrupted: {cached} completed cells committed to "
              f"the run cache; rerun with --resume to finish the "
              f"remaining cells", file=sys.stderr)
        _write_bench(runner, args)
        return 130
    except RunnerError as exc:
        manifest = _write_manifest(runner)
        print(f"supervision: {exc}", file=sys.stderr)
        for failure in runner.failures:
            print(f"  quarantined {failure.summary()}", file=sys.stderr)
        if manifest is not None:
            print(f"failure manifest -> {manifest}", file=sys.stderr)
        _write_bench(runner, args)
        return 1
    _write_bench(runner, args)
    return 0


def _write_bench(runner, args) -> None:
    """Honour ``--bench`` (also on the interrupt/failure exits)."""
    if args.bench is None:
        return
    target = runner.write_bench(args.bench)
    totals = runner.bench_report()["totals"]
    print(f"bench: {totals['cells']} cells, "
          f"{totals['cache_hits']} cache hits, "
          f"{totals['failed']} failed, {totals['retries']} retries, "
          f"speedup vs serial {totals['speedup_vs_serial']:.2f}x "
          f"-> {target}", file=sys.stderr)


def _write_manifest(runner) -> Optional[Path]:
    """Write the failure manifest next to the run cache (or results/)."""
    if runner.cache is not None and runner.cache.directory is not None:
        target = runner.cache.directory / MANIFEST_NAME
    else:
        target = Path("results") / MANIFEST_NAME
    try:
        return runner.write_failure_manifest(target)
    except OSError:
        return None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
