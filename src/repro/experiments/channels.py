"""Channel scaling — response time vs flash parallelism [extension].

The paper's Fig 6e response-time model is a single flash channel; this
experiment sweeps the :class:`~repro.ssd.ChannelSSDevice` channel count
(1, 2, 4, 8 — the range Agrawal et al. model) for DFTL and TPFTL on the
Financial1 workload and reports how the system response time, queueing
delay and GC share evolve as operations overlap.

The 1-channel row is *exactly* the paper's model: ``channels=1`` replays
are bit-for-bit identical to :class:`~repro.ssd.SSDevice`, so the sweep
anchors to the Fig 6e numbers by construction.

``data`` carries a BENCH-style response-time trajectory (one record per
cell, in sweep order) so ``--json`` output can be archived as a bench
artifact; CI uploads it alongside ``BENCH_runner.json``.
"""

from __future__ import annotations

from typing import List

from .common import ExperimentResult, ExperimentScale

#: channel counts of the sweep (Agrawal et al. model up to 8)
CHANNEL_SWEEP = (1, 2, 4, 8)
#: FTLs compared at every channel count
SWEEP_FTLS = ("dftl", "tpftl")
#: the paper's headline workload
SWEEP_WORKLOAD = "financial1"


def run(scale: ExperimentScale) -> ExperimentResult:
    """Sweep channel counts for DFTL/TPFTL on Financial1.

    Cells route through the default runner (cache-first, parallel with
    ``--jobs``); each (FTL, channels) cell is content-addressed, so the
    1-channel rows are shared with the Fig 6 matrix when the scales
    match.
    """
    from .runner import RunSpec, get_runner
    specs = [RunSpec(workload=SWEEP_WORKLOAD, ftl=ftl_name, scale=scale,
                     channels=channels)
             for ftl_name in SWEEP_FTLS for channels in CHANNEL_SWEEP]
    results = get_runner().run_specs(specs)
    by_cell = dict(zip([(s.ftl, s.channels) for s in specs], results))

    rows: List[List[object]] = []
    trajectory: List[dict] = []
    for ftl_name in SWEEP_FTLS:
        base = by_cell[(ftl_name, 1)].response.mean
        for channels in CHANNEL_SWEEP:
            result = by_cell[(ftl_name, channels)]
            response = result.response
            speedup = (base / response.mean) if response.mean else 1.0
            rows.append([
                ftl_name, channels, response.mean,
                response.mean_queue_delay, response.mean_service_time,
                result.gc_time_fraction, result.makespan, speedup,
            ])
            trajectory.append({
                "ftl": ftl_name,
                "channels": channels,
                "mean_response_us": response.mean,
                "max_response_us": response.max,
                "mean_queue_delay_us": response.mean_queue_delay,
                "mean_service_us": response.mean_service_time,
                "gc_time_fraction": result.gc_time_fraction,
                "makespan_us": result.makespan,
                "speedup_vs_1ch": speedup,
            })
    return ExperimentResult(
        experiment_id="channels",
        title="Response time vs flash channels [extension]",
        headers=["FTL", "Ch", "Resp us", "Queue us", "Svc us",
                 "GC frac", "Makespan us", "Speedup"],
        rows=rows,
        notes=("channels=1 equals the paper's single-server model "
               "bit-for-bit; speedup is mean response vs that baseline"),
        data={
            "bench": "channels",
            "workload": SWEEP_WORKLOAD,
            "scale": scale.name,
            "channel_sweep": list(CHANNEL_SWEEP),
            "trajectory": trajectory,
        },
    )
