"""Experiment runners: one per table/figure of the paper's evaluation.

Each runner regenerates the rows/series of its table or figure and
returns an :class:`~repro.experiments.common.ExperimentResult` whose
``render()`` prints a paper-comparable text table.  The registry maps
experiment ids (``table2``, ``fig6a`` ... ``fig10``) to runners; the CLI
(``python -m repro.experiments``) runs them from the command line.
"""

from .common import ExperimentResult, ExperimentScale, run_matrix
from .registry import EXPERIMENTS, run_experiment
from .runner import (ParallelRunner, RunCache, RunSpec, configure_runner,
                     get_runner)
from .supervisor import (Journal, JournalState, RetryPolicy,
                         SupervisionReport, Supervisor, Task)

__all__ = ["ExperimentResult", "ExperimentScale", "run_matrix",
           "EXPERIMENTS", "run_experiment",
           "ParallelRunner", "RunCache", "RunSpec", "configure_runner",
           "get_runner",
           "Journal", "JournalState", "RetryPolicy",
           "SupervisionReport", "Supervisor", "Task"]
