"""FTLSan sweep: every FTL under the sanitizer at full sampling rate.

An extension beyond the paper's figures: replays a deterministic mixed
read/write/trim workload on every registered FTL with
:class:`~repro.analysis.sanitizer.FTLSan` attached at sampling interval
1 (every host page operation is followed by the full incremental checker
set, with the O(device) sweeps throttled), then forces one final full
validation.  A clean run demonstrates that the §4.2/§4.4/§4.5 invariant
checkers, the shadow page map and the flash state-machine rules hold
across the whole matrix — the runtime half of ``repro.analysis``.

The block-mapped FTLs (``block``, ``hybrid``) reject TRIM by design, so
their workload share of trims is folded into writes.
"""

from __future__ import annotations

import random
from typing import List

from ..config import (CacheConfig, SanitizerConfig, SimulationConfig,
                      SSDConfig)
from ..ftl import FTL_NAMES, make_ftl
from ..types import Op, Request
from .common import ExperimentResult, ExperimentScale

#: tiny geometry: full-rate sampling is O(cache) per op, so keep the
#: device small and the op count high instead
SAN_PAGES = 512
SAN_PAGE_SIZE = 256
SAN_PAGES_PER_BLOCK = 8
#: cache budget roomy enough for the page-granular FTLs on this geometry
SAN_CACHE_BYTES = 2_048

#: FTLs whose block-granular mapping has no per-page unmap
NO_TRIM = ("block", "hybrid")


def _build_ops(num_ops: int, trims: bool,
               seed: int) -> List[Request]:
    """Deterministic mixed single/multi-page read/write/trim stream."""
    rng = random.Random(seed)
    requests: List[Request] = []
    for index in range(num_ops):
        draw = rng.random()
        npages = rng.choice((1, 1, 1, 2, 4))
        if draw < 0.45:
            op = Op.READ
        elif draw < 0.90 or not trims:
            op = Op.WRITE
        else:
            op, npages = Op.TRIM, 1
        lpn = rng.randrange(SAN_PAGES - npages + 1)
        requests.append(Request(arrival=float(index) * 100.0, op=op,
                                lpn=lpn, npages=npages))
    return requests


def _sweep_row(ftl_name: str, num_ops: int) -> List[object]:
    config = SimulationConfig(
        ssd=SSDConfig(logical_pages=SAN_PAGES,
                      page_size=SAN_PAGE_SIZE,
                      pages_per_block=SAN_PAGES_PER_BLOCK),
        cache=CacheConfig(budget_bytes=SAN_CACHE_BYTES),
        sanitizer=SanitizerConfig(enabled=True, interval=1,
                                  full_every=64),
    )
    ftl = make_ftl(ftl_name, config)
    for request in _build_ops(num_ops, trims=ftl_name not in NO_TRIM,
                              seed=1215):
        ftl.serve_request(request)
    sanitizer = ftl.sanitizer
    if sanitizer is None:  # pragma: no cover - config enables it
        raise RuntimeError("sanitizer was not attached")
    sanitizer.final_check()
    stats = sanitizer.stats()
    return [ftl_name, stats["ops"], stats["samples"],
            stats["full_scans"], "clean"]


def run(scale: ExperimentScale) -> ExperimentResult:
    """Run the FTLSan-at-full-rate sweep over every registered FTL.

    The per-FTL sweeps are independent and deterministic, so they fan
    out across the default runner's supervised workers when
    ``jobs > 1`` — with watchdog/retry/quarantine semantics identical
    to the simulation cells (see ``repro.experiments.supervisor``).
    """
    from .runner import get_runner
    num_ops = 2_500 if scale.name == "full" else 800
    rows = get_runner().map(_sweep_row,
                            [(name, num_ops) for name in FTL_NAMES])
    return ExperimentResult(
        experiment_id="analysis",
        title="FTLSan full-rate invariant sweep [extension]",
        headers=["FTL", "Page ops", "Samples", "Full scans", "Verdict"],
        rows=rows,
        notes=("sampling interval 1 (every host page op), full sweeps "
               "(shadow-map injectivity + flash state machine) every "
               "64th sample plus one forced final full validation; "
               "rules SAN001-SAN009, see docs/architecture.md"),
        data={row[0]: {"ops": row[1], "samples": row[2],
                       "full_scans": row[3]} for row in rows},
    )
