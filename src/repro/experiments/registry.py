"""Experiment registry: id -> runner, plus the one-call entry point."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ExperimentError
from . import (analysis, channels, faults, fig1, fig2, fig6, fig7, fig8,
               fig9, fig10, model_check, table2, threshold_sweep,
               traffic)
from .common import ExperimentResult, ExperimentScale

#: every table/figure of the paper's evaluation, in paper order
EXPERIMENTS: Dict[str, Callable[[ExperimentScale], ExperimentResult]] = {
    "table2": table2.run,
    "fig1a": fig1.run_fig1a,
    "fig1b": fig1.run_fig1b,
    "fig2a": fig2.run_fig2a,
    "fig2b": fig2.run_fig2b,
    "fig6a": fig6.run_fig6a,
    "fig6b": fig6.run_fig6b,
    "fig6c": fig6.run_fig6c,
    "fig6d": fig6.run_fig6d,
    "fig6e": fig6.run_fig6e,
    "fig6f": fig6.run_fig6f,
    "fig7a": fig7.run_fig7a,
    "fig7b": fig7.run_fig7b,
    "fig7c": fig7.run_fig7c,
    "fig8a": fig8.run_fig8a,
    "fig8b": fig8.run_fig8b,
    "fig8c": fig8.run_fig8c,
    "fig9a": fig9.run_fig9a,
    "fig9b": fig9.run_fig9b,
    "fig9c": fig9.run_fig9c,
    "fig10": fig10.run,
    # extensions beyond the paper's artifacts
    "modelcheck": model_check.run,
    "threshold-sweep": threshold_sweep.run,
    "faults": faults.run,
    "analysis": analysis.run,
    "channels": channels.run,
    "traffic": traffic.run,
}


def run_experiment(experiment_id: str,
                   scale: ExperimentScale = None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig6a"``)."""
    if scale is None:
        scale = ExperimentScale.small()
    try:
        runner = EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{', '.join(EXPERIMENTS)}") from None
    return runner(scale)
