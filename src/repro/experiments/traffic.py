"""Multi-tenant traffic: per-tenant tail latency vs load [extension].

The paper replays closed-loop single-stream traces; this experiment
drives the device with the open-loop multi-tenant frontend
(:mod:`repro.workloads.traffic`): three tenants with distinct Table 4
characters, arrival processes and fair-share weights, composed into one
schedule and swept from underload to 2x overload under both dispatch
policies (paper FIFO vs weighted fair-share).

The sweep is *calibrated*: a probe cell measures the mix's mean flash
service time per request — service work is arrival-independent, so the
probe is exact — and each load point sets the tenants' mean
inter-arrival so the aggregate offered rate is ``load x capacity``.
``load=1.0`` is therefore the knee of the single-server queue
regardless of scale, workload mix or FTL configuration.

Every cell routes through the supervised
:class:`~repro.experiments.runner.ParallelRunner` (content-addressed
cache, watchdog/retry, ``--jobs`` fan-out).  ``python -m
repro.experiments.traffic`` runs the sweep and writes the trajectory to
``BENCH_traffic.json``::

    {"bench": "traffic", "schema": 1, "load_sweep": [0.5, ...],
     "cells": [{"load": 2.0, "qos": "fair",
                "aggregate": {"p99_us": ..., ...},
                "tenants": {"oltp": {"p99_us": ..., ...}, ...}}, ...]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ExperimentError
from ..metrics import ResponseStats
from ..workloads import ArrivalModel, TenantSpec, TrafficSpec
from .common import ExperimentResult, ExperimentScale

#: offered load as a fraction of measured device capacity; the sweep
#: crosses the knee (1.0) into sustained overload
LOAD_SWEEP = (0.5, 0.9, 1.4, 2.0)
#: dispatch policies compared at every load point
QOS_SWEEP = ("fifo", "fair")
#: the mix: (tenant, preset, fair-share weight, arrival kind) — three
#: Table 4 characters under three different arrival processes
MIX_TENANTS = (
    ("oltp", "financial1", 4.0, "poisson"),
    ("read", "financial2", 2.0, "bursty"),
    ("batch", "msr-src", 1.0, "diurnal"),
)
#: FTL under test (the paper's proposal)
MIX_FTL = "tpftl"
#: composition seed of the mix (tenant seeds derive from it)
MIX_SEED = 7
#: probe interarrival (us); any value works — service work per request
#: is arrival-independent, the probe only reads the service-time total
PROBE_INTERARRIVAL_US = 10_000.0


def base_mix(scale: ExperimentScale,
             mean_interarrival_us: float) -> TrafficSpec:
    """The three-tenant mix at one per-tenant offered rate.

    Requests split evenly across tenants (total = the scale's request
    count, so warmup budgets carry over); every tenant gets an
    equally-sized namespace slice.
    """
    per_tenant = max(1, scale.num_requests // len(MIX_TENANTS))
    pages = max(1024, scale.financial_pages // 2)
    tenants = tuple(
        TenantSpec(
            name=name, workload=workload, num_requests=per_tenant,
            pages=pages,
            arrival=ArrivalModel(
                kind=kind, mean_interarrival_us=mean_interarrival_us),
            weight=weight, seed=MIX_SEED + index)
        for index, (name, workload, weight, kind)
        in enumerate(MIX_TENANTS))
    return TrafficSpec(name="mix3", tenants=tenants, seed=MIX_SEED)


def _percentiles(stats: ResponseStats) -> Dict[str, Any]:
    """The bench record of one statistics stream (tails included)."""
    return {
        "requests": stats.count,
        "mean_response_us": stats.mean,
        "mean_queue_delay_us": stats.mean_queue_delay,
        "max_response_us": stats.max,
        "p99_us": stats.percentile(99.0),
        "p999_us": stats.percentile(99.9),
    }


def run(scale: ExperimentScale) -> ExperimentResult:
    """Sweep offered load x dispatch policy for the three-tenant mix."""
    from .runner import RunSpec, get_runner
    runner = get_runner()
    probe_spec = RunSpec(workload="traffic-probe", ftl=MIX_FTL,
                         scale=scale,
                         traffic=base_mix(scale, PROBE_INTERARRIVAL_US))
    probe = runner.run_specs([probe_spec])[0]
    if not probe.requests or not probe.service_time_us:
        raise ExperimentError(
            "traffic probe produced no measurable service time; "
            "increase the scale's request count past its warmup")
    mean_service_us = probe.service_time_us / probe.requests
    # aggregate offered rate (requests/us) of N tenants with per-tenant
    # mean inter-arrival T is N/T; capacity of the single-server device
    # is 1/mean_service — so T = N * mean_service / load hits the target
    interarrivals = {
        load: len(MIX_TENANTS) * mean_service_us / load
        for load in LOAD_SWEEP}
    specs = [RunSpec(workload="traffic-mix", ftl=MIX_FTL, scale=scale,
                     traffic=base_mix(scale, interarrivals[load]),
                     qos=qos, keep_response_samples=True)
             for load in LOAD_SWEEP for qos in QOS_SWEEP]
    results = runner.run_specs(specs)
    by_cell = dict(zip([(load, qos) for load in LOAD_SWEEP
                        for qos in QOS_SWEEP], results))

    rows: List[List[object]] = []
    cells: List[Dict[str, Any]] = []
    for load in LOAD_SWEEP:
        for qos in QOS_SWEEP:
            result = by_cell[(load, qos)]
            streams = [("*", result.response)]
            streams += sorted(result.tenants.items())
            for name, stats in streams:
                rows.append([
                    f"{load:g}x", qos, name, stats.count, stats.mean,
                    stats.mean_queue_delay, stats.percentile(99.0),
                    stats.percentile(99.9),
                ])
            cells.append({
                "load": load,
                "qos": qos,
                "mean_interarrival_us": interarrivals[load],
                "digest": RunSpec(
                    workload="traffic-mix", ftl=MIX_FTL, scale=scale,
                    traffic=base_mix(scale, interarrivals[load]),
                    qos=qos, keep_response_samples=True).digest,
                "makespan_us": result.makespan,
                "gc_time_fraction": result.gc_time_fraction,
                "aggregate": _percentiles(result.response),
                "tenants": {name: _percentiles(stats)
                            for name, stats
                            in sorted(result.tenants.items())},
            })
    return ExperimentResult(
        experiment_id="traffic",
        title="Per-tenant tail latency vs offered load [extension]",
        headers=["Load", "QoS", "Tenant", "Reqs", "Resp us",
                 "Queue us", "p99 us", "p99.9 us"],
        rows=rows,
        notes=("load is the aggregate offered rate as a fraction of "
               "measured device capacity; '*' rows aggregate all "
               "tenants; fair-share weights oltp:read:batch = 4:2:1"),
        data={
            "bench": "traffic",
            "schema": 1,
            "scale": scale.name,
            "ftl": MIX_FTL,
            "load_sweep": list(LOAD_SWEEP),
            "qos_sweep": list(QOS_SWEEP),
            "probe": {
                "mean_service_us": mean_service_us,
                "capacity_requests_per_us": 1.0 / mean_service_us,
            },
            "tenants": [
                {"name": name, "workload": workload, "weight": weight,
                 "arrival": kind}
                for name, workload, weight, kind in MIX_TENANTS],
            "cells": cells,
        },
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: run the sweep and write ``BENCH_traffic.json``."""
    parser = argparse.ArgumentParser(
        prog="traffic",
        description="Sweep multi-tenant offered load under FIFO vs "
                    "fair-share dispatch and archive the trajectory")
    parser.add_argument("--requests", type=int, default=None,
                        help="total trace requests across tenants "
                             "(default: the small scale)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup requests before measurement")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent cells")
    parser.add_argument("--out", metavar="FILE",
                        default="BENCH_traffic.json",
                        help="where to write the measured trajectory")
    args = parser.parse_args(argv)
    scale = ExperimentScale.small()
    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.warmup is not None:
        overrides["warmup_requests"] = args.warmup
    if overrides:
        import dataclasses
        scale = dataclasses.replace(scale, **overrides)
    if args.jobs is not None:
        from .runner import configure_runner
        configure_runner(jobs=args.jobs)
    result = run(scale)
    print(result.render(), file=sys.stderr)
    Path(args.out).write_text(
        json.dumps(result.data, indent=2, sort_keys=False) + "\n",
        encoding="utf-8")
    print(f"traffic trajectory -> {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
