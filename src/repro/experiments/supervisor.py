"""Supervised execution: watchdogs, retry/backoff, journal, degrade.

The :class:`~repro.experiments.runner.ParallelRunner` fans independent
simulation cells out across processes.  Without supervision, a fleet of
cells is only as reliable as its weakest member: one OOM-killed worker
(``BrokenProcessPool``), one hung cell or one Ctrl-C aborts the whole
matrix and discards every in-flight result.  This module applies the
discipline the paper demands of the FTL itself — never lose committed
state, degrade instead of dying — to the harness:

* **Watchdog** — every cell runs in its own worker process with a
  wall-clock deadline (``timeout_s``).  A cell that overruns is killed
  (``SIGTERM`` then ``SIGKILL``) and requeued; the attempt is recorded
  as a :class:`~repro.errors.CellTimeoutError`.
* **Retry with backoff** — transient failures (worker death, ``OSError``,
  ``BrokenProcessPool``, timeouts) are retried up to
  :attr:`RetryPolicy.max_attempts` with exponential backoff plus
  *seeded* jitter, so replays of a chaos scenario are deterministic.
  Deterministic simulator errors are never retried: the simulation is
  seeded, so the second attempt would fail identically.
* **Quarantine** — a cell that exhausts its budget becomes a structured
  :class:`~repro.errors.CellFailure` record (exception type, message,
  traceback, attempts, elapsed) instead of an escaped traceback; the
  rest of the batch keeps running.
* **Journal** — an append-only JSONL file under the run-cache directory
  records starts, completions, retries, failures and interrupts.  A
  SIGINT drains already-completed workers into the cache, journals the
  interrupt and only then re-raises ``KeyboardInterrupt``; ``--resume``
  replays the journal for reporting while the run cache serves every
  previously completed cell.
* **Degrade to serial** — if worker processes repeatedly cannot be
  spawned (restricted environments, fork bombs elsewhere on the host),
  the supervisor falls back to in-process execution.  The watchdog
  cannot kill an in-process cell, so degradation is journalled and
  surfaced on the report rather than silent.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import random
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from ..errors import CellFailure, ExperimentError

#: exception types worth retrying: the environment, not the simulation,
#: failed.  ``PermissionError`` is an ``OSError`` subclass; worker
#: crashes and watchdog timeouts are classified transient directly.
TRANSIENT_ERRORS: Tuple[type, ...] = (OSError, BrokenProcessPool,
                                      EOFError, ConnectionError)

#: how long the event loop sleeps waiting for worker messages
POLL_INTERVAL_S = 0.05

#: consecutive worker-spawn failures before degrading to serial
SPAWN_FAILURE_THRESHOLD = 2

#: environment variable naming a chaos-plan JSON file (test hook)
CHAOS_ENV = "REPRO_CHAOS"

#: journal file name inside the run-cache directory
JOURNAL_NAME = "journal.jsonl"

#: bump when the journal event shapes change incompatibly
JOURNAL_SCHEMA = 1


# ----------------------------------------------------------------------
# Retry policy: bounded attempts, exponential backoff, seeded jitter
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    ``delay_s`` grows exponentially per attempt and is salted with
    jitter from a :class:`random.Random` seeded by ``(seed, key,
    attempt)`` — deterministic for a given cell and attempt, decorrelated
    across cells, and compliant with the TP001 no-unseeded-randomness
    rule.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ExperimentError("backoff delays must be >= 0")
        if self.jitter < 0:
            raise ExperimentError("jitter must be >= 0")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retrying ``key`` after failed ``attempt``."""
        exponent = max(0, attempt - 1)
        base = min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** exponent)
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


# ----------------------------------------------------------------------
# Journal: append-only JSONL record of a supervised session
# ----------------------------------------------------------------------
@dataclasses.dataclass
class JournalState:
    """What a journal file says happened: the replayable summary."""

    #: digest -> last ``done`` event payload
    completed: Dict[str, Dict[str, Any]] = dataclasses.field(
        default_factory=dict)
    #: digest -> failure payload, for cells never completed afterwards
    failed: Dict[str, Dict[str, Any]] = dataclasses.field(
        default_factory=dict)
    #: a SIGINT (or crash of the harness itself) ended the session
    interrupted: bool = False
    #: undecodable lines skipped while loading (torn writes)
    corrupt_lines: int = 0
    #: total events replayed
    events: int = 0


class Journal:
    """Append-only JSONL journal enabling checkpoint/resume.

    Every event is one JSON object per line, flushed on write, so a
    crash mid-session loses at most the line being written — and
    :meth:`load` tolerates exactly that torn tail.  Without ``resume``
    the file is rotated (truncated) at construction: a journal always
    describes one logical session, possibly spanning several resumed
    invocations.
    """

    def __init__(self, path: "Path | str", resume: bool = False) -> None:
        self.path = Path(path)
        #: state replayed from the previous session (empty when fresh)
        self.prior = JournalState()
        if resume:
            self.prior = self.load(self.path)
        elif self.path.exists():
            try:
                self.path.unlink()
            except OSError:
                pass
        if resume:
            self.record("resume",
                        completed=len(self.prior.completed),
                        failed=len(self.prior.failed),
                        interrupted=self.prior.interrupted)

    def record(self, event: str, **fields: Any) -> None:
        """Append one event line; never raises (best-effort durability)."""
        payload = {"event": event, "schema": JOURNAL_SCHEMA,
                   "ts": time.time()}  # tp: allow=TP002 - journal timestamps, not simulation
        payload.update(fields)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload) + "\n")
        except OSError:
            pass

    @staticmethod
    def load(path: "Path | str") -> JournalState:
        """Replay a journal file into a :class:`JournalState`.

        Corrupt lines (torn writes from a crash) are counted and
        skipped, never fatal — the same contract the run cache gives
        corrupt entries.
        """
        state = JournalState()
        path = Path(path)
        if not path.exists():
            return state
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return state
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                kind = event["event"]
            except Exception:
                state.corrupt_lines += 1
                continue
            state.events += 1
            if kind == "done":
                key = event.get("key", "")
                state.completed[key] = event
                state.failed.pop(key, None)
            elif kind == "failed":
                failure = event.get("failure", {})
                key = failure.get("key", event.get("key", ""))
                if key not in state.completed:
                    state.failed[key] = failure
            elif kind == "interrupted":
                state.interrupted = True
            elif kind == "resume":
                state.interrupted = False
        return state


# ----------------------------------------------------------------------
# Chaos hook (test-only, env-gated): deterministic fault injection
# ----------------------------------------------------------------------
def inject_chaos(key: str, label: str, attempt: int) -> None:
    """Test hook: fail this attempt if the chaos plan says so.

    Reads the JSON file named by :data:`CHAOS_ENV` — a list of rules
    ``{"match": substring, "mode": crash|hang|raise|oserror,
    "attempts": [1, ...] | null}`` — and injects the matching failure.
    A missing/unreadable plan is a no-op, so production runs never pay
    for this.  The chaos suite (``tests/test_runner_chaos.py``) is the
    only intended user.
    """
    path = os.environ.get(CHAOS_ENV)
    if not path:
        return
    try:
        rules = json.loads(Path(path).read_text(encoding="utf-8"))
    except Exception:
        return
    for rule in rules:
        match = rule.get("match", "")
        if match not in label and match not in key:
            continue
        attempts = rule.get("attempts")
        if attempts is not None and attempt not in attempts:
            continue
        mode = rule.get("mode")
        if mode == "crash":
            os._exit(int(rule.get("code", 29)))
        elif mode == "hang":
            time.sleep(float(rule.get("seconds", 3600.0)))
        elif mode == "raise":
            raise RuntimeError(rule.get(
                "message", f"chaos: injected failure for {label}"))
        elif mode == "oserror":
            raise OSError(rule.get(
                "message", f"chaos: injected transient fault for {label}"))


# ----------------------------------------------------------------------
# Worker process entry
# ----------------------------------------------------------------------
def _worker_entry(conn: Any, fn: Callable[..., Any], args: Tuple,
                  key: str, label: str, attempt: int) -> None:
    """Child-process entry point: run the task, ship the outcome back.

    Outcomes are tuples: ``("ok", value)`` or ``("error", type_name,
    message, traceback_text, transient)``.  Nothing may escape — an
    unpicklable value or error turns into a hard exit the parent
    classifies as a worker crash.

    Workers share the terminal's foreground process group, so a Ctrl-C
    would deliver SIGINT here too and be misreported as a permanent
    cell failure; the parent owns interrupt handling (drain, journal,
    re-raise), so the worker ignores SIGINT and lets the parent decide
    its fate.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    try:
        inject_chaos(key, label, attempt)
        value = fn(*args)
        conn.send(("ok", value))
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc(),
                       isinstance(exc, TRANSIENT_ERRORS)))
        except Exception:
            os._exit(70)
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Task:
    """One supervised unit of work: a picklable ``fn(*args)`` call."""

    key: str
    label: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...]


@dataclasses.dataclass
class _TaskState:
    """Supervisor-side bookkeeping for one task across its attempts."""

    task: Task
    attempts: int = 0
    not_before: float = 0.0
    elapsed_s: float = 0.0


@dataclasses.dataclass
class _Running:
    """One live worker process and the pipe it reports through."""

    state: _TaskState
    process: Any
    conn: Any
    started: float
    deadline: float


@dataclasses.dataclass
class SupervisionReport:
    """What a :meth:`Supervisor.run` call accomplished."""

    #: key -> task return value, for every task that succeeded
    results: Dict[str, Any]
    #: key -> quarantine record, for every task that did not
    failures: Dict[str, CellFailure]
    #: key -> attempts consumed (1 = first try succeeded)
    attempts: Dict[str, int]
    #: transient-failure retries performed across the batch
    retries: int
    #: the process layer broke and execution fell back to in-process
    degraded: bool


class Supervisor:
    """Runs tasks under watchdog/retry/quarantine supervision.

    ``jobs`` bounds concurrent worker processes.  With ``jobs == 1``
    and no ``timeout_s`` tasks run in-process (the historical serial
    path — zero overhead); any watchdog requires real child processes,
    because only a separate process can be killed mid-simulation.

    ``on_complete(key, value, elapsed_s, attempts)`` fires the moment a
    task succeeds — the runner uses it to commit results to the run
    cache immediately, which is what makes a SIGINT lose nothing that
    already finished.
    """

    def __init__(self, jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 fail_fast: bool = False,
                 journal: Optional[Journal] = None,
                 mp_context: Any = None) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ExperimentError(
                f"timeout_s must be positive, got {timeout_s}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.fail_fast = fail_fast
        self.journal = journal
        self._ctx = (mp_context if mp_context is not None
                     else multiprocessing.get_context())
        self.degraded = False
        self._interrupted = False
        self._spawn_failures = 0

    # -- public API -----------------------------------------------------
    def run(self, tasks: Sequence[Task],
            on_complete: Optional[Callable[[str, Any, float, int],
                                           None]] = None
            ) -> SupervisionReport:
        """Supervise ``tasks`` to completion, quarantine or interrupt.

        Returns a :class:`SupervisionReport`; raises
        ``KeyboardInterrupt`` after a SIGINT, but only once completed
        workers have been drained (and ``on_complete``'d) and the
        interrupt journalled.
        """
        states = {t.key: _TaskState(task=t) for t in tasks}
        if len(states) != len(tasks):
            raise ExperimentError("supervised task keys must be unique")
        queue: "deque[_TaskState]" = deque(states[t.key] for t in tasks)
        running: Dict[str, _Running] = {}
        results: Dict[str, Any] = {}
        failures: Dict[str, CellFailure] = {}
        retries = 0
        use_processes = (not self.degraded
                         and (self.jobs > 1 or self.timeout_s is not None))
        self._interrupted = False

        previous_handler: Any = None
        handler_installed = False
        if threading.current_thread() is threading.main_thread():
            try:
                previous_handler = signal.signal(
                    signal.SIGINT, self._on_sigint)
                handler_installed = True
            except ValueError:
                handler_installed = False

        def finish(state: _TaskState, value: Any) -> None:
            key = state.task.key
            results[key] = value
            if on_complete is not None:
                on_complete(key, value, state.elapsed_s, state.attempts)
            if self.journal is not None:
                self.journal.record("done", key=key,
                                    label=state.task.label,
                                    attempts=state.attempts,
                                    elapsed_s=round(state.elapsed_s, 6))

        def attempt_failed(state: _TaskState, error_type: str,
                           message: str, tb_text: str,
                           transient: bool) -> None:
            nonlocal retries
            key = state.task.key
            if transient and state.attempts < self.retry.max_attempts:
                delay = self.retry.delay_s(key, state.attempts)
                state.not_before = _now() + delay
                retries += 1
                if self.journal is not None:
                    self.journal.record("retry", key=key,
                                        label=state.task.label,
                                        attempt=state.attempts,
                                        error_type=error_type,
                                        message=message,
                                        delay_s=round(delay, 4))
                queue.append(state)
                return
            failure = CellFailure(
                key=key, label=state.task.label, error_type=error_type,
                message=message, traceback=tb_text,
                attempts=state.attempts,
                elapsed_s=round(state.elapsed_s, 6),
                transient=transient)
            failures[key] = failure
            if self.journal is not None:
                self.journal.record("failed", key=key,
                                    failure=failure.to_payload())
            if self.fail_fast:
                queue.clear()
                self._terminate(running, reason="fail-fast")

        try:
            while queue or running:
                if self._interrupted:
                    break
                now = _now()
                launched = self._launch_ready(
                    queue, running, now, use_processes, finish,
                    attempt_failed)
                if launched == "degraded":
                    use_processes = False
                    continue
                if running:
                    self._poll(running, finish, attempt_failed)
                elif queue:
                    # everything pending is backing off: sleep it out
                    wake = min(s.not_before for s in queue)
                    pause = min(max(0.0, wake - _now()),
                                POLL_INTERVAL_S * 4)
                    if pause > 0:
                        time.sleep(pause)
        finally:
            if handler_installed:
                signal.signal(signal.SIGINT, previous_handler)

        if self._interrupted:
            drained = self._drain(running, finish, attempt_failed)
            self._terminate(running, reason="interrupted")
            if self.journal is not None:
                self.journal.record(
                    "interrupted", completed=len(results),
                    drained=drained, failed=len(failures),
                    pending=sorted([s.task.key for s in queue]
                                   + list(running)))
            raise KeyboardInterrupt(
                f"interrupted: {len(results)} cells completed and "
                f"committed, {len(queue) + len(running)} abandoned")

        return SupervisionReport(
            results=results, failures=failures,
            attempts={key: state.attempts
                      for key, state in states.items()
                      if state.attempts},
            retries=retries, degraded=self.degraded)

    # -- internals ------------------------------------------------------
    def _on_sigint(self, signum: int, frame: Any) -> None:
        """First SIGINT: request a drain-and-stop; second: die hard."""
        if self._interrupted:
            raise KeyboardInterrupt
        self._interrupted = True

    def _launch_ready(self, queue: "deque[_TaskState]",
                      running: Dict[str, _Running], now: float,
                      use_processes: bool,
                      finish: Callable[[_TaskState, Any], None],
                      attempt_failed: Callable[..., None]
                      ) -> Optional[str]:
        """Start eligible tasks until the job slots are full."""
        while queue and len(running) < self.jobs:
            if self._interrupted:
                return None
            index = next((i for i, s in enumerate(queue)
                          if s.not_before <= now), None)
            if index is None:
                return None
            queue.rotate(-index)
            state = queue.popleft()
            queue.rotate(index)
            if not use_processes:
                self._run_inline(state, finish, attempt_failed)
                continue
            task = state.task
            attempt = state.attempts + 1
            parent_conn = child_conn = process = None
            try:
                parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                process = self._ctx.Process(
                    target=_worker_entry,
                    args=(child_conn, task.fn, task.args, task.key,
                          task.label, attempt),
                    daemon=True)
                process.start()
                child_conn.close()
            except (OSError, ValueError) as exc:
                # a partially-spawned worker must not leak its pipe ends
                # or a started-but-untracked process
                self._discard_spawn(parent_conn, child_conn, process)
                self._spawn_failures += 1
                queue.appendleft(state)
                if self._spawn_failures >= SPAWN_FAILURE_THRESHOLD:
                    self.degraded = True
                    if self.journal is not None:
                        self.journal.record(
                            "degraded",
                            reason=f"{type(exc).__name__}: {exc}",
                            spawn_failures=self._spawn_failures)
                    return "degraded"
                return None
            self._spawn_failures = 0
            state.attempts = attempt
            started = _now()
            deadline = (started + self.timeout_s
                        if self.timeout_s is not None else float("inf"))
            if self.journal is not None:
                self.journal.record("start", key=task.key,
                                    label=task.label, attempt=attempt)
            running[task.key] = _Running(state=state, process=process,
                                         conn=parent_conn,
                                         started=started,
                                         deadline=deadline)
        return None

    @staticmethod
    def _discard_spawn(parent_conn: Optional[Any],
                       child_conn: Optional[Any],
                       process: Optional[Any]) -> None:
        """Release whatever a failed spawn attempt managed to acquire.

        Any of the three may be ``None`` (the spawn raised before it was
        created); a started process is terminated and reaped so the
        retry path never strands a live worker.
        """
        if parent_conn is not None:
            try:
                parent_conn.close()
            except OSError:
                pass
        if child_conn is not None:
            try:
                child_conn.close()
            except OSError:
                pass
        if process is not None and process.is_alive():
            process.terminate()
            process.join()

    def _run_inline(self, state: _TaskState,
                    finish: Callable[[_TaskState, Any], None],
                    attempt_failed: Callable[..., None]) -> None:
        """Serial fallback: run one attempt in-process (no watchdog)."""
        delay = state.not_before - _now()
        if delay > 0:
            time.sleep(delay)
        state.attempts += 1
        if self.journal is not None:
            self.journal.record("start", key=state.task.key,
                                label=state.task.label,
                                attempt=state.attempts, inline=True)
        started = _now()
        try:
            inject_chaos(state.task.key, state.task.label,
                         state.attempts)
            value = state.task.fn(*state.task.args)
        except Exception as exc:
            state.elapsed_s += _now() - started
            attempt_failed(state, type(exc).__name__, str(exc),
                           traceback.format_exc(),
                           isinstance(exc, TRANSIENT_ERRORS))
            return
        state.elapsed_s += _now() - started
        finish(state, value)

    def _poll(self, running: Dict[str, _Running],
              finish: Callable[[_TaskState, Any], None],
              attempt_failed: Callable[..., None]) -> None:
        """Wait briefly, then settle every finished/dead/late worker."""
        try:
            _wait_connections([r.conn for r in running.values()],
                              timeout=POLL_INTERVAL_S)
        except OSError:
            pass
        now = _now()
        for key in list(running):
            # attempt_failed may fail-fast and _terminate every sibling
            # mid-iteration, so the snapshot can hold dead keys
            record = running.get(key)
            if record is None:
                continue
            state = record.state
            message = self._receive(record)
            if message is not None:
                self._reap(record)
                del running[key]
                state.elapsed_s += now - record.started
                if message[0] == "ok":
                    finish(state, message[1])
                else:
                    _, etype, emsg, tb_text, transient = message
                    attempt_failed(state, etype, emsg, tb_text,
                                   transient)
            elif not record.process.is_alive():
                self._reap(record)
                del running[key]
                state.elapsed_s += now - record.started
                attempt_failed(
                    state, "WorkerCrashError",
                    f"worker process died with exit code "
                    f"{record.process.exitcode} before reporting a "
                    f"result", "", True)
            elif now > record.deadline:
                self._kill(record)
                del running[key]
                state.elapsed_s += now - record.started
                attempt_failed(
                    state, "CellTimeoutError",
                    f"cell exceeded the {self.timeout_s:g}s watchdog "
                    f"timeout on attempt {state.attempts}", "", True)

    @staticmethod
    def _receive(record: _Running) -> Optional[Tuple]:
        """Non-blocking read of a worker's outcome message, if any."""
        try:
            if record.conn.poll():
                return record.conn.recv()
        except (EOFError, OSError):
            return None
        return None

    @staticmethod
    def _reap(record: _Running) -> None:
        """Join a finished worker and release its pipe."""
        try:
            record.process.join(timeout=5.0)
            if record.process.is_alive():
                record.process.kill()
                record.process.join(timeout=5.0)
        except Exception:
            pass
        try:
            record.conn.close()
        except Exception:
            pass

    @staticmethod
    def _kill(record: _Running) -> None:
        """Forcibly stop a stuck worker: SIGTERM, then SIGKILL."""
        try:
            record.process.terminate()
            record.process.join(timeout=2.0)
            if record.process.is_alive():
                record.process.kill()
                record.process.join(timeout=5.0)
        except Exception:
            pass
        try:
            record.conn.close()
        except Exception:
            pass

    def _drain(self, running: Dict[str, _Running],
               finish: Callable[[_TaskState, Any], None],
               attempt_failed: Callable[..., None]) -> int:
        """Collect results workers already delivered (SIGINT path)."""
        drained = 0
        for key in list(running):
            record = running.get(key)
            if record is None:
                continue
            message = self._receive(record)
            if message is None:
                continue
            del running[key]
            record.state.elapsed_s += _now() - record.started
            self._reap(record)
            if message[0] == "ok":
                finish(record.state, message[1])
                drained += 1
            else:
                _, etype, emsg, tb_text, transient = message
                attempt_failed(record.state, etype, emsg, tb_text,
                               transient)
        return drained

    def _terminate(self, running: Dict[str, _Running],
                   reason: str) -> None:
        """Kill every still-running worker (fail-fast / interrupt)."""
        for key in list(running):
            self._kill(running.pop(key))


def _now() -> float:
    """Monotonic harness clock (never simulation time)."""
    return time.monotonic()  # tp: allow=TP002 - harness watchdog timing
