"""Selective-prefetch threshold sensitivity (extension).

§4.3 fixes the TP-node counter threshold at 3, found "empirically" to
recognise most sequential runs.  This experiment sweeps the threshold on
the two extremes — the sequential MSR-ts-like workload (where selective
prefetching should fire often) and the random Financial1-like workload
(where false activations would hurt) — reporting hit ratio, prefetch
volume and accuracy per threshold.
"""

from __future__ import annotations

from typing import List

from ..config import TPFTLConfig
from .common import ExperimentResult, ExperimentScale
from .runner import RunSpec, get_runner

THRESHOLDS = (1, 2, 3, 5, 8)
SWEEP_WORKLOADS = ("financial1", "msr-ts")


def run(scale: ExperimentScale) -> ExperimentResult:
    """Replay a trace and return the measured results."""
    rows: List[List[object]] = []
    data = {}
    keys = [(workload, threshold) for workload in SWEEP_WORKLOADS
            for threshold in THRESHOLDS]
    specs = [RunSpec(workload=workload, ftl="tpftl", scale=scale,
                     tpftl=TPFTLConfig(selective_threshold=threshold))
             for workload, threshold in keys]
    cells = dict(zip(keys, get_runner().run_specs(specs)))
    for workload in SWEEP_WORKLOADS:
        for threshold in THRESHOLDS:
            result = cells[(workload, threshold)]
            m = result.metrics
            accuracy = (m.prefetch_hits / m.prefetched_entries
                        if m.prefetched_entries else 0.0)
            rows.append([workload, threshold, m.hit_ratio,
                         m.prefetched_entries, accuracy])
            data[(workload, threshold)] = {
                "hit_ratio": m.hit_ratio,
                "prefetched": m.prefetched_entries,
                "accuracy": accuracy,
            }
    return ExperimentResult(
        experiment_id="threshold-sweep",
        title=("Selective-prefetch threshold sensitivity "
               "[extension to §4.3]"),
        headers=["Workload", "Threshold", "Hit ratio", "Prefetched",
                 "Prefetch accuracy"],
        rows=rows,
        notes="paper: threshold 3 recognises most sequential runs; "
              "lower thresholds fire more (and less accurately) on "
              "random workloads",
        data={"cells": data},
    )
