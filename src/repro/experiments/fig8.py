"""Figure 8 — ablations (part 2) and the cache-size sweep of Prd.

(a) mean system response time per TPFTL configuration on Financial1,
    normalised to DFTL;
(b) write amplification per configuration;
(c) probability of replacing a dirty entry for TPFTL as the cache grows
    from 1/128 of the mapping table to the full table, per workload.
"""

from __future__ import annotations

from typing import Dict, List

from ..ssd import RunResult
from .common import (ABLATION_CONFIGS, ExperimentResult, ExperimentScale,
                     WORKLOADS)
from .fig7 import ablation_runs
from .runner import RunSpec, get_runner


def cache_sweep_runs(scale: ExperimentScale) -> Dict[tuple, RunResult]:
    """TPFTL runs per (workload, cache fraction), via the run cache."""
    keys = [(workload, fraction) for workload in WORKLOADS
            for fraction in scale.cache_fractions]
    specs = [RunSpec(workload=workload, ftl="tpftl", scale=scale,
                     cache_fraction=fraction)
             for workload, fraction in keys]
    results = get_runner().run_specs(specs)
    return dict(zip(keys, results))


def run_fig8a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = ablation_runs(scale)
    base = runs["dftl"].response.mean
    rows = [[m, runs[m].response.mean / base if base else 0.0]
            for m in ABLATION_CONFIGS]
    return ExperimentResult(
        experiment_id="fig8a",
        title=("Mean system response time per TPFTL configuration "
               "(Financial1, normalised to DFTL)"),
        headers=["Config", "Response time / DFTL"],
        rows=rows,
        notes="paper: replacement techniques ('bc') -24.9% and "
              "prefetching ('rs') -10.4% vs '-'; 'bc' even beats "
              "'rsbc' on Financial1 (Prd matters more than hit ratio "
              "under random writes)",
        data={m: runs[m].response.mean for m in ABLATION_CONFIGS},
    )


def run_fig8b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = ablation_runs(scale)
    rows = [[m, runs[m].metrics.write_amplification]
            for m in ABLATION_CONFIGS]
    return ExperimentResult(
        experiment_id="fig8b",
        title=("Write amplification per TPFTL configuration "
               "(Financial1)"),
        headers=["Config", "Write amplification"],
        rows=rows,
        notes="paper: 'bc' -21.1% and 'rs' -9.1% vs '-'",
        data={m: runs[m].metrics.write_amplification
              for m in ABLATION_CONFIGS},
    )


def run_fig8c(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = cache_sweep_runs(scale)
    rows: List[List[object]] = []
    data: Dict[str, Dict[float, float]] = {}
    for workload in WORKLOADS:
        row: List[object] = [workload]
        data[workload] = {}
        for fraction in scale.cache_fractions:
            value = runs[(workload, fraction)].metrics.p_replace_dirty
            row.append(value)
            data[workload][fraction] = value
        rows.append(row)
    headers = ["Workload"] + [f"1/{round(1 / f)}" if f < 1 else "1"
                              for f in scale.cache_fractions]
    return ExperimentResult(
        experiment_id="fig8c",
        title=("TPFTL probability of replacing a dirty entry vs cache "
               "size (fraction of full mapping table)"),
        headers=headers,
        rows=rows,
        notes="paper: decreases with cache size, 0% when the table is "
              "fully cached",
        data=data,
    )
