"""Figure 8 — ablations (part 2) and the cache-size sweep of Prd.

(a) mean system response time per TPFTL configuration on Financial1,
    normalised to DFTL;
(b) write amplification per configuration;
(c) probability of replacing a dirty entry for TPFTL as the cache grows
    from 1/128 of the mapping table to the full table, per workload.
"""

from __future__ import annotations

from typing import Dict, List

from ..ssd import RunResult
from .common import (ABLATION_CONFIGS, ExperimentResult, ExperimentScale,
                     WORKLOADS, build_workload, run_one)
from .fig7 import ablation_runs

_SWEEP_CACHE: Dict[tuple, Dict[tuple, RunResult]] = {}


def cache_sweep_runs(scale: ExperimentScale) -> Dict[tuple, RunResult]:
    """TPFTL runs per (workload, cache fraction), memoised per scale."""
    key = (scale,)
    cached = _SWEEP_CACHE.get(key)
    if cached is not None:
        return cached
    runs: Dict[tuple, RunResult] = {}
    for workload in WORKLOADS:
        trace = build_workload(workload, scale)
        for fraction in scale.cache_fractions:
            runs[(workload, fraction)] = run_one(
                workload, "tpftl", scale, cache_fraction=fraction,
                trace=trace)
    _SWEEP_CACHE[key] = runs
    return runs


def run_fig8a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = ablation_runs(scale)
    base = runs["dftl"].response.mean
    rows = [[m, runs[m].response.mean / base if base else 0.0]
            for m in ABLATION_CONFIGS]
    return ExperimentResult(
        experiment_id="fig8a",
        title=("Mean system response time per TPFTL configuration "
               "(Financial1, normalised to DFTL)"),
        headers=["Config", "Response time / DFTL"],
        rows=rows,
        notes="paper: replacement techniques ('bc') -24.9% and "
              "prefetching ('rs') -10.4% vs '-'; 'bc' even beats "
              "'rsbc' on Financial1 (Prd matters more than hit ratio "
              "under random writes)",
        data={m: runs[m].response.mean for m in ABLATION_CONFIGS},
    )


def run_fig8b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = ablation_runs(scale)
    rows = [[m, runs[m].metrics.write_amplification]
            for m in ABLATION_CONFIGS]
    return ExperimentResult(
        experiment_id="fig8b",
        title=("Write amplification per TPFTL configuration "
               "(Financial1)"),
        headers=["Config", "Write amplification"],
        rows=rows,
        notes="paper: 'bc' -21.1% and 'rs' -9.1% vs '-'",
        data={m: runs[m].metrics.write_amplification
              for m in ABLATION_CONFIGS},
    )


def run_fig8c(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    runs = cache_sweep_runs(scale)
    rows: List[List[object]] = []
    data: Dict[str, Dict[float, float]] = {}
    for workload in WORKLOADS:
        row: List[object] = [workload]
        data[workload] = {}
        for fraction in scale.cache_fractions:
            value = runs[(workload, fraction)].metrics.p_replace_dirty
            row.append(value)
            data[workload][fraction] = value
        rows.append(row)
    headers = ["Workload"] + [f"1/{round(1 / f)}" if f < 1 else "1"
                              for f in scale.cache_fractions]
    return ExperimentResult(
        experiment_id="fig8c",
        title=("TPFTL probability of replacing a dirty entry vs cache "
               "size (fraction of full mapping table)"),
        headers=headers,
        rows=rows,
        notes="paper: decreases with cache size, 0% when the table is "
              "fully cached",
        data=data,
    )
