"""Figure 6 — the headline comparison: DFTL vs TPFTL vs S-FTL vs optimal.

Six sub-figures over the four workloads:

(a) probability of replacing a dirty entry,
(b) cache hit ratio,
(c) translation-page reads (normalised to DFTL),
(d) translation-page writes (normalised to DFTL),
(e) mean system response time (normalised to DFTL),
(f) write amplification.

All six derive from one memoised run matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..ssd import RunResult
from .common import (ExperimentResult, ExperimentScale, HEADLINE_FTLS,
                     WORKLOADS, run_matrix)

Matrix = Dict[tuple, RunResult]


def _table(matrix: Matrix, metric: Callable[[RunResult], float],
           normalise_to_dftl: bool) -> List[Sequence[object]]:
    rows = []
    for workload in WORKLOADS:
        row: List[object] = [workload]
        base = metric(matrix[(workload, "dftl")])
        for ftl in HEADLINE_FTLS:
            value = metric(matrix[(workload, ftl)])
            if normalise_to_dftl:
                value = value / base if base else 0.0
            row.append(value)
        rows.append(row)
    return rows


def _result(experiment_id: str, title: str, matrix: Matrix,
            metric: Callable[[RunResult], float],
            normalise: bool, notes: str) -> ExperimentResult:
    rows = _table(matrix, metric, normalise)
    data = {
        workload: {ftl: metric(matrix[(workload, ftl)])
                   for ftl in HEADLINE_FTLS}
        for workload in WORKLOADS
    }
    return ExperimentResult(
        experiment_id=experiment_id, title=title,
        headers=["Workload"] + [f.upper() for f in HEADLINE_FTLS],
        rows=rows, notes=notes, data=data)


def run_fig6a(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _result(
        "fig6a", "Probability of replacing a dirty entry",
        run_matrix(scale), lambda r: r.metrics.p_replace_dirty, False,
        "paper: TPFTL below 4% in all workloads, closest to optimal")


def run_fig6b(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _result(
        "fig6b", "Cache hit ratio",
        run_matrix(scale), lambda r: r.metrics.hit_ratio, False,
        "paper: TPFTL beats DFTL by ~15% (Financial) / ~16% (MSR); "
        "S-FTL matches DFTL on Financial, matches TPFTL (>95%) on MSR")


def run_fig6c(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _result(
        "fig6c", "Translation page reads (normalised to DFTL)",
        run_matrix(scale),
        lambda r: float(r.metrics.translation_page_reads), True,
        "paper: TPFTL -44.2%/-87.7% vs DFTL on Financial/MSR")


def run_fig6d(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _result(
        "fig6d", "Translation page writes (normalised to DFTL)",
        run_matrix(scale),
        lambda r: float(r.metrics.translation_page_writes), True,
        "paper: TPFTL -50.5%/-98.8% vs DFTL on Financial/MSR")


def run_fig6e(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _result(
        "fig6e", "Mean system response time (normalised to DFTL)",
        run_matrix(scale), lambda r: r.response.mean, True,
        "paper: TPFTL -23.5% (Fin1), -20.9% (Fin2), -57.6% (MSR avg) "
        "vs DFTL")


def run_fig6f(scale: ExperimentScale) -> ExperimentResult:
    """Regenerate this figure/table; see the module docstring."""
    return _result(
        "fig6f", "Write amplification",
        run_matrix(scale), lambda r: r.metrics.write_amplification,
        False,
        "paper: Financial WAs 2.4-5.1, MSR WAs near 1; TPFTL lowest "
        "among demand-based FTLs")
