"""Figure 10 — improvement of cache space utilisation, TPFTL vs DFTL.

TPFTL stores entries compressed (6B offset+PPN vs DFTL's 8B LPN+PPN), at
the cost of an 8B TP-node header per cached translation page; the paper
measures how many more entries TPFTL keeps resident than DFTL in the
same byte budget, across cache sizes.  The bound is 33% (= 8/6 - 1),
approached when request sequentiality clusters many entries per node;
Financial workloads gain less because dispersed entries spread over
many singleton nodes.

Measured as the time-averaged cached-entry count ratio, sampled at the
same cadence the paper uses.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import SimInvariantError
from .common import ExperimentResult, ExperimentScale, WORKLOADS
from .runner import RunSpec, get_runner


def run(scale: ExperimentScale) -> ExperimentResult:
    """Replay a trace and return the measured results."""
    fractions = [f for f in scale.cache_fractions if f <= 0.25]
    keys = [(workload, fraction, ftl_name) for workload in WORKLOADS
            for fraction in fractions for ftl_name in ("dftl", "tpftl")]
    specs = [RunSpec(workload=workload, ftl=ftl_name, scale=scale,
                     cache_fraction=fraction,
                     sample_interval=scale.sample_interval)
             for workload, fraction, ftl_name in keys]
    cells = dict(zip(keys, get_runner().run_specs(specs)))
    rows: List[List[object]] = []
    data: Dict[str, Dict[float, float]] = {}
    for workload in WORKLOADS:
        row: List[object] = [workload]
        data[workload] = {}
        for fraction in fractions:
            counts = {}
            for ftl_name in ("dftl", "tpftl"):
                result = cells[(workload, fraction, ftl_name)]
                if result.sampler is None:  # pragma: no cover - specs sample
                    raise SimInvariantError("cell returned no sampler")
                samples = result.sampler.samples
                mean_entries = (sum(s.cached_entries for s in samples)
                                / len(samples)) if samples else 0.0
                counts[ftl_name] = mean_entries
            if counts["dftl"]:
                improvement = counts["tpftl"] / counts["dftl"] - 1.0
            else:
                improvement = 0.0
            row.append(f"{improvement * 100:.1f}%")
            data[workload][fraction] = improvement
        rows.append(row)
    headers = ["Workload"] + [f"1/{round(1 / f)}" for f in fractions]
    return ExperimentResult(
        experiment_id="fig10",
        title=("Improvement of cache space utilisation "
               "(TPFTL vs DFTL, time-averaged resident entries)"),
        headers=headers,
        rows=rows,
        notes="paper: up to 33% (the 8B/6B bound), larger with larger "
              "caches and on MSR (sequentiality clusters entries in "
              "few TP nodes)",
        data=data,
    )
