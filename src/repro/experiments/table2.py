"""Table 2 — deviations of DFTL from the optimal FTL.

The paper reports, per workload, how far DFTL falls behind an FTL with
the whole mapping table in RAM: the *performance* deviation (fractional
response-time loss) and the *erasure* deviation (fractional block-erase
increase).  Paper values: 52.6%-63.4% performance and 30.4%-56.2%
erasure across the four workloads (avg 58.4% / 42.3%).
"""

from __future__ import annotations

from .common import (ExperimentResult, ExperimentScale, WORKLOADS,
                     run_matrix)


def run(scale: ExperimentScale) -> ExperimentResult:
    """Replay a trace and return the measured results."""
    matrix = run_matrix(scale, ftls=("dftl", "optimal"))
    rows = []
    data = {}
    for workload in WORKLOADS:
        dftl = matrix[(workload, "dftl")]
        optimal = matrix[(workload, "optimal")]
        perf_dev = 1.0 - (optimal.response.mean / dftl.response.mean
                          if dftl.response.mean else 1.0)
        dftl_erases = dftl.metrics.total_erases
        erase_dev = (1.0 - optimal.metrics.total_erases / dftl_erases
                     if dftl_erases else 0.0)
        rows.append([workload, f"{perf_dev * 100:.1f}%",
                     f"{erase_dev * 100:.1f}%"])
        data[workload] = {"performance": perf_dev, "erasure": erase_dev}
    return ExperimentResult(
        experiment_id="table2",
        title="Deviations of DFTL from the optimal FTL",
        headers=["Workload", "Performance", "Erasure"],
        rows=rows,
        notes=("paper: Fin1 63.4%/45.9%, Fin2 52.6%/52.6%, "
               "ts 59.4%/30.4%, src 58.2%/56.2%"),
        data=data,
    )
