"""Shared infrastructure for the experiment runners.

The paper's Fig 6 and Fig 7(a) all derive from one matrix of runs
(4 workloads x 4 FTLs); :func:`run_matrix` computes and memoises that
matrix per scale so each sub-figure renders instantly once any of them
has run.  ``ExperimentScale`` bundles the knobs that trade fidelity for
runtime (request count, warmup, workload sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CacheConfig, SimulationConfig, SSDConfig, TPFTLConfig
from ..errors import ExperimentError
from ..ftl import make_ftl
from ..metrics.report import format_table
from ..ssd import RunResult, simulate
from ..types import Trace
from ..workloads import make_preset

#: the paper's evaluation workloads, in figure order
WORKLOADS = ("financial1", "financial2", "msr-ts", "msr-src")
#: the FTLs of the headline figures, in legend order
HEADLINE_FTLS = ("dftl", "tpftl", "sftl", "optimal")
#: the ablation monograms of Fig 7(b,c)/8(a,b), in X-axis order
ABLATION_CONFIGS = ("dftl", "-", "b", "c", "bc", "r", "s", "rs", "rsbc")
#: cache sizes of Fig 8(c)/9/10, as fractions of the full mapping table
CACHE_FRACTIONS = (1 / 128, 1 / 64, 1 / 32, 1 / 16, 1 / 8, 1 / 4,
                   1 / 2, 1.0)


@dataclass(frozen=True)
class ExperimentScale:
    """Runtime/fidelity knobs shared by every experiment.

    ``small`` is sized for CI and pytest-benchmark; ``full`` runs the
    default preset sizes with longer traces (minutes per figure).
    """

    name: str = "small"
    num_requests: int = 60_000
    warmup_requests: int = 15_000
    financial_pages: int = 65_536   # 256MB (paper: 512MB)
    msr_pages: int = 131_072        # 512MB (paper: 16GB)
    #: subset of CACHE_FRACTIONS used by the sweep figures
    cache_fractions: Sequence[float] = (1 / 128, 1 / 32, 1 / 8, 1 / 2,
                                        1.0)
    sample_interval: int = 2_000

    @classmethod
    def small(cls) -> "ExperimentScale":
        """The default CI-sized scale."""
        return cls()

    @classmethod
    def full(cls) -> "ExperimentScale":
        """The paper's Financial geometry and a 1GB MSR stand-in, with
        traces long enough to overwrite the device several times."""
        return cls(name="full", num_requests=300_000,
                   warmup_requests=60_000,
                   financial_pages=131_072, msr_pages=262_144,
                   cache_fractions=CACHE_FRACTIONS,
                   sample_interval=10_000)


@dataclass
class ExperimentResult:
    """A rendered experiment: a title, a table, and raw data."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: str = ""
    #: machine-readable payload for tests and downstream tooling
    data: Dict[str, object] = field(default_factory=dict)

    def render(self, precision: int = 4) -> str:
        """Render the result as an aligned text table."""
        text = format_table(self.headers, self.rows, precision=precision,
                            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_json(self) -> str:
        """Serialise the result (headers, rows, data) as JSON.

        Non-string dictionary keys in ``data`` (tuples, floats) are
        stringified so the payload is loadable anywhere; intended for
        downstream plotting tools.
        """
        import json

        def keyed(value):
            if isinstance(value, dict):
                return {str(k): keyed(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [keyed(v) for v in value]
            return value

        return json.dumps({
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": keyed(self.rows),
            "notes": self.notes,
            "data": keyed(self.data),
        }, indent=2)


# ----------------------------------------------------------------------
# Workload and run construction
# ----------------------------------------------------------------------
def build_workload(name: str, scale: ExperimentScale) -> Trace:
    """Build one of the paper's four workloads at the given scale."""
    pages = (scale.msr_pages if name.startswith("msr")
             else scale.financial_pages)
    return make_preset(name, logical_pages=pages,
                       num_requests=scale.num_requests)


def simulation_config(trace: Trace,
                      cache_fraction: Optional[float] = None,
                      tpftl: Optional[TPFTLConfig] = None
                      ) -> SimulationConfig:
    """The paper's §5.1 configuration for a trace.

    The SSD is as large as the trace's logical address space; the cache
    follows the block-table+GTD rule unless ``cache_fraction`` (of the
    full mapping table) is given, as in the Fig 8(c)/9/10 sweeps.
    """
    ssd = SSDConfig(logical_pages=trace.logical_pages)
    cache = None
    if cache_fraction is not None:
        cache = CacheConfig(
            budget_bytes=ssd.cache_bytes_for_fraction(cache_fraction))
    return SimulationConfig(ssd=ssd, cache=cache,
                            tpftl=tpftl or TPFTLConfig())


def run_one(workload: str, ftl_name: str, scale: ExperimentScale,
            cache_fraction: Optional[float] = None,
            tpftl: Optional[TPFTLConfig] = None,
            sample_interval: int = 0,
            trace: Optional[Trace] = None) -> RunResult:
    """Run one (workload, FTL) cell with the paper's configuration."""
    if trace is None:
        trace = build_workload(workload, scale)
    config = simulation_config(trace, cache_fraction=cache_fraction,
                               tpftl=tpftl)
    ftl = make_ftl(ftl_name, config)
    return simulate(ftl, trace, sample_interval=sample_interval,
                    warmup_requests=scale.warmup_requests)


# Memoised matrix shared by Table 2, Fig 6(a-f) and Fig 7(a).
_MATRIX_CACHE: Dict[Tuple, Dict[Tuple[str, str], RunResult]] = {}


def run_matrix(scale: ExperimentScale,
               workloads: Sequence[str] = WORKLOADS,
               ftls: Sequence[str] = HEADLINE_FTLS
               ) -> Dict[Tuple[str, str], RunResult]:
    """All (workload, FTL) runs of the headline evaluation, memoised."""
    key = (scale, tuple(workloads), tuple(ftls))
    cached = _MATRIX_CACHE.get(key)
    if cached is not None:
        return cached
    matrix: Dict[Tuple[str, str], RunResult] = {}
    for workload in workloads:
        trace = build_workload(workload, scale)
        for ftl_name in ftls:
            matrix[(workload, ftl_name)] = run_one(
                workload, ftl_name, scale, trace=trace)
    _MATRIX_CACHE[key] = matrix
    return matrix


def clear_matrix_cache() -> None:
    """Drop memoised runs (used by tests to control memory)."""
    _MATRIX_CACHE.clear()


def tpftl_variant(monogram: str) -> TPFTLConfig:
    """The TPFTL configuration for an ablation monogram."""
    return TPFTLConfig.from_monogram(monogram)


def run_ablation_cell(monogram: str, scale: ExperimentScale,
                      workload: str = "financial1",
                      trace: Optional[Trace] = None) -> RunResult:
    """One Fig 7(b,c)/8(a,b) cell: DFTL or a TPFTL variant on Fin1."""
    if monogram == "dftl":
        return run_one(workload, "dftl", scale, trace=trace)
    if monogram not in ABLATION_CONFIGS:
        raise ExperimentError(f"unknown ablation config {monogram!r}")
    return run_one(workload, "tpftl", scale,
                   tpftl=tpftl_variant(monogram), trace=trace)
