"""Shared infrastructure for the experiment runners.

The paper's Fig 6 and Fig 7(a) all derive from one matrix of runs
(4 workloads x 4 FTLs); :func:`run_matrix` routes that matrix through
the default :class:`~repro.experiments.runner.ParallelRunner`, so cells
are fanned out across processes (``--jobs``/``REPRO_JOBS``) and served
from the persistent run cache on re-runs — each sub-figure renders
instantly once any of them has run, even across interpreter restarts.
``ExperimentScale`` bundles the knobs that trade fidelity for runtime
(request count, warmup, workload sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CacheConfig, SimulationConfig, SSDConfig, TPFTLConfig
from ..errors import ExperimentError
from ..ftl import make_ftl
from ..metrics.report import format_table
from ..ssd import RunResult, simulate
from ..types import Trace
from ..workloads import make_preset

#: the paper's evaluation workloads, in figure order
WORKLOADS = ("financial1", "financial2", "msr-ts", "msr-src")
#: the FTLs of the headline figures, in legend order
HEADLINE_FTLS = ("dftl", "tpftl", "sftl", "optimal")
#: the ablation monograms of Fig 7(b,c)/8(a,b), in X-axis order
ABLATION_CONFIGS = ("dftl", "-", "b", "c", "bc", "r", "s", "rs", "rsbc")
#: cache sizes of Fig 8(c)/9/10, as fractions of the full mapping table
CACHE_FRACTIONS = (1 / 128, 1 / 64, 1 / 32, 1 / 16, 1 / 8, 1 / 4,
                   1 / 2, 1.0)


@dataclass(frozen=True)
class ExperimentScale:
    """Runtime/fidelity knobs shared by every experiment.

    ``small`` is sized for CI and pytest-benchmark; ``full`` runs the
    default preset sizes with longer traces (minutes per figure).
    """

    name: str = "small"
    num_requests: int = 60_000
    warmup_requests: int = 15_000
    financial_pages: int = 65_536   # 256MB (paper: 512MB)
    msr_pages: int = 131_072        # 512MB (paper: 16GB)
    #: subset of CACHE_FRACTIONS used by the sweep figures
    cache_fractions: Sequence[float] = (1 / 128, 1 / 32, 1 / 8, 1 / 2,
                                        1.0)
    sample_interval: int = 2_000
    #: flash channels of the device model (1 = the paper's queue);
    #: the CLI's ``--channels`` overrides this for every cell
    channels: int = 1

    def __post_init__(self) -> None:
        # Normalise to a tuple so a scale built with a list is still
        # hashable (run digests, dict keys) and compares equal to the
        # tuple-built equivalent.
        object.__setattr__(self, "cache_fractions",  # tp: allow=TP004 - __post_init__ normalisation
                           tuple(self.cache_fractions))

    @classmethod
    def small(cls) -> "ExperimentScale":
        """The default CI-sized scale."""
        return cls()

    @classmethod
    def full(cls) -> "ExperimentScale":
        """The paper's Financial geometry and a 1GB MSR stand-in, with
        traces long enough to overwrite the device several times."""
        return cls(name="full", num_requests=300_000,
                   warmup_requests=60_000,
                   financial_pages=131_072, msr_pages=262_144,
                   cache_fractions=CACHE_FRACTIONS,
                   sample_interval=10_000)


@dataclass
class ExperimentResult:
    """A rendered experiment: a title, a table, and raw data."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: str = ""
    #: machine-readable payload for tests and downstream tooling
    data: Dict[str, object] = field(default_factory=dict)

    def render(self, precision: int = 4) -> str:
        """Render the result as an aligned text table."""
        text = format_table(self.headers, self.rows, precision=precision,
                            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_json(self) -> str:
        """Serialise the result (headers, rows, data) as JSON.

        Non-string dictionary keys in ``data`` (tuples, floats) are
        stringified so the payload is loadable anywhere; intended for
        downstream plotting tools.
        """
        import json

        def keyed(value):
            if isinstance(value, dict):
                return {str(k): keyed(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [keyed(v) for v in value]
            return value

        return json.dumps({
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": keyed(self.rows),
            "notes": self.notes,
            "data": keyed(self.data),
        }, indent=2)


# ----------------------------------------------------------------------
# Workload and run construction
# ----------------------------------------------------------------------
def build_workload(name: str, scale: ExperimentScale) -> Trace:
    """Build one of the paper's four workloads at the given scale."""
    pages = (scale.msr_pages if name.startswith("msr")
             else scale.financial_pages)
    return make_preset(name, logical_pages=pages,
                       num_requests=scale.num_requests)


def simulation_config(trace: Trace,
                      cache_fraction: Optional[float] = None,
                      tpftl: Optional[TPFTLConfig] = None,
                      channels: int = 1) -> SimulationConfig:
    """The paper's §5.1 configuration for a trace.

    The SSD is as large as the trace's logical address space; the cache
    follows the block-table+GTD rule unless ``cache_fraction`` (of the
    full mapping table) is given, as in the Fig 8(c)/9/10 sweeps.
    ``channels`` selects the device model (1 = the paper's queue).
    """
    ssd = SSDConfig(logical_pages=trace.logical_pages)
    cache = None
    if cache_fraction is not None:
        cache = CacheConfig(
            budget_bytes=ssd.cache_bytes_for_fraction(cache_fraction))
    return SimulationConfig(ssd=ssd, cache=cache,
                            tpftl=tpftl or TPFTLConfig(),
                            channels=channels)


def run_one(workload: str, ftl_name: str, scale: ExperimentScale,
            cache_fraction: Optional[float] = None,
            tpftl: Optional[TPFTLConfig] = None,
            sample_interval: int = 0,
            trace: Optional[Trace] = None,
            seed: Optional[int] = None,
            channels: Optional[int] = None) -> RunResult:
    """Run one (workload, FTL) cell with the paper's configuration.

    Without an explicit ``trace`` the cell is fully described by a
    :class:`~repro.experiments.runner.RunSpec` and is served through the
    default runner — i.e. from the persistent run cache when warm.  An
    explicit ``trace`` bypasses the cache (its content is not digested).
    ``channels`` defaults to the scale's channel count.
    """
    if channels is None:
        channels = scale.channels
    if trace is not None:
        config = simulation_config(trace, cache_fraction=cache_fraction,
                                   tpftl=tpftl, channels=channels)
        ftl = make_ftl(ftl_name, config)
        return simulate(ftl, trace, sample_interval=sample_interval,
                        warmup_requests=scale.warmup_requests,
                        channels=channels)
    from .runner import RunSpec, get_runner
    spec = RunSpec(workload=workload, ftl=ftl_name, scale=scale,
                   cache_fraction=cache_fraction, tpftl=tpftl,
                   seed=seed, sample_interval=sample_interval,
                   channels=channels)
    return get_runner().run_specs([spec])[0]


def matrix_specs(scale: ExperimentScale,
                 workloads: Sequence[str] = WORKLOADS,
                 ftls: Sequence[str] = HEADLINE_FTLS) -> List:
    """The cell specs of the headline (workload x FTL) matrix."""
    from .runner import RunSpec
    return [RunSpec(workload=workload, ftl=ftl_name, scale=scale,
                    channels=scale.channels)
            for workload in workloads for ftl_name in ftls]


def run_matrix(scale: ExperimentScale,
               workloads: Sequence[str] = WORKLOADS,
               ftls: Sequence[str] = HEADLINE_FTLS
               ) -> Dict[Tuple[str, str], RunResult]:
    """All (workload, FTL) runs of the headline evaluation.

    Cells are served through the default
    :class:`~repro.experiments.runner.ParallelRunner`: cached results
    come from the persistent run cache, the rest fan out across
    processes when the runner is configured with ``jobs > 1``.
    """
    specs = matrix_specs(scale, workloads, ftls)
    from .runner import get_runner
    results = get_runner().run_specs(specs)
    keys = [(workload, ftl_name) for workload in workloads
            for ftl_name in ftls]
    return dict(zip(keys, results))


def clear_matrix_cache() -> None:
    """Drop in-process memoised runs (tests use this to control memory).

    Thin shim over :func:`~repro.experiments.runner.clear_run_caches`,
    kept for callers of the pre-runner API; the persistent on-disk cache
    is deliberately left alone.
    """
    from .runner import clear_run_caches
    clear_run_caches()


def tpftl_variant(monogram: str) -> TPFTLConfig:
    """The TPFTL configuration for an ablation monogram."""
    return TPFTLConfig.from_monogram(monogram)


def run_ablation_cell(monogram: str, scale: ExperimentScale,
                      workload: str = "financial1",
                      trace: Optional[Trace] = None) -> RunResult:
    """One Fig 7(b,c)/8(a,b) cell: DFTL or a TPFTL variant on Fin1."""
    if monogram == "dftl":
        return run_one(workload, "dftl", scale, trace=trace)
    if monogram not in ABLATION_CONFIGS:
        raise ExperimentError(f"unknown ablation config {monogram!r}")
    return run_one(workload, "tpftl", scale,
                   tpftl=tpftl_variant(monogram), trace=trace)
