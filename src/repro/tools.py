"""``tpftl-sim``: run any FTL against any workload from the shell.

A general-purpose front door to the simulator, complementing the
figure-oriented ``tpftl-experiments`` CLI::

    tpftl-sim --ftl tpftl --workload financial1 --requests 20000
    tpftl-sim --ftl dftl --trace Financial1.spc --format spc
    tpftl-sim --ftl tpftl --workload msr-ts --cache-fraction 0.03125
    tpftl-sim --ftl sftl --workload msr-src --channels 4 --json -
    tpftl-sim --workload financial1 --tenants 4 --qos fair \\
        --arrival bursty --mean-interarrival-us 2000

``--tenants N`` composes N open-loop tenant streams of the chosen
preset (disjoint namespaces, per-tenant arrival processes) instead of
replaying the preset's closed-loop clock; the summary then carries
per-tenant response statistics, and ``--qos fair`` dispatches through
weighted fair-share lanes instead of the paper's FIFO queue.

Prints the run summary as a table (or JSON with ``--json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .config import (CacheConfig, SimulationConfig, SSDConfig,
                     TPFTLConfig)
from .ftl import FTL_NAMES, make_ftl
from .metrics import format_table
from .ssd import QOS_POLICIES, make_device
from .workloads import (ARRIVAL_KINDS, PRESET_NAMES, ArrivalModel,
                        compose, load_msr_trace, load_spc_trace,
                        make_preset, uniform_mix)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tpftl-sim",
        description="Simulate an FTL over a workload and report the "
                    "paper's metrics")
    parser.add_argument("--ftl", choices=FTL_NAMES, default="tpftl")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--workload", choices=PRESET_NAMES,
                        default="financial1",
                        help="synthetic Table 4 preset (default)")
    source.add_argument("--trace", metavar="FILE",
                        help="replay a trace file instead")
    parser.add_argument("--format", choices=("spc", "msr"),
                        default="spc", help="trace file format")
    parser.add_argument("--requests", type=int, default=20_000,
                        help="synthetic trace length")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup requests (default: requests/4)")
    parser.add_argument("--pages", type=int, default=None,
                        help="device size in 4KB pages (default: sized "
                             "to the workload)")
    parser.add_argument("--cache-fraction", type=float, default=None,
                        help="mapping cache as a fraction of the full "
                             "table (default: the paper's 1/128 rule)")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        help="mapping cache budget in bytes")
    parser.add_argument("--tpftl-config", default="rsbc",
                        help="TPFTL technique monogram (-, b, c, bc, "
                             "r, s, rs, rsbc)")
    parser.add_argument("--channels", type=int, default=1,
                        help="flash channels (1 = the paper's model)")
    parser.add_argument("--tenants", type=int, default=None, metavar="N",
                        help="compose N open-loop tenant streams of the "
                             "preset (disjoint namespaces) instead of "
                             "its closed-loop clock")
    parser.add_argument("--arrival", choices=ARRIVAL_KINDS,
                        default="poisson",
                        help="tenant arrival process (with --tenants)")
    parser.add_argument("--mean-interarrival-us", type=float,
                        default=1_000.0, metavar="US",
                        help="per-tenant mean inter-arrival time "
                             "(with --tenants)")
    parser.add_argument("--qos", choices=QOS_POLICIES, default="fifo",
                        help="dispatch policy (fifo = the paper's "
                             "single queue; fair = weighted per-tenant "
                             "lanes)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the summary as JSON ('-' = stdout)")
    return parser


def _load_trace(args: argparse.Namespace):
    if args.trace:
        if args.tenants is not None:
            raise SystemExit(
                "--tenants composes synthetic preset streams; it "
                "cannot be combined with --trace")
        loader = (load_spc_trace if args.format == "spc"
                  else load_msr_trace)
        return loader(args.trace, wrap_pages=args.pages)
    if args.tenants is not None:
        from .workloads.presets import FINANCIAL_PAGES, MSR_PAGES
        total_pages = args.pages or (
            MSR_PAGES if args.workload.startswith("msr")
            else FINANCIAL_PAGES)
        spec = uniform_mix(
            name=f"{args.workload}x{args.tenants}",
            workload=args.workload, tenants=args.tenants,
            requests_per_tenant=max(1, args.requests // args.tenants),
            pages_per_tenant=max(1, total_pages // args.tenants),
            arrival=ArrivalModel(
                kind=args.arrival,
                mean_interarrival_us=args.mean_interarrival_us),
            seed=args.seed)
        return compose(spec)
    kwargs = {"num_requests": args.requests, "seed": args.seed}
    if args.pages:
        kwargs["logical_pages"] = args.pages
    return make_preset(args.workload, **kwargs)


def _build_config(args: argparse.Namespace, logical_pages: int
                  ) -> SimulationConfig:
    ssd = SSDConfig(logical_pages=logical_pages)
    cache: Optional[CacheConfig] = None
    if args.cache_bytes is not None:
        cache = CacheConfig(budget_bytes=args.cache_bytes)
    elif args.cache_fraction is not None:
        cache = CacheConfig(
            budget_bytes=ssd.cache_bytes_for_fraction(
                args.cache_fraction))
    return SimulationConfig(
        ssd=ssd, cache=cache,
        tpftl=TPFTLConfig.from_monogram(args.tpftl_config),
        channels=args.channels)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace = _load_trace(args)
    logical_pages = args.pages or trace.logical_pages
    config = _build_config(args, logical_pages)
    ftl = make_ftl(args.ftl, config)
    warmup = (args.warmup if args.warmup is not None
              else len(trace) // 4)
    device = make_device(ftl, channels=config.channels, qos=args.qos)
    run = device.run(trace, warmup_requests=warmup)
    summary = run.summary()
    summary["cache_bytes"] = config.resolved_cache().budget_bytes
    if args.json is not None:
        payload = json.dumps(summary, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload)
    else:
        rows = [[key, value] for key, value in summary.items()]
        print(format_table(["Metric", "Value"], rows,
                           title=f"{args.ftl} on {trace.name} "
                                 f"({run.requests} measured requests)"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
