"""TPFTL reproduction: an efficient page-level FTL for flash memory.

A from-scratch, trace-driven reproduction of *"An Efficient Page-level
FTL to Optimize Address Translation in Flash Memory"* (Zhou et al.,
EuroSys 2015): the TPFTL mapping-cache design, its comparators (optimal,
DFTL, S-FTL, CDFTL, block-level, hybrid), the NAND flash substrate they
run on, the paper's analytical models, workload tooling, and one
experiment runner per table/figure of the evaluation.

Quickstart::

    from repro import SimulationConfig, SSDConfig, make_ftl, simulate
    from repro.workloads import financial1

    config = SimulationConfig(ssd=SSDConfig(logical_pages=16_384))
    trace = financial1(num_requests=20_000)
    run = simulate(make_ftl("tpftl", config), trace)
    print(run.summary())
"""

from .config import (CacheConfig, SimulationConfig, SSDConfig,
                     TPFTLConfig)
from .errors import (CacheError, ConfigError, DeviceWornOutError,
                     ExperimentError, FlashError, FTLError, PowerLossError,
                     ReadError, ReproError, WorkloadError)
from .faults import FaultInjector, FaultPlan
from .ftl import (CDFTL, DFTL, FTL_NAMES, SFTL, TPFTL, ZFTL, BaseFTL,
                  BlockFTL, HybridFTL, OptimalFTL, make_ftl)
from .ssd import RunResult, SSDevice, simulate
from .types import Op, Request, Trace

__version__ = "1.0.0"

__all__ = [
    "SSDConfig", "CacheConfig", "TPFTLConfig", "SimulationConfig",
    "BaseFTL", "OptimalFTL", "DFTL", "TPFTL", "SFTL", "CDFTL",
    "BlockFTL", "HybridFTL", "ZFTL", "make_ftl", "FTL_NAMES",
    "SSDevice", "RunResult", "simulate",
    "Op", "Request", "Trace",
    "ReproError", "ConfigError", "FlashError", "CacheError", "FTLError",
    "WorkloadError", "ExperimentError",
    "ReadError", "DeviceWornOutError", "PowerLossError",
    "FaultPlan", "FaultInjector",
    "__version__",
]
