"""Intrusive doubly linked LRU list and a keyed LRU map.

``LRUList`` stores :class:`LRUNode` objects (or subclasses) between two
sentinels; every operation is O(1) except iteration.  The MRU end is the
head, the LRU end the tail — matching the paper's figures, which draw the
hottest node leftmost.

Subclassing ``LRUNode`` lets FTLs hang their payloads directly on the list
node, avoiding a second dictionary lookup on the hot path.  Both
containers are generic (``LRUList[NodeType]``, ``LRUDict[Key, Value]``)
so callers get precise element types without casts.

Misuse (double-insert, removing an unlinked node) raises
:class:`~repro.errors.SimInvariantError` — unlike the bare asserts this
module used to carry, the checks survive ``python -O``.
"""

from __future__ import annotations

from typing import (Dict, Generic, Hashable, Iterator, Optional, Tuple,
                    TypeVar, cast)

from ..errors import SimInvariantError


class LRUNode:
    """A list node; subclass and add payload fields via ``__slots__``."""

    __slots__ = ("prev", "next")

    def __init__(self) -> None:
        self.prev: Optional["LRUNode"] = None
        self.next: Optional["LRUNode"] = None

    @property
    def linked(self) -> bool:
        """True when the node is currently in a list."""
        return self.prev is not None


N = TypeVar("N", bound=LRUNode)


class LRUList(Generic[N]):
    """Doubly linked list with sentinels; head = MRU, tail = LRU."""

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head = LRUNode()  # sentinel before MRU
        self._tail = LRUNode()  # sentinel after LRU
        self._head.next = self._tail
        self._tail.prev = self._head
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def mru(self) -> Optional[N]:
        """The most-recently-used node, or None when empty."""
        node = self._head.next
        return cast(N, node) if node is not self._tail else None

    @property
    def lru(self) -> Optional[N]:
        """The least-recently-used node, or None when empty."""
        node = self._tail.prev
        return cast(N, node) if node is not self._head else None

    def prev_of(self, node: N) -> Optional[N]:
        """Neighbour toward the MRU end, or None at the head."""
        prev = node.prev
        return cast(N, prev) if prev is not self._head else None

    def next_of(self, node: N) -> Optional[N]:
        """Neighbour toward the LRU end, or None at the tail."""
        nxt = node.next
        return cast(N, nxt) if nxt is not self._tail else None

    def push_mru(self, node: N) -> None:
        """Insert an unlinked node at the MRU end."""
        self._require_unlinked(node)
        self._insert_after(self._head, node)

    def push_lru(self, node: N) -> None:
        """Insert an unlinked node at the LRU end."""
        self._require_unlinked(node)
        self._insert_after(cast(LRUNode, self._tail.prev), node)

    def insert_before(self, anchor: N, node: N) -> None:
        """Insert ``node`` immediately toward-MRU of ``anchor``."""
        self._require_unlinked(node)
        if not anchor.linked and anchor is not self._tail:
            raise SimInvariantError(
                "insert_before anchor is not in the list")
        self._insert_after(cast(LRUNode, anchor.prev), node)

    def remove(self, node: N) -> None:
        """Unlink a node from the list."""
        if not node.linked:
            raise SimInvariantError("cannot remove an unlinked node")
        prev = cast(LRUNode, node.prev)
        nxt = cast(LRUNode, node.next)
        prev.next = nxt
        nxt.prev = prev
        node.prev = node.next = None
        self._size -= 1

    def move_to_mru(self, node: N) -> None:
        """Unlink the node and reinsert it at the MRU end.

        Equivalent to ``remove`` + ``push_mru`` but in one relink —
        this is the hottest cache operation (every hit bumps recency),
        so it skips the intermediate unlinked state and its checks.
        """
        head = self._head
        if head.next is node:
            return  # already MRU: the relink would be a no-op
        prev = node.prev
        if prev is None:
            raise SimInvariantError("cannot remove an unlinked node")
        nxt = cast(LRUNode, node.next)
        prev.next = nxt
        nxt.prev = prev
        first = cast(LRUNode, head.next)
        node.prev = head
        node.next = first
        head.next = node
        first.prev = node

    def pop_lru(self) -> Optional[N]:
        """Remove and return the LRU node (None when empty)."""
        node = self.lru
        if node is not None:
            self.remove(node)
        return node

    def __iter__(self) -> Iterator[N]:
        """Iterate from MRU to LRU; do not mutate while iterating."""
        node = cast(LRUNode, self._head.next)
        while node is not self._tail:
            yield cast(N, node)
            node = cast(LRUNode, node.next)

    def iter_lru(self) -> Iterator[N]:
        """Iterate from LRU to MRU; safe against removing the *yielded*
        node only after advancing, so collect victims first if evicting."""
        node = cast(LRUNode, self._tail.prev)
        while node is not self._head:
            yield cast(N, node)
            node = cast(LRUNode, node.prev)

    @staticmethod
    def _require_unlinked(node: LRUNode) -> None:
        if node.linked:
            raise SimInvariantError("node is already in a list")

    def _insert_after(self, anchor: LRUNode, node: N) -> None:
        nxt = cast(LRUNode, anchor.next)
        node.prev = anchor
        node.next = nxt
        anchor.next = node
        nxt.prev = node
        self._size += 1


K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class KeyedNode(LRUNode, Generic[K, V]):
    """List node that remembers its key and an arbitrary value."""

    __slots__ = ("key", "value")

    def __init__(self, key: K, value: V) -> None:
        super().__init__()
        self.key = key
        self.value = value


class LRUDict(Generic[K, V]):
    """Dictionary with LRU ordering: O(1) get/put/evict.

    This is the classic CMT shape (DFTL) and also serves S-FTL's
    page-granularity cache; capacity enforcement is left to the caller
    because eviction cost is policy (writebacks, batching, ...).
    """

    __slots__ = ("_map", "_list")

    def __init__(self) -> None:
        self._map: Dict[K, KeyedNode[K, V]] = {}
        self._list: LRUList[KeyedNode[K, V]] = LRUList()

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: K) -> bool:
        return key in self._map

    def get(self, key: K, touch: bool = True) -> Optional[V]:
        """Return the value for ``key`` (or None); bump recency if asked."""
        node = self._map.get(key)
        if node is None:
            return None
        if touch:
            self._list.move_to_mru(node)
        return node.value

    def node(self, key: K) -> Optional[KeyedNode[K, V]]:
        """The internal node for ``key`` without touching recency."""
        return self._map.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert or update ``key`` at the MRU position."""
        node = self._map.get(key)
        if node is None:
            node = KeyedNode(key, value)
            self._map[key] = node
            self._list.push_mru(node)
        else:
            node.value = value
            self._list.move_to_mru(node)

    def touch(self, key: K) -> None:
        """Promote ``key`` to the MRU position."""
        node = self._map[key]
        self._list.move_to_mru(node)

    def remove(self, key: K) -> V:
        """Remove and return the value for ``key`` (KeyError if absent)."""
        node = self._map.pop(key)
        self._list.remove(node)
        return node.value

    def lru_key(self) -> Optional[K]:
        """The key at the LRU end, or None when empty."""
        node = self._list.lru
        return node.key if node is not None else None

    def pop_lru(self) -> Optional[Tuple[K, V]]:
        """Remove and return the ``(key, value)`` at the LRU end."""
        node = self._list.pop_lru()
        if node is None:
            return None
        del self._map[node.key]
        return node.key, node.value

    def keys_mru_to_lru(self) -> Iterator[K]:
        """Iterate keys from most to least recent."""
        for node in self._list:
            yield node.key

    def items_mru_to_lru(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` pairs from most to least recent."""
        for node in self._list:
            yield node.key, node.value

    def keys_lru_to_mru(self) -> Iterator[K]:
        """Iterate keys from least to most recent."""
        for node in self._list.iter_lru():
            yield node.key
