"""Intrusive doubly linked LRU list and a keyed LRU map.

``LRUList`` stores :class:`LRUNode` objects (or subclasses) between two
sentinels; every operation is O(1) except iteration.  The MRU end is the
head, the LRU end the tail — matching the paper's figures, which draw the
hottest node leftmost.

Subclassing ``LRUNode`` lets FTLs hang their payloads directly on the list
node, avoiding a second dictionary lookup on the hot path.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, Optional, TypeVar


class LRUNode:
    """A list node; subclass and add payload fields via ``__slots__``."""

    __slots__ = ("prev", "next")

    def __init__(self) -> None:
        self.prev: Optional["LRUNode"] = None
        self.next: Optional["LRUNode"] = None

    @property
    def linked(self) -> bool:
        """True when the node is currently in a list."""
        return self.prev is not None


class LRUList:
    """Doubly linked list with sentinels; head = MRU, tail = LRU."""

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head = LRUNode()  # sentinel before MRU
        self._tail = LRUNode()  # sentinel after LRU
        self._head.next = self._tail
        self._tail.prev = self._head
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def mru(self) -> Optional[LRUNode]:
        """The most-recently-used node, or None when empty."""
        node = self._head.next
        return node if node is not self._tail else None

    @property
    def lru(self) -> Optional[LRUNode]:
        """The least-recently-used node, or None when empty."""
        node = self._tail.prev
        return node if node is not self._head else None

    def prev_of(self, node: LRUNode) -> Optional[LRUNode]:
        """Neighbour toward the MRU end, or None at the head."""
        prev = node.prev
        return prev if prev is not self._head else None

    def next_of(self, node: LRUNode) -> Optional[LRUNode]:
        """Neighbour toward the LRU end, or None at the tail."""
        nxt = node.next
        return nxt if nxt is not self._tail else None

    def push_mru(self, node: LRUNode) -> None:
        """Insert an unlinked node at the MRU end."""
        assert not node.linked, "node is already in a list"
        self._insert_after(self._head, node)

    def push_lru(self, node: LRUNode) -> None:
        """Insert an unlinked node at the LRU end."""
        assert not node.linked, "node is already in a list"
        self._insert_after(self._tail.prev, node)  # type: ignore[arg-type]

    def insert_before(self, anchor: LRUNode, node: LRUNode) -> None:
        """Insert ``node`` immediately toward-MRU of ``anchor``."""
        assert not node.linked, "node is already in a list"
        assert anchor.linked or anchor is self._tail
        self._insert_after(anchor.prev, node)  # type: ignore[arg-type]

    def remove(self, node: LRUNode) -> None:
        """Unlink a node from the list."""
        assert node.linked, "node is not in a list"
        prev, nxt = node.prev, node.next
        assert prev is not None and nxt is not None
        prev.next = nxt
        nxt.prev = prev
        node.prev = node.next = None
        self._size -= 1

    def move_to_mru(self, node: LRUNode) -> None:
        """Unlink the node and reinsert it at the MRU end."""
        self.remove(node)
        self.push_mru(node)

    def pop_lru(self) -> Optional[LRUNode]:
        """Remove and return the LRU node (None when empty)."""
        node = self.lru
        if node is not None:
            self.remove(node)
        return node

    def __iter__(self) -> Iterator[LRUNode]:
        """Iterate from MRU to LRU; do not mutate while iterating."""
        node = self._head.next
        while node is not self._tail:
            assert node is not None
            yield node
            node = node.next

    def iter_lru(self) -> Iterator[LRUNode]:
        """Iterate from LRU to MRU; safe against removing the *yielded*
        node only after advancing, so collect victims first if evicting."""
        node = self._tail.prev
        while node is not self._head:
            assert node is not None
            yield node
            node = node.prev

    def _insert_after(self, anchor: LRUNode, node: LRUNode) -> None:
        nxt = anchor.next
        assert nxt is not None
        node.prev = anchor
        node.next = nxt
        anchor.next = node
        nxt.prev = node
        self._size += 1


K = TypeVar("K", bound=Hashable)


class KeyedNode(LRUNode, Generic[K]):
    """List node that remembers its key and an arbitrary value."""

    __slots__ = ("key", "value")

    def __init__(self, key: K, value) -> None:
        super().__init__()
        self.key = key
        self.value = value


class LRUDict(Generic[K]):
    """Dictionary with LRU ordering: O(1) get/put/evict.

    This is the classic CMT shape (DFTL) and also serves S-FTL's
    page-granularity cache; capacity enforcement is left to the caller
    because eviction cost is policy (writebacks, batching, ...).
    """

    __slots__ = ("_map", "_list")

    def __init__(self) -> None:
        self._map: Dict[K, KeyedNode[K]] = {}
        self._list = LRUList()

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: K) -> bool:
        return key in self._map

    def get(self, key: K, touch: bool = True):
        """Return the value for ``key`` (or None); bump recency if asked."""
        node = self._map.get(key)
        if node is None:
            return None
        if touch:
            self._list.move_to_mru(node)
        return node.value

    def node(self, key: K) -> Optional[KeyedNode[K]]:
        """The internal node for ``key`` without touching recency."""
        return self._map.get(key)

    def put(self, key: K, value) -> None:
        """Insert or update ``key`` at the MRU position."""
        node = self._map.get(key)
        if node is None:
            node = KeyedNode(key, value)
            self._map[key] = node
            self._list.push_mru(node)
        else:
            node.value = value
            self._list.move_to_mru(node)

    def touch(self, key: K) -> None:
        """Promote ``key`` to the MRU position."""
        node = self._map[key]
        self._list.move_to_mru(node)

    def remove(self, key: K):
        """Remove and return the value for ``key`` (KeyError if absent)."""
        node = self._map.pop(key)
        self._list.remove(node)
        return node.value

    def lru_key(self) -> Optional[K]:
        """The key at the LRU end, or None when empty."""
        node = self._list.lru
        return node.key if node is not None else None  # type: ignore

    def pop_lru(self):
        """Remove and return the ``(key, value)`` at the LRU end."""
        node = self._list.pop_lru()
        if node is None:
            return None
        assert isinstance(node, KeyedNode)
        del self._map[node.key]
        return node.key, node.value

    def keys_mru_to_lru(self) -> Iterator[K]:
        """Iterate keys from most to least recent."""
        for node in self._list:
            assert isinstance(node, KeyedNode)
            yield node.key

    def keys_lru_to_mru(self) -> Iterator[K]:
        """Iterate keys from least to most recent."""
        for node in self._list.iter_lru():
            assert isinstance(node, KeyedNode)
            yield node.key
