"""Cache substrates shared by every FTL's mapping cache.

The primitives here are policy-free containers: an intrusive doubly linked
list with O(1) splice operations (:class:`LRUList`), a keyed LRU map on top
of it (:class:`LRUDict`), and a byte budget tracker (:class:`ByteBudget`).
The FTLs compose them into DFTL's CMT, S-FTL's page cache and TPFTL's
two-level lists.
"""

from .budget import ByteBudget
from .lru import LRUDict, LRUList, LRUNode

__all__ = ["ByteBudget", "LRUDict", "LRUList", "LRUNode"]
