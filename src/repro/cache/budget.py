"""Byte-budget accounting for mapping caches.

Every FTL in the paper is compared at an equal *byte* budget, not an equal
entry count — that is how TPFTL's 6B compressed entries and S-FTL's
run-length-compressed pages turn into extra hit ratio.  ``ByteBudget``
centralises the arithmetic so each FTL only declares how many bytes each
of its objects costs.
"""

from __future__ import annotations

from ..errors import CacheCapacityError, CacheError


class ByteBudget:
    """Tracks bytes used against a fixed capacity."""

    __slots__ = ("capacity", "used")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise CacheCapacityError(
                f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.used = 0

    @property
    def free(self) -> int:
        """Bytes remaining in the budget."""
        return self.capacity - self.used

    def fits(self, nbytes: int) -> bool:
        """True if ``nbytes`` more would still fit."""
        return self.used + nbytes <= self.capacity

    def charge(self, nbytes: int) -> None:
        """Consume ``nbytes``; the caller must have made room first."""
        if nbytes < 0:
            raise CacheError(f"cannot charge negative bytes ({nbytes})")
        if self.used + nbytes > self.capacity:
            raise CacheError(
                f"charge of {nbytes}B overflows budget "
                f"({self.used}/{self.capacity}B used)")
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget."""
        if nbytes < 0:
            raise CacheError(f"cannot release negative bytes ({nbytes})")
        if nbytes > self.used:
            raise CacheError(
                f"release of {nbytes}B exceeds usage {self.used}B")
        self.used -= nbytes

    def require(self, nbytes: int) -> None:
        """Fail loudly if a single object can never fit."""
        if nbytes > self.capacity:
            raise CacheCapacityError(
                f"object of {nbytes}B cannot fit in a "
                f"{self.capacity}B cache")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteBudget(used={self.used}, capacity={self.capacity})"
