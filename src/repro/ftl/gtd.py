"""The Global Translation Directory (GTD).

Maps each virtual translation-page number to the physical flash page
currently holding it.  The GTD is small (4B per translation page) and is
always resident in the mapping cache, per §4.1; its byte size is charged
against the cache budget by every demand-based FTL here.
"""

from __future__ import annotations

from typing import List

from ..config import GTD_SLOT_BYTES
from ..errors import TranslationError
from ..types import UNMAPPED


class GlobalTranslationDirectory:
    """VTPN -> PTPN directory, fully RAM-resident."""

    __slots__ = ("_table", "updates")

    def __init__(self, translation_pages: int) -> None:
        if translation_pages <= 0:
            raise TranslationError(
                "GTD needs at least one translation page")
        self._table: List[int] = [UNMAPPED] * translation_pages
        #: number of directory updates (== translation-page writes)
        self.updates = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def size_bytes(self) -> int:
        """RAM footprint of the directory in bytes."""
        return len(self._table) * GTD_SLOT_BYTES

    def lookup(self, vtpn: int) -> int:
        """PTPN of a translation page; raises if it was never written."""
        ptpn = self._table[vtpn]
        if ptpn == UNMAPPED:
            raise TranslationError(
                f"translation page {vtpn} has no physical location")
        return ptpn

    def get(self, vtpn: int) -> int:
        """PTPN of a translation page, or ``UNMAPPED`` if never written."""
        return self._table[vtpn]

    def is_mapped(self, vtpn: int) -> bool:
        """True once the translation page has a location."""
        return self._table[vtpn] != UNMAPPED

    def update(self, vtpn: int, ptpn: int) -> int:
        """Point ``vtpn`` at a new PTPN; returns the previous one."""
        old = self._table[vtpn]
        self._table[vtpn] = ptpn
        self.updates += 1
        return old
