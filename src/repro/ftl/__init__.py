"""Flash translation layers: the paper's TPFTL and all comparators.

Public surface:

* :class:`BaseFTL` — shared machinery (translation pages, GTD, GC).
* :class:`OptimalFTL` — whole mapping table in RAM (upper bound).
* :class:`DFTL` — demand-based baseline (Gupta et al., ASPLOS'09).
* :class:`TPFTL` — the paper's contribution, with switchable techniques.
* :class:`SFTL` — page-granularity compressed cache (Jiang et al.).
* :class:`CDFTL` — two-tier CMT/CTP cache (Qin et al.).
* :class:`BlockFTL`, :class:`HybridFTL`, :class:`ZFTL` — comparators
  from the paper's background section (extensions).
* :func:`make_ftl` — factory by name, used by experiments and benches.
"""

from .base import BaseFTL
from .block_ftl import BlockFTL
from .cdftl import CDFTL
from .dftl import DFTL
from .factory import FTL_NAMES, make_ftl
from .gtd import GlobalTranslationDirectory
from .hybrid import HybridFTL
from .mappings import TranslationGeometry
from .optimal import OptimalFTL
from .sftl import SFTL
from .tpftl import TPFTL
from .zftl import ZFTL

__all__ = [
    "BaseFTL", "OptimalFTL", "DFTL", "TPFTL", "SFTL", "CDFTL",
    "BlockFTL", "HybridFTL", "ZFTL", "GlobalTranslationDirectory",
    "TranslationGeometry", "make_ftl", "FTL_NAMES",
]
