"""Shared FTL machinery: translation pages, prefill, and garbage collection.

``BaseFTL`` implements everything the paper's FTLs have in common —

* the on-flash mapping table packed into translation pages, located via
  the RAM-resident Global Translation Directory;
* the write path (out-of-place program, invalidate, mapping update);
* garbage collection of both data and translation blocks, with DFTL-style
  batch updates of translation pages for migrated data pages;
* the cost/metric accounting of §3's models.

Subclasses provide only the *mapping-cache policy*: how a translation is
served (:meth:`_translate`), how a fresh mapping is recorded
(:meth:`_record_mapping`), and how GC probes/flushes the cache.

A key representation choice: ``flash_table[lpn]`` always holds what the
on-flash translation pages currently say.  Cached dirty entries diverge
from it until a translation-page write folds them back in.  This gives a
ground truth for consistency tests and makes translation-page content
implicit (no byte arrays to maintain).
"""

from __future__ import annotations

import abc
import heapq
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from ..config import SimulationConfig
from ..errors import (DeviceWornOutError, FTLError, OutOfSpaceError,
                      TranslationError)
from ..flash import FlashMemory
from ..flash.block import Block
from ..gc import GreedyPolicy, VictimPolicy, WearLeveler
from ..metrics import FTLMetrics
from ..types import (AccessResult, BlockKind, Op, PageKind, Request,
                     UNMAPPED)
from .gtd import GlobalTranslationDirectory
from .mappings import TranslationGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.sanitizer import FTLSan

#: causes a translation-page read can be charged to
_READ_CAUSES = ("load", "writeback", "gc", "migration")
#: causes a translation-page write can be charged to
_WRITE_CAUSES = ("writeback", "gc_update", "migration")


class BaseFTL(abc.ABC):
    """Abstract demand-based page-level FTL over a flash array."""

    #: short identifier used by the factory and reports
    name: str = "base"
    #: False for FTLs that keep the whole table in RAM (no translation
    #: pages on flash at all); flips off prefill/GC of translation blocks.
    uses_translation_pages: bool = True

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True) -> None:
        self.config = config
        self.ssd = config.ssd
        self.flash = FlashMemory(config.ssd)
        self.geometry = TranslationGeometry(
            logical_pages=config.ssd.logical_pages,
            entries_per_page=config.ssd.entries_per_translation_page,
        )
        self.gtd = GlobalTranslationDirectory(self.geometry.translation_pages)
        #: authoritative on-flash mapping: LPN -> PPN as the translation
        #: pages currently record it.
        self.flash_table: List[int] = [UNMAPPED] * config.ssd.logical_pages
        self.metrics = FTLMetrics()
        self.victim_policy = victim_policy or GreedyPolicy()
        self.wear_leveler = wear_leveler
        #: FTLSan runtime checker, or None when config.sanitizer is off.
        #: Imported lazily: repro.analysis imports FTL types for checks.
        self.sanitizer: Optional["FTLSan"] = None
        if config.sanitizer.enabled:
            from ..analysis.sanitizer import FTLSan
            self.sanitizer = FTLSan(self, config.sanitizer)
        if prefill:
            self.prefill()

    # ------------------------------------------------------------------
    # Policy hooks (the mapping cache) — what subclasses implement
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        """Resolve ``lpn`` to its current PPN, managing the cache.

        Must count exactly one lookup (and hit, if served from cache) in
        ``self.metrics`` and charge any flash traffic to ``result`` via
        the ``read_translation_page``/``write_translation_page`` helpers.
        ``request`` is the host request being served (None for synthetic
        single-page accesses) so request-aware policies can prefetch.
        """

    @abc.abstractmethod
    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        """Record a fresh LPN->PPN mapping after a user write.

        Called immediately after :meth:`_translate` for the same LPN, so
        demand-based caches are guaranteed to hold the entry; marking it
        dirty must not incur flash traffic here.
        """

    @abc.abstractmethod
    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        """GC hook: update a cached entry in place (making it dirty).

        Returns True on a GC hit (entry was cached), False otherwise.
        Must not touch flash.
        """

    def _gc_flush_extras(self, vtpn: int) -> Dict[int, int]:
        """GC hook: extra cached dirty entries to fold into a forced
        update of translation page ``vtpn`` (TPFTL's piggyback).  The
        implementation must mark those entries clean.  Default: none."""
        return {}

    @abc.abstractmethod
    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """Describe the cache as (entries, dirty) per cached translation
        page, for the Fig 1/2 sampler."""

    @abc.abstractmethod
    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        """All dirty cached entries, grouped as {vtpn: {lpn: ppn}}.

        Used by :meth:`flush`; implementations must also expose a way for
        flush to mark them clean (see :meth:`_mark_all_clean`).
        """

    def _mark_all_clean(self) -> None:
        """Mark every cached entry clean (called by :meth:`flush`)."""
        raise NotImplementedError

    def cache_peek(self, lpn: int) -> Optional[int]:
        """The cached PPN for ``lpn`` without touching recency, or None.

        Only used by tests and debugging; default None (no cache).
        """
        return None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def serve_request(self, request: Request) -> AccessResult:
        """Serve one host request; returns its flash-operation costs."""
        result = AccessResult()
        op = request.op
        serve = self._serve_page
        first = request.lpn
        for lpn in range(first, first + request.npages):
            serve(lpn, op, request, result)
        return result

    def read_page(self, lpn: int) -> AccessResult:
        """Serve a single-page read (convenience API)."""
        result = AccessResult()
        self._serve_page(lpn, Op.READ, None, result)
        return result

    def write_page(self, lpn: int) -> AccessResult:
        """Serve a single-page write (convenience API)."""
        result = AccessResult()
        self._serve_page(lpn, Op.WRITE, None, result)
        return result

    def lookup_current(self, lpn: int) -> int:
        """The authoritative current PPN for ``lpn`` (cache wins)."""
        cached = self.cache_peek(lpn)
        if cached is not None:
            return cached
        return self.flash_table[lpn]

    def flush(self) -> AccessResult:
        """Write every cached dirty entry back to flash.

        Not part of the paper's experiments (they never flush); exposed
        for tests and for users who want a consistent shutdown.
        """
        result = AccessResult()
        for vtpn, updates in sorted(self._dirty_entries_by_page().items()):
            self.read_translation_page(vtpn, "writeback", result)
            self.write_translation_page(vtpn, updates, "writeback", result)
        self._mark_all_clean()
        self._run_gc(result)
        return result

    def check_consistency(self) -> None:
        """Raise :class:`FTLError` if internal invariants are broken.

        Verifies that every mapped LPN points at a valid data page whose
        recorded metadata is that LPN, and that every translation page in
        the GTD is valid flash.  Intended for tests; O(logical pages).
        """
        for lpn, ppn in enumerate(self.flash_table):
            current = self.lookup_current(lpn)
            if current == UNMAPPED:
                continue
            block = self.flash.block_of(current)
            offset = self.flash.offset_of(current)
            meta = block.meta(offset)
            if meta != lpn:
                raise FTLError(
                    f"LPN {lpn} maps to PPN {current} which holds "
                    f"meta {meta}")
        if self.uses_translation_pages:
            for vtpn in range(len(self.gtd)):
                if not self.gtd.is_mapped(vtpn):
                    raise FTLError(f"translation page {vtpn} unmapped")
                ptpn = self.gtd.lookup(vtpn)
                block = self.flash.block_of(ptpn)
                if block.meta(self.flash.offset_of(ptpn)) != vtpn:
                    raise FTLError(
                        f"GTD points VTPN {vtpn} at PPN {ptpn} holding "
                        f"{block.meta(self.flash.offset_of(ptpn))}")

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def prefill(self) -> None:
        """Bring the device to the paper's "in full use" steady state.

        Writes every logical page once (sequentially) and materialises
        all translation pages, then zeroes the statistics so experiments
        measure only the trace.  The fill is purely mechanical, so on an
        ideal device (no fault plan armed) it goes through the fast
        mode's chunked block fill — same frontier allocations, same
        final ``op_seq``/``last_program_seq``, a fraction of the time;
        with faults armed every program must roll the injector, so the
        per-op reference loop runs instead.
        """
        flash = self.flash
        if flash.injector.plan.is_noop and not flash.fast_mode:
            flash.enter_fast_mode()
            try:
                pages = self.ssd.logical_pages
                self.flash_table[:pages] = flash.program_batch(
                    PageKind.DATA, range(pages))
                if self.uses_translation_pages:
                    ptpns = flash.program_batch(
                        PageKind.TRANSLATION,
                        range(self.geometry.translation_pages))
                    for vtpn, ptpn in enumerate(ptpns):
                        self.gtd.update(vtpn, ptpn)
            finally:
                flash.exit_fast_mode()
        else:
            for lpn in range(self.ssd.logical_pages):
                ppn = self.flash.program(PageKind.DATA, lpn)
                self.flash_table[lpn] = ppn
            if self.uses_translation_pages:
                for vtpn in range(self.geometry.translation_pages):
                    ptpn = self.flash.program(PageKind.TRANSLATION, vtpn)
                    self.gtd.update(vtpn, ptpn)
        self.flash.stats.reset()
        self.metrics = FTLMetrics()

    # ------------------------------------------------------------------
    # The data path
    # ------------------------------------------------------------------
    def _serve_page(self, lpn: int, op: Op, request: Optional[Request],
                    result: AccessResult) -> None:
        if not 0 <= lpn < self.ssd.logical_pages:
            raise TranslationError(
                f"LPN {lpn} outside device ({self.ssd.logical_pages} pages)")
        metrics = self.metrics
        ppn_old = self._translate(lpn, op, request, result)
        if op is Op.READ:
            metrics.user_page_reads += 1
            if ppn_old == UNMAPPED:
                # trimmed/never-written page: real SSDs return zeroes
                # without touching flash
                metrics.unmapped_reads += 1
            else:
                self.flash.read(ppn_old, PageKind.DATA)
                result.data_reads += 1
        elif op is Op.WRITE:
            metrics.user_page_writes += 1
            ppn_new = self.flash.program(PageKind.DATA, lpn)
            result.data_writes += 1
            if ppn_old != UNMAPPED:
                self.flash.invalidate(ppn_old)
            self._record_mapping(lpn, ppn_new, result)
        else:  # TRIM: unmap without writing new data
            metrics.user_page_trims += 1
            if ppn_old != UNMAPPED:
                self.flash.invalidate(ppn_old)
                self._record_mapping(lpn, UNMAPPED, result)
        # ``flash.gc_needed`` inlined (one len() compare) so pages that
        # trigger no GC skip the ``_run_gc`` call frame; with a wear
        # leveler attached its nominate tail must still run every page.
        flash = self.flash
        if (len(flash._free) <= flash._gc_trigger
                or self.wear_leveler is not None):
            self._run_gc(result)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.after_op(lpn, op)

    def _sanitize_op(self, lpn: int, op: Op) -> None:
        """Feed one completed page operation to FTLSan (when attached).

        Subclasses that override :meth:`_serve_page` wholesale must call
        this at every exit point of their data path.
        """
        if self.sanitizer is not None:
            self.sanitizer.after_op(lpn, op)

    # ------------------------------------------------------------------
    # Translation-page flash traffic (helpers for subclasses)
    # ------------------------------------------------------------------
    def read_translation_page(self, vtpn: int, cause: str,
                              result: AccessResult) -> None:
        """Read translation page ``vtpn``, charging to ``cause``."""
        if cause not in _READ_CAUSES:
            raise FTLError(f"unknown translation-read cause {cause!r}")
        ptpn = self.gtd.lookup(vtpn)
        self.flash.read(ptpn, PageKind.TRANSLATION)
        result.translation_reads += 1
        if cause == "load":
            self.metrics.trans_reads_load += 1
        elif cause == "writeback":
            self.metrics.trans_reads_writeback += 1
        elif cause == "gc":
            self.metrics.trans_reads_gc += 1
            result.gc_translation_reads += 1
        else:
            self.metrics.trans_reads_migration += 1
            result.gc_translation_reads += 1

    def write_translation_page(self, vtpn: int, updates: Dict[int, int],
                               cause: str, result: AccessResult) -> None:
        """Rewrite translation page ``vtpn`` applying ``updates``.

        ``updates`` maps LPN -> new PPN for the entries changing in this
        update; unchanged entries are carried over implicitly (the
        flash_table already holds them).
        """
        if cause not in _WRITE_CAUSES:
            raise FTLError(f"unknown translation-write cause {cause!r}")
        for lpn, ppn in updates.items():
            if self.geometry.vtpn_of(lpn) != vtpn:
                raise FTLError(
                    f"update for LPN {lpn} does not belong to VTPN {vtpn}")
            self.flash_table[lpn] = ppn
        old_ptpn = self.gtd.get(vtpn)
        ptpn = self.flash.program(PageKind.TRANSLATION, vtpn)
        if old_ptpn != UNMAPPED:
            self.flash.invalidate(old_ptpn)
        self.gtd.update(vtpn, ptpn)
        result.translation_writes += 1
        if cause == "writeback":
            self.metrics.trans_writes_writeback += 1
        elif cause == "gc_update":
            self.metrics.trans_writes_gc_update += 1
            result.gc_translation_writes += 1
        else:
            self.metrics.trans_writes_migration += 1
            result.gc_translation_writes += 1

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def background_collect(self, max_blocks: int = 1) -> AccessResult:
        """Collect up to ``max_blocks`` victims during host idle time.

        Extension beyond the paper: real controllers use idle periods to
        pre-free blocks so foreground writes do not stall on GC.  Only
        collects when the free pool is within 2x of the trigger level —
        collecting earlier would shrink the effective over-provisioning
        and raise write amplification for no latency benefit.  Returns
        the flash costs so the device model can charge them to idle
        time.
        """
        result = AccessResult()
        if max_blocks < 1:
            return result
        worthwhile = (self.flash.free_block_count
                      <= 2 * self.ssd.gc_trigger_blocks)
        if not worthwhile:
            return result
        for _ in range(max_blocks):
            victim = self._select_victim()
            if victim is None:
                break
            self._collect(victim, result)
            if not self.flash.gc_needed:
                break
        return result

    def _run_gc(self, result: AccessResult) -> None:
        """Collect victim blocks while the free pool is low.

        At most ``gc_max_collections_per_access`` victims are collected
        per invocation so GC cost is amortised across requests (as in
        FlashSim) rather than served in multi-millisecond bursts; the
        limit is ignored while the pool sits at the emergency reserve.
        """
        limit = self.ssd.gc_max_collections_per_access
        collected = 0
        guard = 0
        while self.flash.gc_needed:
            if collected >= limit and not self.flash.exhausted:
                break
            victim = self._select_victim()
            if victim is None:
                if self.flash.exhausted:
                    if self.flash.is_worn:
                        raise DeviceWornOutError(
                            "free pool exhausted with "
                            f"{self.flash.retired_block_count} blocks "
                            f"retired and {self.flash.bad_page_count} "
                            "bad pages; media wear has consumed the "
                            "over-provisioned capacity")
                    raise OutOfSpaceError(
                        "free pool exhausted and no collectible blocks")
                break
            self._collect(victim, result)
            collected += 1
            guard += 1
            if guard > len(self.flash.blocks):
                raise FTLError("GC did not converge")  # pragma: no cover
        if self.wear_leveler is not None:
            if self.flash.fast_mode:
                # O(1) prefilter: the running max/min erase counts are
                # exact, and the minimum over all blocks lower-bounds
                # the minimum over the candidates — when the device-wide
                # spread is below the threshold no candidate can clear
                # it, so the nominate scan is provably a no-op.
                if (self.flash.max_erase - self.flash.min_erase
                        < self.wear_leveler.threshold):
                    return
                device_max = self.flash.max_erase
            else:
                device_max = max(b.erase_count for b in self.flash.blocks)
            nominee = self.wear_leveler.nominate(self._gc_candidates(),
                                                 max_erase=device_max)
            if nominee is not None:
                self._collect(nominee, result)

    def _gc_candidates(self) -> List[Block]:
        active = {
            block for block in (
                self.flash.active_block(BlockKind.DATA),
                self.flash.active_block(BlockKind.TRANSLATION),
            ) if block is not None
        }
        return [block for block in self.flash.blocks
                if not block.is_free
                and block.kind is not BlockKind.RETIRED
                and block not in active]

    def _select_victim(self) -> Optional[Block]:
        if self.flash.fast_mode and type(self.victim_policy) is GreedyPolicy:
            return self._select_victim_heap()
        return self.victim_policy.select(self._gc_candidates(),
                                         now_seq=self.flash.op_seq)

    def _select_victim_heap(self) -> Optional[Block]:
        """Greedy selection off the flash array's lazy victim heap.

        The heap invariant (every collectible block has an entry with
        its *current* counts) makes the top accurate entry exactly the
        block :class:`GreedyPolicy` would pick from a full candidate
        scan: max invalid count, ties to min erase count, then min
        block id — the first-encountered block in the scan order.
        Stale entries (counts moved on, or the block was erased) are
        dropped; entries for the active write frontiers are deferred
        and re-pushed, since those blocks become candidates as soon as
        the frontier moves past them, without any further invalidation.
        The winning entry is left in place: it invalidates itself when
        the victim is erased.
        """
        flash = self.flash
        heap = flash.victim_heap
        blocks = flash.blocks
        active_data = flash.active_block(BlockKind.DATA)
        active_trans = flash.active_block(BlockKind.TRANSLATION)
        deferred: List[Tuple[int, int, int]] = []
        victim: Optional[Block] = None
        while heap:
            neg_invalid, erase_count, block_id = heap[0]
            block = blocks[block_id]
            if (block.invalid_count != -neg_invalid
                    or block.erase_count != erase_count
                    or block.is_free
                    or block.kind is BlockKind.RETIRED):
                heapq.heappop(heap)
                continue
            if block is active_data or block is active_trans:
                deferred.append(heapq.heappop(heap))
                continue
            victim = block
            break
        for entry in deferred:
            heapq.heappush(heap, entry)
        return victim

    def _collect(self, victim: Block, result: AccessResult) -> None:
        kind = victim.kind
        if kind is BlockKind.DATA:
            self._collect_data_block(victim, result)
        elif kind is BlockKind.TRANSLATION:
            self._collect_translation_block(victim, result)
        else:  # pragma: no cover - selection excludes free blocks
            raise FTLError(f"cannot collect free block {victim.block_id}")
        # valid pages are migrated either way; a failed erase just means
        # the victim retires instead of rejoining the free pool.
        if self.flash.erase(victim.block_id):
            result.erases += 1
            if kind is BlockKind.DATA:
                self.metrics.erases_data += 1
            else:
                self.metrics.erases_translation += 1

    def _collect_data_block(self, victim: Block,
                            result: AccessResult) -> None:
        if self.flash.fast_mode:
            self._collect_data_block_fast(victim, result)
            return
        self.metrics.gc_data_collections += 1
        offsets = victim.valid_offsets()
        self.metrics.gc_data_valid_migrated += len(offsets)
        moved_by_vtpn: Dict[int, List[Tuple[int, int]]] = {}
        for offset in offsets:
            old_ppn = self.flash.ppn_of(victim.block_id, offset)
            lpn = self.flash.read(old_ppn, PageKind.DATA)
            result.data_reads += 1
            result.gc_data_reads += 1
            self.metrics.data_reads_migration += 1
            new_ppn = self.flash.program(PageKind.DATA, lpn)
            result.data_writes += 1
            result.gc_data_writes += 1
            self.metrics.data_writes_migration += 1
            self.flash.invalidate(old_ppn)
            vtpn = self.geometry.vtpn_of(lpn)
            moved_by_vtpn.setdefault(vtpn, []).append((lpn, new_ppn))
        self._gc_update_mappings(moved_by_vtpn, result)

    def _collect_data_block_fast(self, victim: Block,
                                 result: AccessResult) -> None:
        """Batched data-block collection (fast mode only).

        The mechanical slice — reading the victim's valid pages,
        programming their copies at the frontier and invalidating the
        originals — runs through the flash array's batch helpers with
        one counter fold per batch; the policy slice (which mappings go
        where, cache hits, piggybacked flushes) still runs the exact
        per-entry path in :meth:`_gc_update_mappings`.
        """
        flash = self.flash
        metrics = self.metrics
        metrics.gc_data_collections += 1
        pairs = flash.gc_scan_valid(victim, PageKind.DATA)
        moved = len(pairs)
        metrics.gc_data_valid_migrated += moved
        if not moved:
            return
        lpns = [lpn for _, lpn in pairs]
        new_ppns = flash.program_batch(PageKind.DATA, lpns)
        flash.invalidate_batch(victim, [offset for offset, _ in pairs])
        result.data_reads += moved
        result.gc_data_reads += moved
        result.data_writes += moved
        result.gc_data_writes += moved
        metrics.data_reads_migration += moved
        metrics.data_writes_migration += moved
        moved_by_vtpn: Dict[int, List[Tuple[int, int]]] = {}
        vtpn_of = self.geometry.vtpn_of
        for lpn, new_ppn in zip(lpns, new_ppns):
            moved_by_vtpn.setdefault(vtpn_of(lpn), []).append((lpn, new_ppn))
        self._gc_update_mappings(moved_by_vtpn, result)

    def _gc_update_mappings(
            self, moved_by_vtpn: Dict[int, List[Tuple[int, int]]],
            result: AccessResult) -> None:
        """Update mappings of migrated data pages (DFTL-style batching).

        Per-vtpn: cached entries are updated in place (GC hits); the
        remainder force one read-modify-write of the translation page
        (GC misses, batched).  Subclasses may piggyback extra cached
        dirty entries onto that forced write via :meth:`_gc_flush_extras`.
        """
        for vtpn in sorted(moved_by_vtpn):
            missed: Dict[int, int] = {}
            for lpn, new_ppn in moved_by_vtpn[vtpn]:
                self.metrics.gc_update_lookups += 1
                if self._cache_update_if_present(lpn, new_ppn):
                    self.metrics.gc_update_hits += 1
                else:
                    missed[lpn] = new_ppn
            if missed:
                extras = self._gc_flush_extras(vtpn)
                missed.update(extras)
                self.read_translation_page(vtpn, "gc", result)
                self.write_translation_page(vtpn, missed, "gc_update",
                                            result)

    def _collect_translation_block(self, victim: Block,
                                   result: AccessResult) -> None:
        if self.flash.fast_mode:
            self._collect_translation_block_fast(victim, result)
            return
        self.metrics.gc_translation_collections += 1
        offsets = victim.valid_offsets()
        self.metrics.gc_trans_valid_migrated += len(offsets)
        for offset in offsets:
            old_ptpn = self.flash.ppn_of(victim.block_id, offset)
            vtpn = self.flash.read(old_ptpn, PageKind.TRANSLATION)
            result.translation_reads += 1
            result.gc_translation_reads += 1
            self.metrics.trans_reads_migration += 1
            new_ptpn = self.flash.program(PageKind.TRANSLATION, vtpn)
            result.translation_writes += 1
            result.gc_translation_writes += 1
            self.metrics.trans_writes_migration += 1
            self.flash.invalidate(old_ptpn)
            self.gtd.update(vtpn, new_ptpn)

    def _collect_translation_block_fast(self, victim: Block,
                                        result: AccessResult) -> None:
        """Batched translation-block collection (fast mode only)."""
        flash = self.flash
        metrics = self.metrics
        metrics.gc_translation_collections += 1
        pairs = flash.gc_scan_valid(victim, PageKind.TRANSLATION)
        moved = len(pairs)
        metrics.gc_trans_valid_migrated += moved
        if not moved:
            return
        vtpns = [vtpn for _, vtpn in pairs]
        new_ptpns = flash.program_batch(PageKind.TRANSLATION, vtpns)
        flash.invalidate_batch(victim, [offset for offset, _ in pairs])
        result.translation_reads += moved
        result.gc_translation_reads += moved
        result.translation_writes += moved
        result.gc_translation_writes += moved
        metrics.trans_reads_migration += moved
        metrics.trans_writes_migration += moved
        for vtpn, new_ptpn in zip(vtpns, new_ptpns):
            self.gtd.update(vtpn, new_ptpn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pages={self.ssd.logical_pages})"
