"""A FAST-style log-buffer hybrid FTL (background comparator, §2.1).

Data blocks are block-mapped; a small shared pool of page-mapped *log
blocks* absorbs updates.  When the pool overflows, the oldest log block is
merged: each logical block with pages in it is rebuilt from the newest
versions (log first, then the old data block) into a fresh block — a
*full merge* — unless the log block happens to contain exactly one
logical block's pages in perfect order, in which case it is promoted in a
cheap *switch merge*.

Hybrids beat block mapping and need far less RAM than page mapping, but
random writes scatter updates across many logical blocks and make every
merge a full merge — the §2.1 failure mode that motivates demand-based
page-level FTLs.  Mapping tables are RAM-resident (no translation pages),
as in FlashSim's hybrid comparators.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..config import SimulationConfig
from ..errors import ConfigError, FTLError, SimInvariantError
from ..flash.block import Block
from ..metrics import FTLMetrics
from ..gc import VictimPolicy, WearLeveler
from ..types import (AccessResult, BlockKind, Op, PageKind, Request,
                     UNMAPPED)
from .base import BaseFTL

#: number of shared log blocks (FAST uses a handful)
DEFAULT_LOG_BLOCKS = 8


class HybridFTL(BaseFTL):
    """Block-mapped data area plus a shared page-mapped log buffer."""

    name = "hybrid"
    uses_translation_pages = False

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True,
                 log_blocks: int = DEFAULT_LOG_BLOCKS) -> None:
        if config.ssd.logical_pages % config.ssd.pages_per_block:
            raise ConfigError(
                "HybridFTL needs logical_pages to be a multiple of "
                "pages_per_block")
        if config.ssd.program_fail_rate > 0:
            raise ConfigError(
                "HybridFTL cannot run under program-fault injection: "
                "its block-mapped data area needs full, offset-aligned "
                "blocks, which bad pages break (read/erase faults and "
                "power loss are supported)")
        if log_blocks < 1:
            raise ConfigError("log_blocks must be >= 1")
        self.max_log_blocks = log_blocks
        self.block_map: List[int] = []
        #: LPN -> PPN for pages whose newest version lives in the log
        self.log_map: Dict[int, int] = {}
        #: log block ids, oldest first
        self.log_fifo: Deque[int] = deque()
        #: current partially filled log block
        self._log_frontier: Optional[Block] = None
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)
        self.merges_full = 0
        self.merges_switch = 0

    def prefill(self) -> None:
        """Write every logical page once and reset statistics."""
        ppb = self.ssd.pages_per_block
        self.block_map = [UNMAPPED] * (self.ssd.logical_pages // ppb)
        for lpn in range(self.ssd.logical_pages):
            ppn = self.flash.program(PageKind.DATA, lpn)
            self.flash_table[lpn] = ppn
            if lpn % ppb == 0:
                self.block_map[lpn // ppb] = self.flash.block_id_of(ppn)
        self.flash.stats.reset()
        self.metrics = FTLMetrics()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _serve_page(self, lpn: int, op: Op, request: Optional[Request],
                    result: AccessResult) -> None:
        if op is Op.TRIM:
            raise FTLError(
                "HybridFTL does not support TRIM (block-mapped data "
                "area has no per-page unmap)")
        self.metrics.lookups += 1
        self.metrics.hits += 1  # both tables are RAM-resident
        if op is Op.READ:
            self.metrics.user_page_reads += 1
            ppn = self.log_map.get(lpn, self._data_ppn(lpn))
            self.flash.read(ppn, PageKind.DATA)
            result.data_reads += 1
            self._sanitize_op(lpn, op)
            return
        self.metrics.user_page_writes += 1
        self._append_to_log(lpn, result)
        self._sanitize_op(lpn, op)

    def _data_ppn(self, lpn: int) -> int:
        ppb = self.ssd.pages_per_block
        lbn, offset = divmod(lpn, ppb)
        return self.flash.ppn_of(self.block_map[lbn], offset)

    def _append_to_log(self, lpn: int, result: AccessResult) -> None:
        frontier = self._log_frontier
        if frontier is None or frontier.is_full:
            if frontier is not None:
                self.log_fifo.append(frontier.block_id)
            if len(self.log_fifo) >= self.max_log_blocks:
                self._merge_oldest(result)
            frontier = self.flash.allocate_block(BlockKind.DATA)
            self._log_frontier = frontier
        # program the new version first, then invalidate the superseded
        # copy: a power cut between the two cannot split the pair (the
        # invalidation is out-of-band bookkeeping, not a flash op), and
        # the reverse order would lose the page if power died after the
        # invalidate but before the program.
        old = self.log_map.get(lpn)
        if old is None:
            old = self._data_ppn(lpn)
        ppn = self.flash.program_into(frontier, PageKind.DATA, lpn)
        result.data_writes += 1
        self.flash.invalidate(old)
        self.log_map[lpn] = ppn
        self.flash_table[lpn] = ppn

    # ------------------------------------------------------------------
    # Merges
    # ------------------------------------------------------------------
    def _merge_oldest(self, result: AccessResult) -> None:
        victim_id = self.log_fifo.popleft()
        victim = self.flash.blocks[victim_id]
        ppb = self.ssd.pages_per_block
        if self._is_switchable(victim):
            # switch merge: the log block IS the new data block
            first_lpn = victim.meta(0)
            if first_lpn is None:  # pragma: no cover - switchable => full
                raise SimInvariantError("switch-merge victim lost meta")
            lbn = first_lpn // ppb
            old_data = self.block_map[lbn]
            self._invalidate_remaining(old_data)
            if self.flash.erase(old_data):
                result.erases += 1
                self.metrics.erases_data += 1
            self.block_map[lbn] = victim_id
            for offset in range(ppb):
                self.log_map.pop(lbn * ppb + offset, None)
            self.merges_switch += 1
            return
        # full merge of every logical block present in the victim
        lbns: Set[int] = set()
        for offset in victim.valid_offsets():
            lpn = victim.meta(offset)
            if lpn is None:  # pragma: no cover - valid pages carry meta
                raise SimInvariantError("valid log page without metadata")
            lbns.add(lpn // ppb)
        for lbn in sorted(lbns):
            self._full_merge(lbn, result)
        # all its pages are now invalid
        if self.flash.erase(victim_id):
            result.erases += 1
            self.metrics.erases_data += 1
        self.metrics.gc_data_collections += 1
        self.merges_full += 1

    def _is_switchable(self, victim: Block) -> bool:
        ppb = self.ssd.pages_per_block
        if victim.valid_count != ppb:
            return False
        first = victim.meta(0)
        if first is None or first % ppb != 0:
            return False
        for offset in range(ppb):
            lpn = victim.meta(offset)
            if lpn != first + offset:
                return False
            # every page must still be the newest version
            if self.log_map.get(lpn) != self.flash.ppn_of(
                    victim.block_id, offset):
                return False
        return True

    def _full_merge(self, lbn: int, result: AccessResult) -> None:
        ppb = self.ssd.pages_per_block
        base = lbn * ppb
        new_block = self.flash.allocate_block(BlockKind.DATA)
        old_data = self.block_map[lbn]
        for offset in range(ppb):
            lpn = base + offset
            src = self.log_map.get(lpn)
            if src is None:
                src = self.flash.ppn_of(old_data, offset)
            self.flash.read(src, PageKind.DATA)
            result.data_reads += 1
            result.gc_data_reads += 1
            self.metrics.data_reads_migration += 1
            # program before invalidating, as in _append_to_log: the old
            # copy must stay valid until the new one exists on flash.
            ppn = self.flash.program_into(new_block, PageKind.DATA, lpn)
            result.data_writes += 1
            self.flash.invalidate(src)
            result.gc_data_writes += 1
            self.metrics.data_writes_migration += 1
            self.flash_table[lpn] = ppn
            self.log_map.pop(lpn, None)
        self.block_map[lbn] = new_block.block_id
        if self.flash.blocks[old_data].valid_count == 0:
            if self.flash.erase(old_data):
                result.erases += 1
                self.metrics.erases_data += 1

    def _invalidate_remaining(self, block_id: int) -> None:
        block = self.flash.blocks[block_id]
        for offset in block.valid_offsets():
            self.flash.invalidate(self.flash.ppn_of(block_id, offset))

    # ------------------------------------------------------------------
    # Hooks unused by this FTL
    # ------------------------------------------------------------------
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:  # pragma: no cover
        raise NotImplementedError("HybridFTL overrides _serve_page")

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:  # pragma: no cover
        raise NotImplementedError("HybridFTL overrides _serve_page")

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        self.flash_table[lpn] = ppn
        return True

    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        return []

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        return {}

    def _mark_all_clean(self) -> None:
        pass
