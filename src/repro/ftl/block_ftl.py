"""A block-level FTL: the coarse-grained comparator from §2.1.

Maps logical *blocks* to physical blocks with fixed page offsets, so the
whole mapping table is tiny (4B per block — this table's size is exactly
what the paper's §5.1 rule grants the page-level FTLs as cache budget).
The price is rigid placement: overwriting any page forces a copy-merge of
the whole block.  Runnable as an extension to demonstrate *why* page-level
mapping wins; not part of the paper's measured figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SimulationConfig
from ..errors import ConfigError, FTLError
from ..metrics import FTLMetrics
from ..gc import VictimPolicy, WearLeveler
from ..types import AccessResult, Op, PageKind, Request, UNMAPPED
from .base import BaseFTL


class BlockFTL(BaseFTL):
    """Block-granularity mapping with copy-merge updates."""

    name = "block"
    uses_translation_pages = False

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True) -> None:
        if config.ssd.logical_pages % config.ssd.pages_per_block:
            raise ConfigError(
                "BlockFTL needs logical_pages to be a multiple of "
                "pages_per_block")
        if config.ssd.program_fail_rate > 0:
            raise ConfigError(
                "BlockFTL cannot run under program-fault injection: its "
                "rigid block mapping needs full, offset-aligned blocks, "
                "which bad pages break (read/erase faults and power "
                "loss are supported)")
        #: logical block -> physical block id
        self.block_map: List[int] = []
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)

    def prefill(self) -> None:
        """Sequential prefill lands each logical block in one physical
        block, establishing the rigid block mapping."""
        ppb = self.ssd.pages_per_block
        self.block_map = [UNMAPPED] * (self.ssd.logical_pages // ppb)
        for lpn in range(self.ssd.logical_pages):
            ppn = self.flash.program(PageKind.DATA, lpn)
            self.flash_table[lpn] = ppn
            if lpn % ppb == 0:
                self.block_map[lpn // ppb] = self.flash.block_id_of(ppn)
        self.flash.stats.reset()
        self.metrics = FTLMetrics()

    # ------------------------------------------------------------------
    # Data path (overridden wholesale: no out-of-place page writes)
    # ------------------------------------------------------------------
    def _serve_page(self, lpn: int, op: Op, request: Optional[Request],
                    result: AccessResult) -> None:
        if op is Op.TRIM:
            raise FTLError(
                "BlockFTL does not support TRIM (rigid block mapping "
                "has no per-page unmap)")
        self.metrics.lookups += 1
        self.metrics.hits += 1  # the block table is fully RAM-resident
        ppb = self.ssd.pages_per_block
        lbn, offset = divmod(lpn, ppb)
        old_block = self.block_map[lbn]
        if op is Op.READ:
            self.metrics.user_page_reads += 1
            self.flash.read(self.flash.ppn_of(old_block, offset),
                            PageKind.DATA)
            result.data_reads += 1
            self._sanitize_op(lpn, op)
            return
        self.metrics.user_page_writes += 1
        # Copy-merge: rewrite the whole block with the new page in place.
        base_lpn = lbn * ppb
        for i in range(ppb):
            src_ppn = self.flash.ppn_of(old_block, i)
            if i != offset:
                self.flash.read(src_ppn, PageKind.DATA)
                result.data_reads += 1
                result.gc_data_reads += 1
                self.metrics.data_reads_migration += 1
            new_ppn = self.flash.program(PageKind.DATA, base_lpn + i)
            result.data_writes += 1
            if i != offset:
                result.gc_data_writes += 1
                self.metrics.data_writes_migration += 1
            self.flash.invalidate(src_ppn)
            self.flash_table[base_lpn + i] = new_ppn
        self.block_map[lbn] = self.flash.block_id_of(
            self.flash_table[base_lpn])
        # the old block is now fully invalid: reclaim it immediately
        # (False means an injected erase failure retired it instead)
        if self.flash.erase(old_block):
            result.erases += 1
            self.metrics.erases_data += 1
        self.metrics.gc_data_collections += 1
        self._sanitize_op(lpn, op)

    # ------------------------------------------------------------------
    # Hooks unused by this FTL (no demand cache, no translation pages)
    # ------------------------------------------------------------------
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:  # pragma: no cover
        raise NotImplementedError("BlockFTL overrides _serve_page")

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:  # pragma: no cover
        raise NotImplementedError("BlockFTL overrides _serve_page")

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        self.flash_table[lpn] = ppn
        return True

    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        return []

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        return {}

    def _mark_all_clean(self) -> None:
        pass
