"""The optimal page-level FTL: the entire mapping table in RAM.

This is the paper's lower bound on translation overhead (§5.1): every
translation is a cache hit, nothing is ever written back, and flash holds
no translation pages at all, so GC only ever touches data blocks.  Any
demand-based FTL's deviation from this FTL is the cost of address
translation — exactly what Table 2 quantifies for DFTL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..types import AccessResult, Op, Request
from .base import BaseFTL


class OptimalFTL(BaseFTL):
    """Page-level mapping with the full table cached in RAM."""

    name = "optimal"
    uses_translation_pages = False

    # The RAM table and the "on-flash" table coincide: with no translation
    # pages there is nothing for a cached entry to diverge from, so
    # ``flash_table`` doubles as the in-RAM mapping.

    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        metrics = self.metrics
        metrics.lookups += 1
        metrics.hits += 1
        return self.flash_table[lpn]

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        self.flash_table[lpn] = ppn

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        self.flash_table[lpn] = ppn
        return True

    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        return []

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        return {}

    def _mark_all_clean(self) -> None:
        pass
