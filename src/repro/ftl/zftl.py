"""ZFTL: zone-based mapping cache with two-tier caching (§2.2).

Re-implementation of Mingbang et al. (ICCT'11) as the paper sketches
it: flash is divided into *zones*, and the cache holds the complete
mapping information of only the most recently active zone (the
second tier), plus a small first-tier area that buffers updates to
other zones and evicts them in per-translation-page batches.

The zone is sized so its slice of the mapping table fills the cache
budget, which gives ZFTL a perfect hit ratio *inside* the active zone
— and makes *zone switches* the dominant cost: a switch flushes every
dirty entry of the outgoing zone and reads in every translation page
of the incoming one.  Workloads whose working set straddles zones
ping-pong and collapse, the weakness the paper calls "cumbersome" and
the reason it evaluates against S-FTL instead.

A switch happens after ``switch_threshold`` consecutive out-of-zone
accesses (hysteresis, so single strays only pay a first-tier lookup).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SimulationConfig
from ..errors import CacheCapacityError
from ..gc import VictimPolicy, WearLeveler
from ..types import AccessResult, Op, Request
from .base import BaseFTL

#: bytes per entry buffered in the first tier (LPN + PPN)
TIER1_ENTRY_BYTES = 8
#: fraction of the cache budget reserved for the first tier
TIER1_FRACTION = 0.125
#: consecutive out-of-zone accesses before the active zone switches
DEFAULT_SWITCH_THRESHOLD = 16


class ZFTL(BaseFTL):
    """Zone-granular mapping cache with first-tier update buffering."""

    name = "zftl"

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True,
                 switch_threshold: int = DEFAULT_SWITCH_THRESHOLD) -> None:
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)
        cache_cfg = config.resolved_cache()
        total = cache_cfg.entry_budget_bytes(self.gtd.size_bytes)
        tier1_bytes = int(total * TIER1_FRACTION)
        self.tier1_capacity = max(1, tier1_bytes // TIER1_ENTRY_BYTES)
        zone_bytes = total - tier1_bytes
        # the active zone is held as whole translation pages (PPNs only)
        page_bytes = (self.ssd.entries_per_translation_page
                      * 4)  # 4B PPN per entry, LPNs implicit
        self.zone_tpages = max(1, zone_bytes // page_bytes)
        if self.zone_tpages < 1:  # pragma: no cover - max(1, ...) above
            raise CacheCapacityError("zone cannot hold one page")
        if switch_threshold < 1:
            raise CacheCapacityError("switch_threshold must be >= 1")
        self.switch_threshold = switch_threshold
        #: id of the active zone (zone = zone_tpages translation pages)
        self.active_zone: Optional[int] = None
        #: dirty LPN->PPN updates within the active zone
        self.zone_dirty: Dict[int, int] = {}
        #: first tier: out-of-zone updates, LPN -> PPN
        self.tier1: Dict[int, int] = {}
        #: consecutive out-of-zone accesses (switch hysteresis)
        self._stray_streak = 0
        self._stray_zone: Optional[int] = None
        #: zone switches performed (the "cumbersome" cost, observable)
        self.zone_switches = 0

    # ------------------------------------------------------------------
    # Zone arithmetic
    # ------------------------------------------------------------------
    def zone_of(self, lpn: int) -> int:
        """Zone id owning ``lpn``."""
        return self.geometry.vtpn_of(lpn) // self.zone_tpages

    def _zone_vtpns(self, zone: int) -> range:
        first = zone * self.zone_tpages
        last = min(first + self.zone_tpages,
                   self.geometry.translation_pages)
        return range(first, last)

    # ------------------------------------------------------------------
    # Mapping-cache policy
    # ------------------------------------------------------------------
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        self.metrics.lookups += 1
        zone = self.zone_of(lpn)
        if zone == self.active_zone:
            self._stray_streak = 0
            self.metrics.hits += 1
            return self.zone_dirty.get(lpn, self.flash_table[lpn])
        if lpn in self.tier1:
            # buffered out-of-zone update: resident mapping info
            self._note_stray(zone, result)
            self.metrics.hits += 1
            return self.tier1[lpn]
        self._note_stray(zone, result)
        if zone == self.active_zone:
            # _note_stray switched to this zone; everything is resident
            self.metrics.hits += 1
            return self.zone_dirty.get(lpn, self.flash_table[lpn])
        # out-of-zone miss: read the single translation page needed
        self.read_translation_page(self.geometry.vtpn_of(lpn), "load",
                                   result)
        return self.flash_table[lpn]

    def _note_stray(self, zone: int, result: AccessResult) -> None:
        """Track out-of-zone accesses; switch zones past the threshold."""
        if zone == self._stray_zone:
            self._stray_streak += 1
        else:
            self._stray_zone = zone
            self._stray_streak = 1
        if (self.active_zone is None
                or self._stray_streak >= self.switch_threshold):
            self._switch_zone(zone, result)

    def _switch_zone(self, zone: int, result: AccessResult) -> None:
        """Flush the outgoing zone and load the incoming one wholesale."""
        if self.active_zone is not None:
            self._flush_zone(result)
        # load every translation page of the incoming zone
        for vtpn in self._zone_vtpns(zone):
            self.read_translation_page(vtpn, "load", result)
        self.active_zone = zone
        self.zone_dirty.clear()
        self._stray_streak = 0
        self._stray_zone = None
        self.zone_switches += 1

    def _flush_zone(self, result: AccessResult) -> None:
        """Write back the active zone's dirty entries, batched by page."""
        grouped: Dict[int, Dict[int, int]] = {}
        for lpn, ppn in self.zone_dirty.items():
            grouped.setdefault(self.geometry.vtpn_of(lpn), {})[lpn] = ppn
        for vtpn in sorted(grouped):
            self.metrics.replacements += 1
            self.metrics.dirty_replacements += 1
            # whole page resident: single program, no read-modify-write
            self.write_translation_page(vtpn, grouped[vtpn],
                                        "writeback", result)
        self.zone_dirty.clear()

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        if self.zone_of(lpn) == self.active_zone:
            self.zone_dirty[lpn] = ppn
            return
        self.tier1[lpn] = ppn
        if len(self.tier1) > self.tier1_capacity:
            self._evict_tier1(result)

    def _evict_tier1(self, result: AccessResult) -> None:
        """Batch-evict the first tier's largest per-page group."""
        grouped: Dict[int, List[int]] = {}
        for lpn in self.tier1:
            grouped.setdefault(self.geometry.vtpn_of(lpn),
                               []).append(lpn)
        vtpn = max(grouped, key=lambda v: len(grouped[v]))
        updates = {lpn: self.tier1.pop(lpn) for lpn in grouped[vtpn]}
        self.metrics.replacements += 1
        self.metrics.dirty_replacements += 1
        self.metrics.batch_cleaned_entries += len(updates) - 1
        self.read_translation_page(vtpn, "writeback", result)
        self.write_translation_page(vtpn, updates, "writeback", result)

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        if self.zone_of(lpn) == self.active_zone:
            self.zone_dirty[lpn] = ppn
            return True
        if lpn in self.tier1:
            self.tier1[lpn] = ppn
            return True
        return False

    def _gc_flush_extras(self, vtpn: int) -> Dict[int, int]:
        """Fold resident dirty entries of ``vtpn`` into a GC update."""
        extras: Dict[int, int] = {}
        for lpn in list(self.tier1):
            if self.geometry.vtpn_of(lpn) == vtpn:
                extras[lpn] = self.tier1.pop(lpn)
        if (self.active_zone is not None
                and vtpn // self.zone_tpages == self.active_zone):
            for lpn in [l for l in self.zone_dirty
                        if self.geometry.vtpn_of(l) == vtpn]:
                extras[lpn] = self.zone_dirty.pop(lpn)
        return extras

    def cache_peek(self, lpn: int) -> Optional[int]:
        """Cached PPN for ``lpn`` without touching recency."""
        if self.zone_of(lpn) == self.active_zone:
            return self.zone_dirty.get(lpn, self.flash_table[lpn])
        return self.tier1.get(lpn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        snapshot: List[Tuple[int, int]] = []
        if self.active_zone is not None:
            dirty_per_page: Dict[int, int] = {}
            for lpn in self.zone_dirty:
                vtpn = self.geometry.vtpn_of(lpn)
                dirty_per_page[vtpn] = dirty_per_page.get(vtpn, 0) + 1
            for vtpn in self._zone_vtpns(self.active_zone):
                snapshot.append((self.geometry.entries_in(vtpn),
                                 dirty_per_page.get(vtpn, 0)))
        tier1_pages: Dict[int, int] = {}
        for lpn in self.tier1:
            vtpn = self.geometry.vtpn_of(lpn)
            tier1_pages[vtpn] = tier1_pages.get(vtpn, 0) + 1
        snapshot.extend((count, count)
                        for count in tier1_pages.values())
        return snapshot

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        grouped: Dict[int, Dict[int, int]] = {}
        for lpn, ppn in self.zone_dirty.items():
            grouped.setdefault(self.geometry.vtpn_of(lpn), {})[lpn] = ppn
        for lpn, ppn in self.tier1.items():
            grouped.setdefault(self.geometry.vtpn_of(lpn), {})[lpn] = ppn
        return grouped

    def _mark_all_clean(self) -> None:
        self.zone_dirty.clear()
        self.tier1.clear()
