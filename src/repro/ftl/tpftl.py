"""TPFTL: the paper's translation-page-level caching FTL (§4).

The mapping cache is organised as **two-level LRU lists**: a page-level
list of TP nodes, one per translation page with at least one cached
entry, each holding an entry-level LRU list of its cached entries.  A TP
node's position in the page-level list is decided by its *page-level
hotness* — the mean hotness (global access sequence number) of its entry
nodes — so a node containing the hottest entry can still age toward the
cold end if it also shelters many cold entries (§4.2).

Entries are stored compressed: the LPN is implied by the node's VTPN plus
the in-page offset, so an entry costs 6 bytes instead of DFTL's 8
(§4.1) — more entries fit in the same byte budget (Fig 10).

Four techniques are individually switchable via
:class:`~repro.config.TPFTLConfig`, matching the ablation monograms of
Fig 7/8:

* ``r`` request-level prefetching (§4.3),
* ``s`` selective prefetching with the TP-node counter (§4.3),
* ``b`` batch-update replacement (§4.4),
* ``c`` clean-first replacement (§4.4),

with the §4.5 integration rules: prefetching never crosses a
translation-page boundary, and prefetch-induced replacement is confined
to a single cached TP node, so one address translation costs at most one
translation-page read plus one translation-page update.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..cache import ByteBudget, LRUList, LRUNode
from ..config import SimulationConfig, TPFTLConfig
from ..errors import CacheCapacityError, FTLError, SanitizerError
from ..gc import VictimPolicy, WearLeveler
from ..types import AccessResult, Op, Request
from .base import BaseFTL


class EntryNode(LRUNode):
    """One cached mapping entry (offset-compressed LPN -> PPN)."""

    __slots__ = ("lpn", "ppn", "dirty", "hot_seq", "prefetched")

    def __init__(self, lpn: int, ppn: int, hot_seq: int,
                 prefetched: bool = False) -> None:
        super().__init__()
        self.lpn = lpn
        self.ppn = ppn
        self.dirty = False
        self.hot_seq = hot_seq
        self.prefetched = prefetched


class TPNode(LRUNode):
    """A translation-page node: the cluster of cached entries of one
    translation page, with its own entry-level LRU list."""

    __slots__ = ("vtpn", "entries", "by_lpn", "hot_sum", "dirty_count")

    def __init__(self, vtpn: int) -> None:
        super().__init__()
        self.vtpn = vtpn
        self.entries: LRUList[EntryNode] = LRUList()
        self.by_lpn: Dict[int, EntryNode] = {}
        self.hot_sum = 0
        self.dirty_count = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def hotness(self) -> float:
        """Page-level hotness: mean hotness of the entry nodes (§4.2)."""
        count = len(self.entries)
        return self.hot_sum / count if count else 0.0

    def add(self, entry: EntryNode) -> None:
        """Insert an entry node at the MRU end of this TP node."""
        self.entries.push_mru(entry)
        self.by_lpn[entry.lpn] = entry
        self.hot_sum += entry.hot_seq

    def drop(self, entry: EntryNode) -> None:
        """Remove an entry node from this TP node."""
        self.entries.remove(entry)
        del self.by_lpn[entry.lpn]
        self.hot_sum -= entry.hot_seq
        if entry.dirty:
            self.dirty_count -= 1

    def set_dirty(self, entry: EntryNode, dirty: bool) -> None:
        """Flip an entry's dirty flag, keeping counts in sync."""
        if entry.dirty != dirty:
            entry.dirty = dirty
            self.dirty_count += 1 if dirty else -1

    def dirty_entries(self) -> List[EntryNode]:
        """The node's dirty entry nodes, MRU to LRU."""
        return [e for e in self.entries if e.dirty]


class TPFTL(BaseFTL):
    """The paper's FTL: two-level LRU lists plus the r/s/b/c techniques."""

    name = "tpftl"

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True) -> None:
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)
        cache_cfg = config.resolved_cache()
        self.techniques: TPFTLConfig = config.tpftl
        self.entry_bytes = cache_cfg.tpftl_entry_bytes
        self.node_bytes = cache_cfg.tpftl_node_bytes
        budget_bytes = cache_cfg.entry_budget_bytes(self.gtd.size_bytes)
        if budget_bytes < self.node_bytes + self.entry_bytes:
            raise CacheCapacityError(
                f"budget {budget_bytes}B cannot hold one TP node + entry")
        self.budget = ByteBudget(budget_bytes)
        self.page_list: LRUList[TPNode] = LRUList()  # hotness-ordered: head = hottest
        self.by_vtpn: Dict[int, TPNode] = {}
        #: §4.3 counter of TP-node count changes (+1 load, -1 evict)
        self.node_counter = 0
        #: whether selective prefetching is currently active
        self.selective_active = False
        #: global access sequence used as entry hotness
        self._hot_seq = 0

    # ==================================================================
    # Mapping-cache policy
    # ==================================================================
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        self.metrics.lookups += 1
        vtpn = self.geometry.vtpn_of(lpn)
        node = self.by_vtpn.get(vtpn)
        if node is not None:
            entry = node.by_lpn.get(lpn)
            if entry is not None:
                self.metrics.hits += 1
                if entry.prefetched:
                    self.metrics.prefetch_hits += 1
                    entry.prefetched = False
                self._touch(node, entry)
                return entry.ppn
        # ---- miss: one translation-page read serves the demanded entry
        # plus any prefetched ones (all within this translation page).
        prefetch_lpns = self._plan_prefetch(lpn, vtpn, request)
        if self.sanitizer is not None:
            self.sanitizer.note_prefetch_plan(self, lpn, prefetch_lpns)
        self.read_translation_page(vtpn, "load", result)
        demanded = self._insert_entry(lpn, self.flash_table[lpn],
                                      prefetched=False, result=result)
        if demanded is None:  # pragma: no cover - budget checked in init
            raise FTLError("could not make room for the demanded entry")
        self._prefetch(prefetch_lpns, result, protect=demanded)
        return demanded.ppn

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        node = self.by_vtpn.get(self.geometry.vtpn_of(lpn))
        entry = node.by_lpn.get(lpn) if node is not None else None
        if node is None or entry is None:  # pragma: no cover - installed
            raise FTLError(f"write to LPN {lpn} without a cached entry")
        entry.ppn = ppn
        node.set_dirty(entry, True)
        self._touch(node, entry)

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        node = self.by_vtpn.get(self.geometry.vtpn_of(lpn))
        if node is None:
            return False
        entry = node.by_lpn.get(lpn)
        if entry is None:
            return False
        entry.ppn = ppn
        node.set_dirty(entry, True)
        return True

    def _gc_flush_extras(self, vtpn: int) -> Dict[int, int]:
        """Piggyback cached dirty entries onto a forced GC update (§4.4)."""
        if not self.techniques.batch_update:
            return {}
        node = self.by_vtpn.get(vtpn)
        if node is None or not node.dirty_count:
            return {}
        extras: Dict[int, int] = {}
        for entry in node.dirty_entries():
            extras[entry.lpn] = entry.ppn
            node.set_dirty(entry, False)
        self.metrics.batch_cleaned_entries += len(extras)
        return extras

    def cache_peek(self, lpn: int) -> Optional[int]:
        """Cached PPN for ``lpn`` without touching recency."""
        node = self.by_vtpn.get(self.geometry.vtpn_of(lpn))
        if node is None:
            return None
        entry = node.by_lpn.get(lpn)
        return entry.ppn if entry is not None else None

    # ==================================================================
    # Hotness maintenance (§4.2)
    # ==================================================================
    def _touch(self, node: TPNode, entry: EntryNode) -> None:
        """Bump an entry's hotness and re-sort its TP node."""
        self._hot_seq += 1
        node.hot_sum += self._hot_seq - entry.hot_seq
        entry.hot_seq = self._hot_seq
        node.entries.move_to_mru(entry)
        self._reposition(node)

    def _reposition(self, node: TPNode) -> None:
        """Restore hotness ordering of the page-level list around ``node``.

        Hotness-changing events move a node only a few slots in practice,
        so a local walk is cheap and keeps every operation O(distance).
        """
        hotness = node.hotness
        lst = self.page_list
        prev = lst.prev_of(node)
        if prev is not None and prev.hotness < hotness:
            anchor = prev
            while True:
                up = lst.prev_of(anchor)
                if up is None or up.hotness >= hotness:
                    break
                anchor = up
            lst.remove(node)
            lst.insert_before(anchor, node)
            return
        nxt = lst.next_of(node)
        if nxt is not None and nxt.hotness > hotness:
            anchor = nxt
            while True:
                down = lst.next_of(anchor)
                if down is None or down.hotness <= hotness:
                    break
                anchor = down
            lst.remove(node)
            # place immediately colder than ``anchor``
            after = lst.next_of(anchor)
            if after is None:
                lst.push_lru(node)
            else:
                lst.insert_before(after, node)

    # ==================================================================
    # Loading policy (§4.3)
    # ==================================================================
    def _plan_prefetch(self, lpn: int, vtpn: int,
                       request: Optional[Request]) -> List[int]:
        """LPNs to prefetch alongside a missed ``lpn`` (page-bounded)."""
        last_in_page = self.geometry.last_lpn(vtpn)
        plan: List[int] = []
        planned = set()
        if (self.techniques.request_prefetch and request is not None
                and request.npages > 1):
            # Translate the whole request at once: load every entry the
            # request still needs from this translation page.
            stop = min(request.end_lpn - 1, last_in_page)
            for candidate in range(lpn + 1, stop + 1):
                plan.append(candidate)
                planned.add(candidate)
        if self.techniques.selective_prefetch and self.selective_active:
            # Length = number of cached predecessors consecutive to the
            # demanded entry within the same translation page.
            node = self.by_vtpn.get(vtpn)
            length = 0
            if node is not None:
                probe = lpn - 1
                first_in_page = self.geometry.first_lpn(vtpn)
                while probe >= first_in_page and probe in node.by_lpn:
                    length += 1
                    probe -= 1
            for candidate in range(lpn + 1, min(lpn + length,
                                                last_in_page) + 1):
                if candidate not in planned:
                    plan.append(candidate)
                    planned.add(candidate)
        return plan

    def _prefetch(self, lpns: Iterable[int], result: AccessResult,
                  protect: Optional[EntryNode] = None) -> None:
        """Insert prefetched entries under the §4.5 replacement rule.

        Evictions on behalf of prefetched entries are confined to the
        single TP node that was coldest when prefetching began; when it
        runs out of entries the remaining prefetch length is dropped.
        The just-demanded entry (``protect``) is never a victim.
        """
        allowed_victim: Optional[TPNode] = None
        restricted = False
        if self.sanitizer is not None:
            self.sanitizer.note_prefetch_begin()
        for lpn in lpns:
            vtpn = self.geometry.vtpn_of(lpn)
            node = self.by_vtpn.get(vtpn)
            if node is not None and lpn in node.by_lpn:
                continue  # already cached; nothing to load
            need = self.entry_bytes + (self.node_bytes if node is None
                                       else 0)
            if not self.budget.fits(need):
                if not restricted:
                    allowed_victim = self._coldest_node()
                    restricted = True
                if not self._make_room(need, result,
                                       only_node=allowed_victim,
                                       protect=protect):
                    break  # §4.5: reduce the prefetching length
            inserted = self._insert_entry(lpn, self.flash_table[lpn],
                                          prefetched=True, result=result,
                                          make_room=False)
            if inserted is None:
                break
            self.metrics.prefetched_entries += 1
        if self.sanitizer is not None:
            self.sanitizer.note_prefetch_end()

    def _coldest_node(self) -> Optional[TPNode]:
        return self.page_list.lru

    # ==================================================================
    # Insertion and replacement (§4.4)
    # ==================================================================
    def _insert_entry(self, lpn: int, ppn: int, prefetched: bool,
                      result: AccessResult,
                      make_room: bool = True) -> Optional[EntryNode]:
        """Create an entry node (and TP node if needed) in the cache."""
        vtpn = self.geometry.vtpn_of(lpn)
        node = self.by_vtpn.get(vtpn)
        need = self.entry_bytes + (self.node_bytes if node is None else 0)
        if not self.budget.fits(need):
            if not make_room:
                return None
            if not self._make_room(need, result):
                return None
        # The node may have been evicted while making room (it can be the
        # coldest); re-check and re-price.
        node = self.by_vtpn.get(vtpn)
        need = self.entry_bytes + (self.node_bytes if node is None else 0)
        if not self.budget.fits(need):  # pragma: no cover - defensive
            return None
        if node is None:
            node = TPNode(vtpn)
            self.by_vtpn[vtpn] = node
            # A new node carries the newest (hottest) entry, so it starts
            # at the hot end; _reposition then settles it exactly.
            self.page_list.push_mru(node)
            self.budget.charge(self.node_bytes)
            self._bump_counter(+1)
        self._hot_seq += 1
        entry = EntryNode(lpn, ppn, self._hot_seq, prefetched=prefetched)
        node.add(entry)
        self.budget.charge(self.entry_bytes)
        self._reposition(node)
        return entry

    def _make_room(self, need: int, result: AccessResult,
                   only_node: Optional[TPNode] = None,
                   protect: Optional[EntryNode] = None) -> bool:
        """Evict entries until ``need`` bytes fit; True on success.

        ``only_node`` confines evictions to one TP node (§4.5 rule 2 for
        prefetching); demanded loads pass None and may drain any number
        of nodes, coldest first.  ``protect`` is never chosen as victim.
        """
        while not self.budget.fits(need):
            victim_node = (only_node if only_node is not None
                           else self.page_list.lru)
            if victim_node is None or not len(victim_node):
                return False
            if not self._evict_one(victim_node, result, protect=protect):
                return False
            if only_node is not None and not only_node.linked:
                # the allowed node was fully drained and removed
                if not self.budget.fits(need):
                    return False
        return True

    def _evict_one(self, node: TPNode, result: AccessResult,
                   protect: Optional[EntryNode] = None) -> bool:
        """Evict one entry from ``node`` per the §4.4 replacement policy.

        Returns False when nothing in the node is evictable (only the
        protected entry remains).
        """
        victim = self._choose_victim(node, protect=protect)
        if victim is None:
            return False
        if self.sanitizer is not None:
            self.sanitizer.note_eviction(self, node, victim, protect)
        self.metrics.replacements += 1
        if victim.dirty:
            self.metrics.dirty_replacements += 1
            self._writeback(node, victim, result)
        self._drop_entry(node, victim)
        return True

    def _choose_victim(self, node: TPNode,
                       protect: Optional[EntryNode] = None
                       ) -> Optional[EntryNode]:
        """Clean-first (if enabled): LRU clean entry, else LRU entry."""
        if self.techniques.clean_first and node.dirty_count < len(node):
            for entry in node.entries.iter_lru():
                if not entry.dirty and entry is not protect:
                    return entry
        for entry in node.entries.iter_lru():
            if entry is not protect:
                return entry
        return None

    def _writeback(self, node: TPNode, victim: EntryNode,
                   result: AccessResult) -> None:
        """Write back a dirty victim; with 'b', its whole TP node's dirty
        set rides along in the same translation-page update."""
        updates: Dict[int, int] = {victim.lpn: victim.ppn}
        if self.techniques.batch_update:
            batched = 0
            for entry in node.dirty_entries():
                if entry is victim:
                    continue
                updates[entry.lpn] = entry.ppn
                node.set_dirty(entry, False)
                batched += 1
            self.metrics.batch_cleaned_entries += batched
        node.set_dirty(victim, False)
        self.read_translation_page(node.vtpn, "writeback", result)
        self.write_translation_page(node.vtpn, updates, "writeback", result)
        if self.sanitizer is not None:
            self.sanitizer.note_writeback(self, node, victim)

    def _drop_entry(self, node: TPNode, entry: EntryNode) -> None:
        node.drop(entry)
        self.budget.release(self.entry_bytes)
        if not len(node):
            self.page_list.remove(node)
            del self.by_vtpn[node.vtpn]
            self.budget.release(self.node_bytes)
            self._bump_counter(-1)
        # NOTE: no repositioning on eviction.  Dropping a cold entry
        # raises the node's mean hotness; promoting it here would rotate
        # victims across every node so no node ever fully drains — and
        # the §4.3 TP-node counter would never move.  The node keeps its
        # cold slot until one of its entries is actually accessed.

    # ==================================================================
    # Selective-prefetch counter (§4.3)
    # ==================================================================
    def _bump_counter(self, delta: int) -> None:
        if not self.techniques.selective_prefetch:
            return
        self.node_counter += delta
        threshold = self.techniques.selective_threshold
        if self.node_counter <= -threshold:
            self.selective_active = True
            self.node_counter = 0
        elif self.node_counter >= threshold:
            self.selective_active = False
            self.node_counter = 0

    # ==================================================================
    # Introspection
    # ==================================================================
    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        return [(len(node), node.dirty_count)
                for node in self.by_vtpn.values()]

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        grouped: Dict[int, Dict[int, int]] = {}
        for vtpn, node in self.by_vtpn.items():
            if node.dirty_count:
                grouped[vtpn] = {e.lpn: e.ppn for e in node.dirty_entries()}
        return grouped

    def _mark_all_clean(self) -> None:
        for node in self.by_vtpn.values():
            for entry in node.dirty_entries():
                node.set_dirty(entry, False)

    @property
    def cached_entry_count(self) -> int:
        """Mapping entries currently cached."""
        return sum(len(node) for node in self.by_vtpn.values())

    @property
    def cached_node_count(self) -> int:
        """TP nodes currently cached."""
        return len(self.by_vtpn)

    def assert_invariants(self) -> None:
        """Check structural invariants; used by property-based tests.

        Delegates to the shared :mod:`repro.analysis.checkers` rules
        (SAN002 structure, SAN003 hotness, SAN004 budget) so the tests
        and FTLSan enforce the same definitions.  The page list is
        hotness-ordered at insertion/access time but evictions
        deliberately do not re-sort (see :meth:`_drop_entry`), so
        ordering is not globally asserted here.
        """
        from ..analysis.checkers import (check_budget, check_hotness,
                                         check_two_level_lru)

        def fail(code: str, message: str) -> None:
            raise SanitizerError(code, message)

        check_two_level_lru(self, fail)
        check_hotness(self, fail)
        check_budget(self, fail)
