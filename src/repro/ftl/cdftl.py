"""CDFTL: two-level caching with a CMT and a cached-translation-page tier.

Re-implementation of Qin et al. (RTAS'11) as described in the paper's
§2.2: the first-level CMT holds a small number of active entries; the
second-level CTP selectively caches a few whole (uncompressed)
translation pages and serves as the CMT's kick-out buffer.  Dirty entries
leave the CMT only when their page is present in the CTP (they fold into
it); writebacks to flash happen only at CTP-page granularity, so cold
dirty entries accumulate in the CMT.

The paper measured CDFTL to be dominated by S-FTL and excluded it from
the headline figures; it is implemented here for completeness and for the
extended comparisons in the benches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cache import LRUDict
from ..config import SimulationConfig
from ..errors import CacheCapacityError, SimInvariantError
from ..gc import VictimPolicy, WearLeveler
from ..types import AccessResult, Op, Request
from .base import BaseFTL

#: indexes into a CMT cell
_PPN, _DIRTY = 0, 1
#: fraction of the cache budget given to the CMT (rest feeds the CTP)
CMT_FRACTION = 0.2
#: fixed RAM cost of one CTP page (uncompressed content + header)
CTP_PAGE_OVERHEAD = 8


class CTPPage:
    """A second-tier cached translation page with dirty overrides."""

    __slots__ = ("vtpn", "overrides")

    def __init__(self, vtpn: int) -> None:
        self.vtpn = vtpn
        self.overrides: Dict[int, int] = {}

    @property
    def dirty(self) -> bool:
        """True if the cached page holds un-flushed updates."""
        return bool(self.overrides)


class CDFTL(BaseFTL):
    """Two-tier CMT + CTP demand-based page-level FTL."""

    name = "cdftl"

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True) -> None:
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)
        cache_cfg = config.resolved_cache()
        total = cache_cfg.entry_budget_bytes(self.gtd.size_bytes)
        cmt_bytes = int(total * CMT_FRACTION)
        self.cmt_capacity = max(1, cmt_bytes // cache_cfg.dftl_entry_bytes)
        ctp_bytes = total - cmt_bytes
        page_cost = self.ssd.page_size + CTP_PAGE_OVERHEAD
        self.ctp_capacity = ctp_bytes // page_cost
        if self.ctp_capacity < 1:
            raise CacheCapacityError(
                f"CTP area of {ctp_bytes}B cannot hold one translation "
                f"page ({page_cost}B)")
        self.cmt: LRUDict[int, List[int]] = LRUDict()  # LPN -> [ppn, dirty]
        self.ctp: LRUDict[int, CTPPage] = LRUDict()  # VTPN -> CTPPage

    # ------------------------------------------------------------------
    # Mapping-cache policy
    # ------------------------------------------------------------------
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        self.metrics.lookups += 1
        cell = self.cmt.get(lpn)
        if cell is not None:
            self.metrics.hits += 1
            return cell[_PPN]
        vtpn = self.geometry.vtpn_of(lpn)
        page = self.ctp.get(vtpn)  # touch CTP recency
        if page is not None:
            # second-tier hit: no flash access, promote entry to the CMT
            self.metrics.hits += 1
            ppn = page.overrides.get(lpn, self.flash_table[lpn])
            self._install_cmt(lpn, ppn, result)
            return ppn
        page = self._load_ctp(vtpn, result)
        ppn = page.overrides.get(lpn, self.flash_table[lpn])
        self._install_cmt(lpn, ppn, result)
        return ppn

    def _load_ctp(self, vtpn: int, result: AccessResult) -> CTPPage:
        self.read_translation_page(vtpn, "load", result)
        while len(self.ctp) >= self.ctp_capacity:
            popped = self.ctp.pop_lru()
            if popped is None:  # pragma: no cover - loop guard
                raise SimInvariantError("CTP emptied during eviction")
            _, victim = popped
            self.metrics.replacements += 1
            if victim.dirty:
                self.metrics.dirty_replacements += 1
                # whole page cached: single full-page program
                self.write_translation_page(
                    victim.vtpn, dict(victim.overrides), "writeback",
                    result)
        page = CTPPage(vtpn)
        self.ctp.put(vtpn, page)
        return page

    def _install_cmt(self, lpn: int, ppn: int,
                     result: AccessResult) -> None:
        while len(self.cmt) >= self.cmt_capacity:
            if not self._evict_cmt_entry(result):
                break  # every entry is pinned dirty; over-fill one slot
        self.cmt.put(lpn, [ppn, False])

    def _evict_cmt_entry(self, result: AccessResult) -> bool:
        """Evict one CMT entry under CDFTL's rule.

        Preferred victim (scanning from the LRU end): a clean entry, or a
        dirty entry whose page is in the CTP (folds into it, no flash
        traffic).  If all entries are dirty with uncached pages, fall
        back to an explicit read-modify-write of the LRU entry so the
        cache cannot deadlock.
        """
        fallback_lpn: Optional[int] = None
        for lpn in list(self.cmt.keys_lru_to_mru()):
            cell = self.cmt.get(lpn, touch=False)
            if cell is None:  # pragma: no cover - keys are live
                continue
            if not cell[_DIRTY]:
                self.cmt.remove(lpn)
                self.metrics.replacements += 1
                return True
            vtpn = self.geometry.vtpn_of(lpn)
            page = self.ctp.get(vtpn, touch=False)
            if page is not None:
                page.overrides[lpn] = cell[_PPN]
                self.cmt.remove(lpn)
                self.metrics.replacements += 1
                return True
            if fallback_lpn is None:
                fallback_lpn = lpn
        if fallback_lpn is None:
            return False
        cell = self.cmt.get(fallback_lpn, touch=False)
        if cell is None:  # pragma: no cover - chosen from live keys
            raise SimInvariantError("CMT fallback victim vanished")
        vtpn = self.geometry.vtpn_of(fallback_lpn)
        self.metrics.replacements += 1
        self.metrics.dirty_replacements += 1
        self.read_translation_page(vtpn, "writeback", result)
        self.write_translation_page(vtpn, {fallback_lpn: cell[_PPN]},
                                    "writeback", result)
        self.cmt.remove(fallback_lpn)
        return True

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        cell = self.cmt.get(lpn, touch=True)
        if cell is None:  # pragma: no cover - translate installs
            self._install_cmt(lpn, ppn, result)
            cell = self.cmt.get(lpn, touch=False)
            if cell is None:
                raise SimInvariantError(
                    f"CMT lost LPN {lpn} right after install")
        cell[_PPN] = ppn
        cell[_DIRTY] = True

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        cell = self.cmt.get(lpn, touch=False)
        if cell is not None:
            cell[_PPN] = ppn
            cell[_DIRTY] = True
            return True
        page = self.ctp.get(self.geometry.vtpn_of(lpn), touch=False)
        if page is not None:
            page.overrides[lpn] = ppn
            return True
        return False

    def cache_peek(self, lpn: int) -> Optional[int]:
        """Cached PPN for ``lpn`` without touching recency."""
        cell = self.cmt.get(lpn, touch=False)
        if cell is not None:
            return cell[_PPN]
        page = self.ctp.get(self.geometry.vtpn_of(lpn), touch=False)
        if page is not None and lpn in page.overrides:
            return page.overrides[lpn]
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        per_page: Dict[int, List[int]] = {}
        for lpn, cell in self.cmt.items_mru_to_lru():
            bucket = per_page.setdefault(self.geometry.vtpn_of(lpn),
                                         [0, 0])
            bucket[0] += 1
            if cell[_DIRTY]:
                bucket[1] += 1
        for vtpn, page in self.ctp.items_mru_to_lru():
            bucket = per_page.setdefault(vtpn, [0, 0])
            bucket[0] = self.geometry.entries_in(vtpn)
            bucket[1] += len(page.overrides)
        return [(entries, dirty) for entries, dirty in per_page.values()]

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        grouped: Dict[int, Dict[int, int]] = {}
        for vtpn, page in self.ctp.items_mru_to_lru():
            if page.overrides:
                grouped.setdefault(vtpn, {}).update(page.overrides)
        for lpn, cell in self.cmt.items_mru_to_lru():
            if cell[_DIRTY]:
                vtpn = self.geometry.vtpn_of(lpn)
                grouped.setdefault(vtpn, {})[lpn] = cell[_PPN]
        return grouped

    def _mark_all_clean(self) -> None:
        for _lpn, cell in self.cmt.items_mru_to_lru():
            cell[_DIRTY] = False
        for _vtpn, page in self.ctp.items_mru_to_lru():
            page.overrides.clear()
