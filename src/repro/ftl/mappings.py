"""Translation-page geometry: how LPNs pack into translation pages.

Mapping entries are stored in ascending LPN order inside translation
pages (§4.1), so an entry's location is pure arithmetic: the VTPN is the
quotient of the LPN by the entries-per-page, and the in-page offset the
remainder.  Centralising this arithmetic keeps every FTL agreeing on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class TranslationGeometry:
    """Geometry shared by the mapping table and every cache over it."""

    logical_pages: int
    entries_per_page: int

    def __post_init__(self) -> None:
        if self.logical_pages <= 0:
            raise ValueError("logical_pages must be positive")
        if self.entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")

    @property
    def translation_pages(self) -> int:
        """Translation pages covering the logical space."""
        return max(1, math.ceil(self.logical_pages / self.entries_per_page))

    def vtpn_of(self, lpn: int) -> int:
        """Translation page holding the entry for ``lpn``."""
        # bounds check inlined (these run several times per served
        # page); _check only builds the error on the failing path
        if not 0 <= lpn < self.logical_pages:
            self._check(lpn)
        return lpn // self.entries_per_page

    def offset_of(self, lpn: int) -> int:
        """In-page slot of the entry for ``lpn``."""
        if not 0 <= lpn < self.logical_pages:
            self._check(lpn)
        return lpn % self.entries_per_page

    def locate(self, lpn: int) -> Tuple[int, int]:
        """(vtpn, offset) of the entry for ``lpn``."""
        if not 0 <= lpn < self.logical_pages:
            self._check(lpn)
        return divmod(lpn, self.entries_per_page)

    def first_lpn(self, vtpn: int) -> int:
        """Smallest LPN stored in translation page ``vtpn``."""
        return vtpn * self.entries_per_page

    def last_lpn(self, vtpn: int) -> int:
        """Largest LPN stored in translation page ``vtpn``."""
        return min(self.logical_pages,
                   (vtpn + 1) * self.entries_per_page) - 1

    def lpns_of(self, vtpn: int) -> Iterator[int]:
        """All LPNs whose entries live in translation page ``vtpn``."""
        return iter(range(self.first_lpn(vtpn), self.last_lpn(vtpn) + 1))

    def entries_in(self, vtpn: int) -> int:
        """Number of live entries in ``vtpn`` (last page may be short)."""
        return self.last_lpn(vtpn) - self.first_lpn(vtpn) + 1

    def same_page(self, lpn_a: int, lpn_b: int) -> bool:
        """True if both LPNs share a translation page."""
        return self.vtpn_of(lpn_a) == self.vtpn_of(lpn_b)

    def _check(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"LPN {lpn} outside logical space "
                f"[0, {self.logical_pages})")
