"""FTL factory: build any implemented FTL by name.

Experiments, benches and examples refer to FTLs by the short names the
paper uses in its figures; this keeps the mapping in one place.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..gc import VictimPolicy, WearLeveler
from .base import BaseFTL
from .block_ftl import BlockFTL
from .cdftl import CDFTL
from .dftl import DFTL
from .hybrid import HybridFTL
from .optimal import OptimalFTL
from .sftl import SFTL
from .tpftl import TPFTL
from .zftl import ZFTL

_REGISTRY: Dict[str, Callable[..., BaseFTL]] = {
    OptimalFTL.name: OptimalFTL,
    DFTL.name: DFTL,
    TPFTL.name: TPFTL,
    SFTL.name: SFTL,
    CDFTL.name: CDFTL,
    BlockFTL.name: BlockFTL,
    HybridFTL.name: HybridFTL,
    ZFTL.name: ZFTL,
}

#: the names accepted by :func:`make_ftl`
FTL_NAMES = tuple(sorted(_REGISTRY))


def make_ftl(name: str, config: SimulationConfig,
             victim_policy: Optional[VictimPolicy] = None,
             wear_leveler: Optional[WearLeveler] = None,
             prefill: bool = True) -> BaseFTL:
    """Instantiate the FTL called ``name`` over a fresh flash array.

    Valid names: ``optimal``, ``dftl``, ``tpftl``, ``sftl``, ``cdftl``,
    ``block``, ``hybrid``, ``zftl``.  TPFTL's technique switches come from
    ``config.tpftl``.
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown FTL {name!r}; choose from {', '.join(FTL_NAMES)}"
        ) from None
    return cls(config, victim_policy=victim_policy,
               wear_leveler=wear_leveler, prefill=prefill)
