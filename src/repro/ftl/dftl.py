"""DFTL: demand-based selective caching of page-level mappings.

Re-implementation of Gupta et al. (ASPLOS'09) as modelled by the paper's
§3: a Cached Mapping Table (CMT) of individual 8-byte entries managed by
LRU.  A cache miss reads the entry's translation page; when the cache is
full, the LRU entry is evicted and — if dirty — written back with a
read-modify-write of its translation page, *one entry at a time* (the
inefficiency Fig 1(b) documents).  During GC, DFTL batches the mapping
updates of migrated data pages that share a translation page (its original
"batch update" optimisation), which :class:`~repro.ftl.base.BaseFTL`
implements for everyone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cache import LRUDict
from ..config import SimulationConfig
from ..errors import CacheCapacityError, SimInvariantError
from ..gc import VictimPolicy, WearLeveler
from ..types import AccessResult, Op, Request
from .base import BaseFTL

#: index of the PPN / dirty flag in a CMT value cell
_PPN, _DIRTY = 0, 1


class DFTL(BaseFTL):
    """Baseline demand-based page-level FTL with an entry-grained CMT."""

    name = "dftl"

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True) -> None:
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)
        cache_cfg = config.resolved_cache()
        entry_bytes = cache_cfg.dftl_entry_bytes
        budget = cache_cfg.entry_budget_bytes(self.gtd.size_bytes)
        self.capacity_entries = budget // entry_bytes
        if self.capacity_entries < 1:
            raise CacheCapacityError(
                f"cache budget leaves room for "
                f"{self.capacity_entries} CMT entries")
        #: CMT: LPN -> [ppn, dirty]
        self.cmt: LRUDict[int, List[int]] = LRUDict()

    # ------------------------------------------------------------------
    # Mapping-cache policy
    # ------------------------------------------------------------------
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        self.metrics.lookups += 1
        cell = self.cmt.get(lpn)
        if cell is not None:
            self.metrics.hits += 1
            return cell[_PPN]
        # Miss: make room, then demand-load the entry from flash.
        self._evict_until(self.capacity_entries - 1, result)
        self.read_translation_page(self.geometry.vtpn_of(lpn), "load",
                                   result)
        ppn = self.flash_table[lpn]
        self.cmt.put(lpn, [ppn, False])
        return ppn

    def _evict_until(self, max_entries: int, result: AccessResult) -> None:
        """Evict LRU entries until the CMT holds at most ``max_entries``."""
        while len(self.cmt) > max_entries:
            popped = self.cmt.pop_lru()
            if popped is None:  # pragma: no cover - loop guard
                raise SimInvariantError("CMT emptied during eviction")
            victim_lpn, cell = popped
            self.metrics.replacements += 1
            if cell[_DIRTY]:
                self.metrics.dirty_replacements += 1
                vtpn = self.geometry.vtpn_of(victim_lpn)
                # Partial overwrite: read the page, merge one entry, write.
                self.read_translation_page(vtpn, "writeback", result)
                self.write_translation_page(
                    vtpn, {victim_lpn: cell[_PPN]}, "writeback", result)

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        cell = self.cmt.get(lpn, touch=True)
        if cell is None:  # pragma: no cover - translate always installs
            self.cmt.put(lpn, [ppn, True])
            return
        cell[_PPN] = ppn
        cell[_DIRTY] = True

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        cell = self.cmt.get(lpn, touch=False)
        if cell is None:
            return False
        cell[_PPN] = ppn
        cell[_DIRTY] = True
        return True

    def cache_peek(self, lpn: int) -> Optional[int]:
        """Cached PPN for ``lpn`` without touching recency."""
        cell = self.cmt.get(lpn, touch=False)
        return cell[_PPN] if cell is not None else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        per_page: Dict[int, List[int]] = {}
        for lpn, cell in self.cmt.items_mru_to_lru():
            vtpn = self.geometry.vtpn_of(lpn)
            bucket = per_page.setdefault(vtpn, [0, 0])
            bucket[0] += 1
            if cell[_DIRTY]:
                bucket[1] += 1
        return [(entries, dirty) for entries, dirty in per_page.values()]

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        grouped: Dict[int, Dict[int, int]] = {}
        for lpn, cell in self.cmt.items_mru_to_lru():
            if cell[_DIRTY]:
                vtpn = self.geometry.vtpn_of(lpn)
                grouped.setdefault(vtpn, {})[lpn] = cell[_PPN]
        return grouped

    def _mark_all_clean(self) -> None:
        for _lpn, cell in self.cmt.items_mru_to_lru():
            cell[_DIRTY] = False

    @property
    def cached_entry_count(self) -> int:
        """Mapping entries currently cached."""
        return len(self.cmt)
