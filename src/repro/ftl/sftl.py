"""S-FTL: page-granularity caching with sequentiality compression.

Re-implementation of Jiang et al. (MSST'11) as the paper describes it in
§2.2: the caching object is an *entire translation page*, shrunk in the
cache according to the sequentiality of the PPNs it holds (consecutive
LPNs mapped to consecutive PPNs collapse into one run), plus a small
*dirty buffer* that postpones the writeback of sparsely dispersed dirty
entries when their page is evicted.

Replacement is page-granular: an evicted dirty page is written back with
a single full-page program (no read-modify-write, since the whole content
is cached) — the Eq. 1 footnote case.  This makes S-FTL shine on
sequential workloads (tiny compressed pages, huge effective capacity) and
suffer on random ones (each page compresses poorly, so only a couple fit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cache import ByteBudget, LRUDict
from ..config import SimulationConfig
from ..errors import CacheCapacityError
from ..gc import VictimPolicy, WearLeveler
from ..types import AccessResult, Op, Request, UNMAPPED
from .base import BaseFTL

#: bytes per cached run: (start offset, start PPN, length)
RUN_BYTES = 8
#: fixed bytes per cached page object (VTPN + list header)
PAGE_HEADER_BYTES = 8
#: bytes per entry parked in the dirty buffer (LPN + PPN)
BUFFER_ENTRY_BYTES = 8
#: dirty pages with at most this many dirty entries are "sparse" and may
#: park their entries in the dirty buffer instead of being written back
SPARSE_DIRTY_LIMIT = 4


class CachedPage:
    """One cached translation page: overrides plus a compressed-size tag."""

    __slots__ = ("vtpn", "overrides", "charged_bytes", "runs",
                 "_last_lpn", "_last_ppn")

    def __init__(self, vtpn: int, runs: int, charged_bytes: int) -> None:
        self.vtpn = vtpn
        #: dirty entries not yet on flash: LPN -> PPN
        self.overrides: Dict[int, int] = {}
        self.charged_bytes = charged_bytes
        self.runs = runs
        self._last_lpn = -2
        self._last_ppn = -2

    @property
    def dirty(self) -> bool:
        """True if the cached page holds un-flushed updates."""
        return bool(self.overrides)

    def note_update(self, lpn: int, ppn: int, max_runs: int) -> None:
        """Track run growth on an in-place update.

        A write that extends the previous update sequentially (next LPN,
        next PPN) stays within the same new run; anything else is assumed
        to split/extend runs pessimistically by one.
        """
        if not (lpn == self._last_lpn + 1 and ppn == self._last_ppn + 1):
            self.runs = min(self.runs + 1, max_runs)
        self._last_lpn = lpn
        self._last_ppn = ppn


class SFTL(BaseFTL):
    """Page-granularity compressed mapping cache with a dirty buffer."""

    name = "sftl"

    def __init__(self, config: SimulationConfig,
                 victim_policy: Optional[VictimPolicy] = None,
                 wear_leveler: Optional[WearLeveler] = None,
                 prefill: bool = True) -> None:
        super().__init__(config, victim_policy=victim_policy,
                         wear_leveler=wear_leveler, prefill=prefill)
        cache_cfg = config.resolved_cache()
        total = cache_cfg.entry_budget_bytes(self.gtd.size_bytes)
        buffer_bytes = int(total * cache_cfg.sftl_dirty_buffer_fraction)
        page_bytes = total - buffer_bytes
        min_page = PAGE_HEADER_BYTES + RUN_BYTES
        if page_bytes < min_page:
            raise CacheCapacityError(
                f"S-FTL page area of {page_bytes}B cannot hold one "
                f"compressed page ({min_page}B)")
        self.page_budget = ByteBudget(page_bytes)
        self.buffer_budget = (ByteBudget(buffer_bytes)
                              if buffer_bytes >= BUFFER_ENTRY_BYTES
                              else None)
        #: page cache: VTPN -> CachedPage, LRU-ordered
        self.pages: LRUDict[int, CachedPage] = LRUDict()
        #: dirty buffer: VTPN -> {LPN -> PPN}
        self.buffer: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Compressed size model
    # ------------------------------------------------------------------
    def _count_runs(self, vtpn: int) -> int:
        """Sequential runs in the page's current content."""
        runs = 0
        prev_ppn: Optional[int] = None
        overrides = self.buffer.get(vtpn, {})
        for lpn in self.geometry.lpns_of(vtpn):
            ppn = overrides.get(lpn, self.flash_table[lpn])
            if ppn == UNMAPPED:
                ppn = -10  # never-sequential sentinel
            if prev_ppn is None or ppn != prev_ppn + 1:
                runs += 1
            prev_ppn = ppn
        return max(1, runs)

    def _size_for_runs(self, runs: int) -> int:
        # a cached page never costs more than its uncompressed form, nor
        # more than the whole page area (so one incompressible page can
        # still be cached when the budget is very small)
        raw = PAGE_HEADER_BYTES + runs * RUN_BYTES
        cap = PAGE_HEADER_BYTES + self.ssd.page_size
        return min(raw, cap, self.page_budget.capacity)

    # ------------------------------------------------------------------
    # Mapping-cache policy
    # ------------------------------------------------------------------
    def _translate(self, lpn: int, op: Op, request: Optional[Request],
                   result: AccessResult) -> int:
        self.metrics.lookups += 1
        vtpn = self.geometry.vtpn_of(lpn)
        page = self.pages.get(vtpn)  # touches recency
        if page is not None:
            self.metrics.hits += 1
            return page.overrides.get(lpn, self.flash_table[lpn])
        buffered = self.buffer.get(vtpn)
        if buffered is not None and lpn in buffered:
            # the individual entry is resident in the dirty buffer
            self.metrics.hits += 1
            return buffered[lpn]
        page = self._load_page(vtpn, result)
        return page.overrides.get(lpn, self.flash_table[lpn])

    def _load_page(self, vtpn: int, result: AccessResult) -> CachedPage:
        self.read_translation_page(vtpn, "load", result)
        runs = self._count_runs(vtpn)
        size = self._size_for_runs(runs)
        if not self._make_room(size, result, exclude=vtpn):
            raise CacheCapacityError(  # pragma: no cover - size is capped
                "S-FTL page area cannot hold the loaded page")
        page = CachedPage(vtpn, runs, size)
        # absorb buffered dirty entries of this page
        parked = self.buffer.pop(vtpn, None)
        if parked:
            page.overrides.update(parked)
            if self.buffer_budget is not None:
                self.buffer_budget.release(
                    len(parked) * BUFFER_ENTRY_BYTES)
        self.page_budget.charge(size)
        self.pages.put(vtpn, page)
        return page

    def _make_room(self, need: int, result: AccessResult,
                   exclude: Optional[int] = None) -> bool:
        """Evict pages (except ``exclude``) until ``need`` bytes fit.

        Returns False when only the excluded page remains and the space
        still does not suffice — the caller then evicts that page itself.
        """
        self.page_budget.require(need)
        while not self.page_budget.fits(need):
            victim_vtpn = None
            for key in self.pages.keys_lru_to_mru():
                if key != exclude:
                    victim_vtpn = key
                    break
            if victim_vtpn is None:
                return False
            self._evict_page(victim_vtpn, result)
        return True

    def _evict_page(self, vtpn: int, result: AccessResult) -> None:
        page: CachedPage = self.pages.remove(vtpn)
        self.page_budget.release(page.charged_bytes)
        self.metrics.replacements += 1
        if not page.dirty:
            return
        # Sparsely dirty pages park their entries in the dirty buffer to
        # postpone the writeback (the S-FTL dirty-buffer optimisation).
        if (self.buffer_budget is not None
                and len(page.overrides) <= SPARSE_DIRTY_LIMIT):
            need = len(page.overrides) * BUFFER_ENTRY_BYTES
            if not self.buffer_budget.fits(need):
                self._flush_buffer_group(result)
            if self.buffer_budget.fits(need):
                self.buffer.setdefault(vtpn, {}).update(page.overrides)
                self.buffer_budget.charge(need)
                return
        self.metrics.dirty_replacements += 1
        # whole page is cached: a single full-page program suffices
        self.write_translation_page(vtpn, dict(page.overrides),
                                    "writeback", result)

    def _flush_buffer_group(self, result: AccessResult) -> None:
        """Write back the buffer's largest per-page group of entries."""
        if not self.buffer:
            return
        vtpn = max(self.buffer, key=lambda v: len(self.buffer[v]))
        entries = self.buffer.pop(vtpn)
        if self.buffer_budget is not None:
            self.buffer_budget.release(len(entries) * BUFFER_ENTRY_BYTES)
        self.metrics.dirty_replacements += 1
        self.metrics.replacements += 1
        # partial update: read-modify-write
        self.read_translation_page(vtpn, "writeback", result)
        self.write_translation_page(vtpn, entries, "writeback", result)

    def _record_mapping(self, lpn: int, ppn: int,
                        result: AccessResult) -> None:
        vtpn = self.geometry.vtpn_of(lpn)
        page = self.pages.get(vtpn, touch=True)
        if page is not None:
            self._apply_update(page, lpn, ppn, result)
            return
        buffered = self.buffer.get(vtpn)
        if buffered is not None and lpn in buffered:
            buffered[lpn] = ppn
            return
        # pragma: no cover — translate always installs one of the above
        page = self._load_page(vtpn, result)
        self._apply_update(page, lpn, ppn, result)

    def _apply_update(self, page: CachedPage, lpn: int, ppn: int,
                      result: AccessResult) -> None:
        page.overrides[lpn] = ppn
        page.note_update(lpn, ppn, self.geometry.entries_in(page.vtpn))
        new_size = self._size_for_runs(page.runs)
        if new_size > page.charged_bytes:
            grow = new_size - page.charged_bytes
            if (self.page_budget.fits(grow)
                    or self._make_room(grow, result, exclude=page.vtpn)):
                self.page_budget.charge(grow)
                page.charged_bytes = new_size
            else:
                # the growing page alone no longer fits: write it back
                # and drop it (the next access reloads it compact)
                self._evict_page(page.vtpn, result)

    def _cache_update_if_present(self, lpn: int, ppn: int) -> bool:
        vtpn = self.geometry.vtpn_of(lpn)
        page = self.pages.get(vtpn, touch=False)
        if page is not None:
            # GC updates bypass the size heuristic; sizes refresh on the
            # next load.  Content correctness is unaffected.
            page.overrides[lpn] = ppn
            return True
        buffered = self.buffer.get(vtpn)
        if buffered is not None and lpn in buffered:
            buffered[lpn] = ppn
            return True
        return False

    def _gc_flush_extras(self, vtpn: int) -> Dict[int, int]:
        """Fold buffered entries of ``vtpn`` into a forced GC update."""
        entries = self.buffer.pop(vtpn, None)
        if not entries:
            return {}
        if self.buffer_budget is not None:
            self.buffer_budget.release(len(entries) * BUFFER_ENTRY_BYTES)
        return entries

    def cache_peek(self, lpn: int) -> Optional[int]:
        """Cached PPN for ``lpn`` without touching recency."""
        vtpn = self.geometry.vtpn_of(lpn)
        page = self.pages.get(vtpn, touch=False)
        if page is not None and lpn in page.overrides:
            return page.overrides[lpn]
        buffered = self.buffer.get(vtpn)
        if buffered is not None and lpn in buffered:
            return buffered[lpn]
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_snapshot(self) -> List[Tuple[int, int]]:
        """(entries, dirty) per cached translation page."""
        snapshot: List[Tuple[int, int]] = []
        for vtpn, page in self.pages.items_mru_to_lru():
            snapshot.append((self.geometry.entries_in(vtpn),
                             len(page.overrides)))
        for vtpn, entries in self.buffer.items():
            snapshot.append((len(entries), len(entries)))
        return snapshot

    def _dirty_entries_by_page(self) -> Dict[int, Dict[int, int]]:
        grouped: Dict[int, Dict[int, int]] = {}
        for vtpn, page in self.pages.items_mru_to_lru():
            if page.overrides:
                grouped[vtpn] = dict(page.overrides)
        for vtpn, entries in self.buffer.items():
            grouped.setdefault(vtpn, {}).update(entries)
        return grouped

    def _mark_all_clean(self) -> None:
        for _vtpn, page in self.pages.items_mru_to_lru():
            page.overrides.clear()
        if self.buffer_budget is not None:
            parked = sum(len(v) for v in self.buffer.values())
            self.buffer_budget.release(parked * BUFFER_ENTRY_BYTES)
        self.buffer.clear()
