"""Shared value types for the TPFTL reproduction.

These small types flow through every layer of the simulator, so they live
in one dependency-free module.  Addresses are plain ``int``s (logical page
number, physical page number, virtual/physical translation page number,
block number); the type aliases below only document intent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

# Type aliases used throughout the package (documentation only).
LPN = int  # logical page number
PPN = int  # physical page number
VTPN = int  # virtual translation-page number
PTPN = int  # physical translation-page number (a PPN holding mappings)
BlockId = int

#: Sentinel physical address meaning "not mapped yet".
UNMAPPED: int = -1


class Op(enum.Enum):
    """I/O type of a request or page access.

    TRIM (ATA discard / NVMe deallocate) is an extension beyond the
    paper: it unmaps pages so GC can reclaim them without migration.
    """

    READ = "read"
    WRITE = "write"
    TRIM = "trim"

    @property
    def is_write(self) -> bool:
        """True for write operations."""
        return self is Op.WRITE


class PageState(enum.Enum):
    """Lifecycle of a physical flash page.

    NAND pages move strictly FREE -> VALID -> INVALID and only an erase of
    the whole block returns them to FREE.  A page whose program failed is
    marked BAD; erases skip it and it never returns to FREE.
    """

    FREE = 0
    VALID = 1
    INVALID = 2
    BAD = 3


class PageKind(enum.Enum):
    """What a programmed physical page stores."""

    DATA = "data"
    TRANSLATION = "translation"


class BlockKind(enum.Enum):
    """Role a block is currently playing.

    Blocks are typed when allocated from the free list and return to FREE
    after an erase, mirroring how FlashSim partitions data and translation
    blocks dynamically.
    """

    FREE = "free"
    DATA = "data"
    TRANSLATION = "translation"
    #: permanently out of service (erase failure or bad-page wear-out);
    #: never allocated, never collected, skipped by recovery scans.
    RETIRED = "retired"


@dataclass(frozen=True)
class Request:
    """One host I/O request, 4KB-page aligned.

    ``arrival`` is in simulated microseconds from trace start.  ``lpn`` is
    the first logical page touched and ``npages`` the run length, so the
    request spans ``[lpn, lpn + npages)``.  ``tenant`` names the traffic
    stream the request belongs to (multi-tenant traces, see
    :mod:`repro.workloads.traffic`); ``None`` — the default for every
    single-stream trace — means the request is unattributed and the
    device keeps no per-tenant statistics for it.
    """

    arrival: float
    op: Op
    lpn: LPN
    npages: int
    #: tenant stream this request belongs to (None = unattributed)
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.npages <= 0:
            raise ValueError(f"npages must be positive, got {self.npages}")
        if self.lpn < 0:
            raise ValueError(f"lpn must be non-negative, got {self.lpn}")

    @property
    def is_write(self) -> bool:
        """True for write operations."""
        return self.op is Op.WRITE

    @property
    def end_lpn(self) -> LPN:
        """One past the last logical page touched."""
        return self.lpn + self.npages

    def pages(self) -> Iterator[LPN]:
        """Iterate over the logical pages this request touches, in order."""
        return iter(range(self.lpn, self.lpn + self.npages))


@dataclass
class AccessResult:
    """Cost breakdown of serving one page access (or whole request).

    All counts are numbers of *flash operations*; the device model turns
    them into time using the configured latencies.  Results are additive so
    per-page results can be merged into a per-request result.
    """

    data_reads: int = 0
    data_writes: int = 0
    translation_reads: int = 0
    translation_writes: int = 0
    erases: int = 0
    #: flash operations performed by GC (already included in the counts
    #: above); kept for reporting GC's share of the service time.
    gc_data_reads: int = 0
    gc_data_writes: int = 0
    gc_translation_reads: int = 0
    gc_translation_writes: int = 0

    def merge(self, other: "AccessResult") -> None:
        """Accumulate another result into this one, in place."""
        self.data_reads += other.data_reads
        self.data_writes += other.data_writes
        self.translation_reads += other.translation_reads
        self.translation_writes += other.translation_writes
        self.erases += other.erases
        self.gc_data_reads += other.gc_data_reads
        self.gc_data_writes += other.gc_data_writes
        self.gc_translation_reads += other.gc_translation_reads
        self.gc_translation_writes += other.gc_translation_writes

    @property
    def total_reads(self) -> int:
        """All page reads, across kinds."""
        return self.data_reads + self.translation_reads

    @property
    def total_writes(self) -> int:
        """All page programs, across kinds."""
        return self.data_writes + self.translation_writes

    def service_time(self, read_us: float, write_us: float,
                     erase_us: float) -> float:
        """Total flash time implied by this result, in microseconds."""
        return (self.total_reads * read_us
                + self.total_writes * write_us
                + self.erases * erase_us)


@dataclass
class RequestTiming:
    """Timing of one served request under the FIFO queueing model.

    ``tenant`` carries the request's stream identity (when the trace is
    multi-tenant) so response statistics can be attributed per tenant.
    """

    arrival: float
    start: float
    finish: float
    #: tenant stream the timed request belongs to (None = unattributed)
    tenant: Optional[str] = None

    @property
    def response_time(self) -> float:
        """Queueing delay plus service time, in microseconds."""
        return self.finish - self.arrival

    @property
    def queue_delay(self) -> float:
        """Time spent waiting before service started."""
        return self.start - self.arrival

    @property
    def service_time(self) -> float:
        """Wall time from first dispatch to completion."""
        return self.finish - self.start


@dataclass
class Trace:
    """An ordered sequence of requests plus its address-space size."""

    requests: List[Request] = field(default_factory=list)
    #: number of logical pages addressed by the trace's device
    logical_pages: int = 0
    name: str = ""

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    def max_lpn(self) -> Optional[LPN]:
        """Largest LPN touched, or None for an empty trace."""
        if not self.requests:
            return None
        return max(r.end_lpn - 1 for r in self.requests)
