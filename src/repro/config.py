"""Configuration objects for the simulated SSD and its mapping cache.

The defaults follow Table 3 of the paper (Agrawal et al. SSD parameters):
4KB pages, 256KB blocks (64 pages), 25us read / 200us write / 1.5ms erase,
15% over-provisioning.  The mapping-cache sizing rule follows §5.1: the
cache is as large as a block-level FTL's mapping table (4B per block) plus
the Global Translation Directory (4B per translation page), i.e. 1/128 of
the full page-level table for these geometries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .faults import FaultPlan

#: Bytes per mapping entry in a flat page-level table (4B LPN + 4B PPN).
FULL_ENTRY_BYTES = 8
#: Bytes per PPN stored inside a translation page (LPN implied by offset).
PPN_BYTES = 4
#: Bytes per cached entry in DFTL's CMT (LPN + PPN).
DFTL_ENTRY_BYTES = 8
#: Bytes per cached entry node in TPFTL (10-bit offset + PPN, rounded: 6B).
TPFTL_ENTRY_BYTES = 6
#: Bytes of cache overhead per TPFTL TP node (VTPN + bookkeeping).
TPFTL_NODE_BYTES = 8
#: Bytes per GTD slot (a PTPN).
GTD_SLOT_BYTES = 4
#: Bytes per slot of a block-level mapping table (used only to size caches).
BLOCK_TABLE_SLOT_BYTES = 4


@dataclass(frozen=True)
class SSDConfig:
    """Geometry, timing and provisioning of the simulated SSD.

    ``logical_pages`` is the exported (host-visible) capacity in pages.
    Physical capacity is derived from it: enough blocks for user data plus
    ``over_provision`` extra, plus blocks for the translation pages, plus a
    small reserve so GC always has scratch blocks.
    """

    logical_pages: int = 8192
    page_size: int = 4096
    pages_per_block: int = 64
    read_us: float = 25.0
    write_us: float = 200.0
    erase_us: float = 1500.0
    over_provision: float = 0.15
    #: GC starts when the free-block count drops to this many blocks.
    gc_threshold_blocks: int = 2
    #: extra always-free blocks reserved so GC can never deadlock.
    gc_reserve_blocks: int = 3
    #: at most this many victim blocks are collected per page access
    #: (amortised GC, as in FlashSim); the limit is ignored when the
    #: pool falls to the emergency reserve.  Keeps GC cost spread across
    #: requests instead of multi-millisecond bursts.
    gc_max_collections_per_access: int = 2
    # -- fault injection (all off by default: an ideal device) ---------
    #: probability a single read attempt needs an ECC retry.
    read_error_rate: float = 0.0
    #: probability a program attempt fails (the page goes bad).
    program_fail_rate: float = 0.0
    #: probability an erase fails (the block is retired).
    erase_fail_rate: float = 0.0
    #: seed of the fault injector's RNG (faults are deterministic).
    fault_seed: int = 0
    #: ECC retries allowed before a read raises ReadError.
    max_read_retries: int = 8

    def __post_init__(self) -> None:
        if self.logical_pages <= 0:
            raise ConfigError("logical_pages must be positive")
        if self.page_size <= 0 or self.page_size % PPN_BYTES:
            raise ConfigError("page_size must be a positive multiple of 4")
        if self.pages_per_block <= 0:
            raise ConfigError("pages_per_block must be positive")
        if not 0.0 <= self.over_provision < 1.0:
            raise ConfigError("over_provision must be in [0, 1)")
        if min(self.read_us, self.write_us, self.erase_us) < 0:
            raise ConfigError("latencies must be non-negative")
        if self.gc_threshold_blocks < 1:
            raise ConfigError("gc_threshold_blocks must be >= 1")
        if self.gc_reserve_blocks < 1:
            raise ConfigError("gc_reserve_blocks must be >= 1")
        if self.gc_max_collections_per_access < 1:
            raise ConfigError(
                "gc_max_collections_per_access must be >= 1")
        # rate/budget validation is shared with FaultPlan
        self.fault_plan()

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def entries_per_translation_page(self) -> int:
        """Mapping entries stored per translation page (PPNs only)."""
        return self.page_size // PPN_BYTES

    @property
    def translation_pages(self) -> int:
        """Translation pages needed to map the whole logical space."""
        return max(1, math.ceil(self.logical_pages
                                / self.entries_per_translation_page))

    @property
    def logical_blocks(self) -> int:
        """Blocks needed to hold the logical space exactly once."""
        return math.ceil(self.logical_pages / self.pages_per_block)

    @property
    def translation_blocks_budget(self) -> int:
        """Blocks budgeted for translation pages (with over-provisioning)."""
        raw = math.ceil(self.translation_pages / self.pages_per_block)
        return max(2, math.ceil(raw * (1.0 + self.over_provision)) + 1)

    @property
    def physical_blocks(self) -> int:
        """Total physical blocks in the device."""
        data = math.ceil(self.logical_blocks * (1.0 + self.over_provision))
        return (data + self.translation_blocks_budget
                + self.gc_reserve_blocks + self.gc_threshold_blocks)

    @property
    def physical_pages(self) -> int:
        """Total physical pages in the device."""
        return self.physical_blocks * self.pages_per_block

    @property
    def gc_trigger_blocks(self) -> int:
        """Free-pool level at which amortised GC starts.

        Kept small (threshold + reserve): triggering earlier would keep
        the pool artificially large, shrinking the effective
        over-provisioning and inflating Vd/write amplification.
        """
        return self.gc_threshold_blocks + self.gc_reserve_blocks

    @property
    def capacity_bytes(self) -> int:
        """Host-visible capacity in bytes."""
        return self.logical_pages * self.page_size

    # ------------------------------------------------------------------
    # Reliability / fault model
    # ------------------------------------------------------------------
    @property
    def min_required_blocks(self) -> int:
        """Blocks the device cannot operate below: the logical space,
        the translation pages, and the GC reserve/trigger headroom."""
        translation = math.ceil(self.translation_pages
                                / self.pages_per_block)
        return (self.logical_blocks + translation
                + self.gc_reserve_blocks + self.gc_threshold_blocks)

    @property
    def spare_blocks(self) -> int:
        """Blocks the device can lose to retirement before wearing out.

        The over-provisioned capacity beyond :attr:`min_required_blocks`;
        once more blocks than this retire, the flash raises
        :class:`~repro.errors.DeviceWornOutError`.
        """
        return self.physical_blocks - self.min_required_blocks

    def fault_plan(self) -> FaultPlan:
        """The fault plan implied by this config's fault-rate knobs."""
        return FaultPlan(
            seed=self.fault_seed,
            read_error_rate=self.read_error_rate,
            program_fail_rate=self.program_fail_rate,
            erase_fail_rate=self.erase_fail_rate,
            max_read_retries=self.max_read_retries,
        )

    # ------------------------------------------------------------------
    # Mapping-table sizes
    # ------------------------------------------------------------------
    @property
    def full_table_bytes(self) -> int:
        """Size of a flat page-level mapping table at 8B per entry."""
        return self.logical_pages * FULL_ENTRY_BYTES

    @property
    def gtd_bytes(self) -> int:
        """Size of the Global Translation Directory."""
        return self.translation_pages * GTD_SLOT_BYTES

    @property
    def block_table_bytes(self) -> int:
        """Size of a block-level FTL's mapping table (cache sizing rule)."""
        return self.logical_blocks * BLOCK_TABLE_SLOT_BYTES

    def paper_cache_bytes(self) -> int:
        """Mapping-cache size used by the paper's §5.1 rule.

        Equal to the block-level mapping table plus the GTD; for the
        paper's geometries this is 1/128 of the full page-level table
        (e.g. 8.5KB for a 512MB device, 272KB for 16GB).
        """
        return self.block_table_bytes + self.gtd_bytes

    def cache_bytes_for_fraction(self, fraction: float) -> int:
        """Cache size equal to ``fraction`` of the full mapping table.

        Used by the cache-size sweeps (Fig 8c/9/10), where sizes are
        normalised to the full table; the GTD is carved out of this
        budget just as in the paper's baseline configuration.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError("cache fraction must be in (0, 1]")
        return max(1, math.ceil(self.full_table_bytes * fraction))

    def scaled(self, **changes) -> "SSDConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # NAND generation profiles
    # ------------------------------------------------------------------
    @classmethod
    def slc(cls, **overrides) -> "SSDConfig":
        """Single-level-cell NAND: fast writes, high endurance.

        Typical datasheet figures of the paper's era (e.g. Micron SLC):
        25us read, 200us program, 1.5ms erase — which is also Table 3,
        so this equals the default profile.
        """
        params = dict(read_us=25.0, write_us=200.0, erase_us=1500.0)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def mlc(cls, **overrides) -> "SSDConfig":
        """Multi-level-cell NAND: the §3.3 motivation case.

        MLC programs are several times slower than SLC (typ. 50us read,
        900us program, 3ms erase for 2x-nm MLC), which is exactly why
        the paper argues extra translation writes are so costly.
        """
        params = dict(read_us=50.0, write_us=900.0, erase_us=3000.0)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def tlc(cls, **overrides) -> "SSDConfig":
        """Triple-level-cell NAND: slower still (typ. 75us read,
        1.5ms program, 4.5ms erase)."""
        params = dict(read_us=75.0, write_us=1500.0, erase_us=4500.0)
        params.update(overrides)
        return cls(**params)


@dataclass(frozen=True)
class CacheConfig:
    """Byte budget and layout parameters of the mapping cache.

    ``budget_bytes`` is the *total* RAM given to address translation; the
    GTD (sized by the SSD geometry) is always resident and is subtracted
    before entries are admitted, per §5.1.
    """

    budget_bytes: int
    dftl_entry_bytes: int = DFTL_ENTRY_BYTES
    tpftl_entry_bytes: int = TPFTL_ENTRY_BYTES
    tpftl_node_bytes: int = TPFTL_NODE_BYTES
    #: fraction of an S-FTL cache reserved as its dirty buffer.
    sftl_dirty_buffer_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise ConfigError("cache budget must be positive")
        if self.dftl_entry_bytes <= 0 or self.tpftl_entry_bytes <= 0:
            raise ConfigError("entry sizes must be positive")
        if self.tpftl_node_bytes < 0:
            raise ConfigError("node overhead must be non-negative")
        if not 0.0 <= self.sftl_dirty_buffer_fraction < 1.0:
            raise ConfigError("dirty buffer fraction must be in [0, 1)")

    def entry_budget_bytes(self, gtd_bytes: int) -> int:
        """Bytes left for cached entries after the resident GTD."""
        remaining = self.budget_bytes - gtd_bytes
        if remaining <= 0:
            raise ConfigError(
                f"cache budget {self.budget_bytes}B cannot even hold the "
                f"GTD ({gtd_bytes}B)")
        return remaining


@dataclass(frozen=True)
class TPFTLConfig:
    """Feature switches and tuning knobs of TPFTL (§4).

    The four technique flags correspond to the paper's ablation monograms:
    ``r`` request-level prefetching, ``s`` selective prefetching,
    ``b`` batch-update replacement, ``c`` clean-first replacement.
    ``rsbc`` (all on) is the complete TPFTL; all off is the `--` variant.
    """

    request_prefetch: bool = True
    selective_prefetch: bool = True
    batch_update: bool = True
    clean_first: bool = True
    #: |counter| that toggles selective prefetching (paper: 3).
    selective_threshold: int = 3

    def __post_init__(self) -> None:
        if self.selective_threshold < 1:
            raise ConfigError("selective_threshold must be >= 1")

    @classmethod
    def from_monogram(cls, monogram: str) -> "TPFTLConfig":
        """Build a config from a paper-style monogram like ``"bc"``.

        The special value ``"-"`` (or empty string) disables everything.
        """
        text = monogram.strip().lower()
        if text in ("-", "--", ""):
            text = ""
        allowed = set("rsbc")
        bad = set(text) - allowed
        if bad:
            raise ConfigError(f"unknown technique letters: {sorted(bad)}")
        return cls(
            request_prefetch="r" in text,
            selective_prefetch="s" in text,
            batch_update="b" in text,
            clean_first="c" in text,
        )

    @property
    def monogram(self) -> str:
        """Paper-style monogram for this configuration."""
        text = "".join(letter for letter, on in (
            ("r", self.request_prefetch),
            ("s", self.selective_prefetch),
            ("b", self.batch_update),
            ("c", self.clean_first),
        ) if on)
        return text or "-"


@dataclass(frozen=True)
class SanitizerConfig:
    """Switches for FTLSan, the runtime invariant sanitizer.

    When ``enabled``, every FTL installs a
    :class:`~repro.analysis.sanitizer.FTLSan` instance that checks the
    paper's structural invariants (§4.2/§4.4/§4.5 plus the flash state
    machine and shadow-map consistency) as the workload runs.  Checks
    fire every ``interval`` host page operations; the expensive
    whole-state checkers additionally run only every ``full_every``-th
    check (``1`` = every check).  ``rules`` restricts checking to the
    given SAN rule codes (``None`` = all rules).
    """

    enabled: bool = False
    #: run sampled checks every this many host page operations
    interval: int = 1
    #: run whole-state (O(device)) checkers every this many checks
    full_every: int = 64
    #: restrict to these SAN rule codes, or None for every rule
    rules: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigError("sanitizer interval must be >= 1")
        if self.full_every < 1:
            raise ConfigError("sanitizer full_every must be >= 1")
        if self.rules is not None and not isinstance(self.rules,
                                                     frozenset):
            object.__setattr__(  # tp: allow=TP004 - frozen-field coercion
                self, "rules", frozenset(self.rules))

    def wants(self, code: str) -> bool:
        """True when rule ``code`` is enabled under this config."""
        return self.rules is None or code in self.rules


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle handed to the device model."""

    ssd: SSDConfig = field(default_factory=SSDConfig)
    cache: Optional[CacheConfig] = None
    tpftl: TPFTLConfig = field(default_factory=TPFTLConfig)
    #: sample the cache distribution every this many user page accesses
    #: (0 disables sampling); the paper samples every 10,000.
    sample_interval: int = 0
    #: independently-queued flash channels of the device model
    #: (1 = the paper's single-server queue; >1 overlaps operations)
    channels: int = 1
    #: runtime invariant checking (off by default: zero overhead)
    sanitizer: SanitizerConfig = field(default_factory=SanitizerConfig)

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigError("channels must be >= 1")

    def resolved_cache(self) -> CacheConfig:
        """The cache config, defaulting to the paper's §5.1 sizing rule."""
        if self.cache is not None:
            return self.cache
        return CacheConfig(budget_bytes=self.ssd.paper_cache_bytes())
