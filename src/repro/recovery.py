"""Crash recovery: rebuild the mapping state from flash alone.

A demand-based FTL loses its RAM state — the mapping cache *and* the
GTD — on power failure.  Because this simulator records each page's
logical identity alongside its content (the stand-in for the out-of-band
area real controllers use), the full mapping state can be reconstructed
by scanning flash:

* every valid data page contributes an LPN -> PPN binding;
* every valid translation page contributes a VTPN -> PTPN binding.

Out-of-place writing guarantees at most one valid physical page per
logical page (the write path invalidates the superseded copy before the
new mapping is published), so the scan is unambiguous.  The recovered
data mapping is the *freshest* state — fresher than the on-flash
translation pages, which may lag behind by the dirty cache entries lost
in the crash.  :func:`recovery_report` quantifies exactly that gap, the
"vulnerability to a power failure" cost the paper's §1 attributes to
large RAM caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .errors import FTLError, SimInvariantError
from .flash import FlashMemory
from .types import BlockKind, PageState, UNMAPPED


@dataclass(frozen=True)
class RecoveredState:
    """Mapping state reconstructed by a full flash scan."""

    #: LPN -> PPN from valid data pages (UNMAPPED where never written)
    data_mapping: List[int]
    #: VTPN -> PTPN from valid translation pages
    gtd: Dict[int, int]
    #: blocks scanned, for reporting
    scanned_blocks: int

    def mapped_pages(self) -> int:
        """Number of LPNs with a recovered mapping."""
        return sum(1 for ppn in self.data_mapping if ppn != UNMAPPED)


def scan_flash(flash: FlashMemory, logical_pages: int) -> RecoveredState:
    """Rebuild the complete mapping state by scanning every block.

    Raises :class:`FTLError` if two valid pages claim the same logical
    page — that would mean the FTL broke the invalidate-before-publish
    invariant and recovery is ambiguous.
    """
    data_mapping = [UNMAPPED] * logical_pages
    gtd: Dict[int, int] = {}
    for block in flash.blocks:
        # retired blocks hold no live data: their valid pages were
        # migrated before the erase that retired them.
        if block.kind is BlockKind.FREE or block.kind is BlockKind.RETIRED:
            continue
        for offset in range(block.pages_per_block):
            if block.state(offset) is not PageState.VALID:
                continue
            meta = block.meta(offset)
            if meta is None:  # pragma: no cover - valid pages carry meta
                raise SimInvariantError(
                    f"valid page in block {block.block_id} offset "
                    f"{offset} has no recorded metadata")
            ppn = flash.ppn_of(block.block_id, offset)
            if block.kind is BlockKind.DATA:
                if not 0 <= meta < logical_pages:
                    raise FTLError(
                        f"valid data page {ppn} claims out-of-range "
                        f"LPN {meta}")
                if data_mapping[meta] != UNMAPPED:
                    raise FTLError(
                        f"LPN {meta} claimed by both PPN "
                        f"{data_mapping[meta]} and PPN {ppn}")
                data_mapping[meta] = ppn
            else:
                if meta in gtd:
                    raise FTLError(
                        f"VTPN {meta} claimed by two translation pages")
                gtd[meta] = ppn
    return RecoveredState(data_mapping=data_mapping, gtd=gtd,
                          scanned_blocks=len(flash.blocks))


@dataclass(frozen=True)
class RecoveryReport:
    """How a crashed FTL's recovered state relates to its RAM state."""

    #: LPNs whose on-flash translation entry was stale (dirty-in-cache)
    stale_translation_entries: int
    #: LPNs recovered (valid data pages found)
    recovered_pages: int
    #: translation pages recovered into the GTD
    recovered_translation_pages: int

    @property
    def stale_fraction(self) -> float:
        """Stale entries over recovered pages."""
        if not self.recovered_pages:
            return 0.0
        return self.stale_translation_entries / self.recovered_pages


def recover(ftl) -> RecoveredState:
    """Recover mapping state for an FTL after a simulated crash.

    Returns the state a controller would rebuild at next boot.  The
    FTL's RAM state is not consulted — only flash.
    """
    return scan_flash(ftl.flash, ftl.ssd.logical_pages)


def recovery_report(ftl) -> RecoveryReport:
    """Compare the recovered state against the FTL's on-flash table.

    The difference counts the dirty mapping entries a crash would have
    had to rebuild by scanning (or lost, on a controller without OOB
    scanning) — i.e. the consistency debt of the mapping cache.
    """
    state = recover(ftl)
    stale = 0
    for lpn, recovered_ppn in enumerate(state.data_mapping):
        if recovered_ppn == UNMAPPED:
            continue
        if ftl.flash_table[lpn] != recovered_ppn:
            stale += 1
    return RecoveryReport(
        stale_translation_entries=stale,
        recovered_pages=state.mapped_pages(),
        recovered_translation_pages=len(state.gtd),
    )


def verify_recovery(ftl) -> None:
    """Assert the recovered state matches the FTL's live view.

    The recovered data mapping must equal ``lookup_current`` for every
    LPN, and the recovered GTD must match the live one (for FTLs that
    keep translation pages).  Raises :class:`FTLError` on mismatch.
    """
    state = recover(ftl)
    for lpn, recovered_ppn in enumerate(state.data_mapping):
        live = ftl.lookup_current(lpn)
        if recovered_ppn != live:
            raise FTLError(
                f"recovery mismatch for LPN {lpn}: scan says "
                f"{recovered_ppn}, FTL says {live}")
    if ftl.uses_translation_pages:
        for vtpn in range(len(ftl.gtd)):
            if ftl.gtd.get(vtpn) != state.gtd.get(vtpn, UNMAPPED):
                raise FTLError(
                    f"recovery mismatch for VTPN {vtpn}")
