"""FTLSan: a config-gated runtime sanitizer for the FTL simulators.

Inspired by the address/thread sanitizers' "pay a constant factor,
catch the bug at the op that caused it" tradeoff: when
``SimulationConfig.sanitizer.enabled`` is set, :class:`~repro.ftl.base.
BaseFTL` attaches an :class:`FTLSan` instance that

* maintains a **shadow page map** of host-visible state (last write /
  trim per LPN) and cross-validates it against the FTL's authoritative
  mapping and the flash substrate (rule ``SAN001``);
* re-runs the structural checkers of :mod:`repro.analysis.checkers`
  (``SAN002``–``SAN004``, ``SAN009``) every ``interval`` host page
  operations, with the expensive full sweeps (whole-table injectivity,
  flash state machine) throttled to every ``full_every``-th sample;
* receives inline **event hooks** from TPFTL's prefetch/replacement
  path and enforces the §4.4/§4.5 rules at the moment they could break
  (``SAN005``–``SAN008``).

Violations raise :class:`~repro.errors.SanitizerError` carrying the
rule code and the host operation sequence number, so a failing run can
be replayed deterministically up to the offending operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..config import SanitizerConfig
from ..errors import SanitizerError
from ..types import Op
from . import checkers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ftl.base import BaseFTL
    from ..ftl.tpftl import EntryNode, TPFTL, TPNode

#: shadow-map verdicts: last host op per LPN
_WRITTEN, _TRIMMED = "W", "T"


class FTLSan:
    """Runtime invariant checker attached to one FTL instance.

    The FTL calls :meth:`after_op` once per host page operation (the
    sampling clock) and the inline ``note_*`` hooks from its
    prefetch/replacement path.  All state lives here; the FTL keeps a
    single ``sanitizer`` attribute that is ``None`` when disabled, so
    the fast path costs one attribute test.
    """

    def __init__(self, ftl: "BaseFTL", config: SanitizerConfig) -> None:
        self.ftl = ftl
        self.config = config
        #: host page-operation sequence number (drives sampling)
        self.op_seq = 0
        #: samples taken so far (drives the full-sweep throttle)
        self.checks_run = 0
        #: full sweeps completed (exposed for tests/reports)
        self.full_scans = 0
        #: host-visible truth: LPN -> last op ("W" written, "T" trimmed)
        self.shadow: Dict[int, str] = {}
        #: LPNs touched since the last sample (incremental SAN001)
        self.touched: Set[int] = set()
        #: per-checker persistent memory (e.g. seen-BAD pages)
        self.memory: Dict[str, set] = {}
        #: distinct TP nodes evicted from during the current prefetch
        self._prefetch_victims: Set[int] = set()
        self._prefetching = False
        self._is_tpftl = (getattr(ftl, "name", "") == "tpftl")

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------
    def fail(self, code: str, message: str) -> None:
        """Raise a :class:`SanitizerError` tagged with the current op."""
        raise SanitizerError(code, message, op_seq=self.op_seq)

    def _wants(self, code: str) -> bool:
        return self.config.wants(code)

    # ------------------------------------------------------------------
    # Sampling clock
    # ------------------------------------------------------------------
    def after_op(self, lpn: int, op: Op) -> None:
        """Record one completed host page operation and maybe sample.

        Called by the FTL at the end of its per-page data path, i.e.
        after translation, flash traffic, mapping update and GC — the
        point where every invariant should hold.
        """
        self.op_seq += 1
        if op is Op.WRITE:
            self.shadow[lpn] = _WRITTEN
        elif op is Op.TRIM:
            self.shadow[lpn] = _TRIMMED
        self.touched.add(lpn)
        if self.op_seq % self.config.interval:
            return
        self.checks_run += 1
        full = (self.checks_run % self.config.full_every == 0)
        self.run_checks(full=full)

    def run_checks(self, full: bool = False) -> None:
        """Run the state checkers now (``full`` adds the O(device) sweeps).

        Public so tests and experiment teardown can force a final full
        validation regardless of where the sampling clock stopped.
        """
        ftl = self.ftl
        if self._wants("SAN001"):
            lpns = sorted(self.shadow) if full else self.touched
            checkers.check_shadow(ftl, self.fail, self.shadow, lpns)
            if full:
                checkers.check_injectivity(ftl, self.fail)
        if self._is_tpftl:
            if self._wants("SAN002"):
                checkers.check_two_level_lru(  # type: ignore[arg-type]
                    ftl, self.fail)
            if self._wants("SAN003"):
                checkers.check_hotness(ftl, self.fail)  # type: ignore[arg-type]
        if self._wants("SAN004"):
            checkers.check_budget(ftl, self.fail)
        if full and self._wants("SAN009"):
            checkers.check_flash_state(ftl.flash, self.fail, self.memory)
        if full:
            self.full_scans += 1
        self.touched.clear()

    def final_check(self) -> None:
        """Force one full-sweep validation (for run teardown)."""
        self.run_checks(full=True)

    # ------------------------------------------------------------------
    # Event hooks (SAN005-SAN008) — called inline by TPFTL
    # ------------------------------------------------------------------
    def note_prefetch_plan(self, ftl: "TPFTL", lpn: int,
                           plan: List[int]) -> None:
        """§4.5 rule 1 (SAN005): the prefetch plan for a miss on ``lpn``
        must stay within ``lpn``'s translation page."""
        if not self._wants("SAN005"):
            return
        vtpn = ftl.geometry.vtpn_of(lpn)
        for candidate in plan:
            if ftl.geometry.vtpn_of(candidate) != vtpn:
                self.fail(
                    "SAN005",
                    f"prefetch plan for LPN {lpn} (VTPN {vtpn}) crosses "
                    f"the translation-page boundary to LPN {candidate} "
                    f"(VTPN {ftl.geometry.vtpn_of(candidate)})")

    def note_prefetch_begin(self) -> None:
        """Mark the start of a prefetch batch (arms SAN006 tracking)."""
        self._prefetching = True
        self._prefetch_victims.clear()

    def note_prefetch_end(self) -> None:
        """Mark the end of a prefetch batch (disarms SAN006 tracking)."""
        self._prefetching = False
        self._prefetch_victims.clear()

    def note_eviction(self, ftl: "TPFTL", node: "TPNode",
                      victim: "EntryNode",
                      protect: Optional["EntryNode"]) -> None:
        """Validate one entry eviction (SAN006 + SAN007).

        Called by ``TPFTL._evict_one`` after the victim is chosen and
        before it is written back/dropped.
        """
        if self._prefetching and self._wants("SAN006"):
            self._prefetch_victims.add(node.vtpn)
            if len(self._prefetch_victims) > 1:
                self.fail(
                    "SAN006",
                    "prefetch-induced replacement touched TP nodes "
                    f"{sorted(self._prefetch_victims)}; §4.5 confines "
                    "it to a single node")
        if (self._wants("SAN007") and ftl.techniques.clean_first
                and victim.dirty):
            for entry in node.entries:
                if not entry.dirty and entry is not protect:
                    self.fail(
                        "SAN007",
                        f"dirty entry LPN {victim.lpn} evicted from TP "
                        f"node {node.vtpn} while clean entry LPN "
                        f"{entry.lpn} was available (clean-first)")

    def note_writeback(self, ftl: "TPFTL", node: "TPNode",
                       victim: "EntryNode") -> None:
        """Validate the batch-update postcondition (SAN008).

        Called by ``TPFTL._writeback`` after the translation-page update:
        with batch update enabled the victim's whole TP node must be
        clean, and only the victim may be about to leave the cache.
        """
        if not self._wants("SAN008"):
            return
        if not ftl.techniques.batch_update:
            return
        if node.dirty_count != 0:
            self.fail(
                "SAN008",
                f"batch update of TP node {node.vtpn} left "
                f"{node.dirty_count} dirty entries behind")
        recount = sum(1 for entry in node.entries if entry.dirty)
        if recount:
            self.fail(
                "SAN008",
                f"batch update of TP node {node.vtpn} left {recount} "
                "entries flagged dirty")
        if victim.lpn not in node.by_lpn:
            self.fail(
                "SAN008",
                f"victim LPN {victim.lpn} already left TP node "
                f"{node.vtpn} during writeback (only the victim may "
                "leave, and only after the update)")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Sampling counters for experiment reports."""
        return {
            "ops": self.op_seq,
            "samples": self.checks_run,
            "full_scans": self.full_scans,
        }


def attach(ftl: "BaseFTL") -> Optional[FTLSan]:
    """Build an :class:`FTLSan` for ``ftl`` if its config enables one."""
    sanitizer_cfg = ftl.config.sanitizer
    if not sanitizer_cfg.enabled:
        return None
    return FTLSan(ftl, sanitizer_cfg)
