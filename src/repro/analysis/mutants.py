"""Mutation self-validation of the TP2xx domain and TP3xx protocol passes.

A static analysis that never fires is indistinguishable from one that
works.  This harness keeps the flow passes honest from both sides: it
applies a curated list of **seeded mutants** — each the minimal,
realistic version of a bug class a pass exists for.  The **domain
mutants** (``M01``–``M10``) cover the TP2xx value bugs: swapped
``lpn``/``ppn`` arguments, an ``lpn``-indexed structure indexed by
VPN, a dropped ``* pages_per_block`` conversion, milliseconds handed
to a microsecond parameter, a byte budget stored as an entry count.
The **protocol mutants** (``P01``–``P10``) cover the TP3xx temporal
bugs: a deleted ``finally`` around a fast-mode window, a dropped or
swapped ``enter_fast_mode``/``exit_fast_mode``, ``fold_stats`` after
the window closed, the supervisor's spawn-failure cleanup removed, a
journal ``with`` block rewritten as manual ``open``/``close``, an
early ``return`` before the ``close()``, and the per-run device reset
dropped ahead of the serve loop.  Each mutant is applied to a
throwaway copy of ``src/`` and the harness asserts that

* the **pristine copy is clean**: zero findings beyond the committed
  baseline (the analysis does not cry wolf at HEAD), and
* **every mutant is killed**: the analysis of the mutated copy yields
  at least one *new* finding of the expected rule in the mutated file.

Each mutant is an exact-text substitution that must match its file
exactly once; when the underlying source drifts, the harness fails
loudly (:class:`MutantApplyError`) instead of silently validating
nothing.  Run it as ``python -m repro.analysis mutants`` (CI does, in
the ``analysis-mutants`` job) or through
``tests/test_analysis_mutants.py``.

This is also the gate the planned vectorized fast path must pass: any
rewrite of the translation hot loops has to keep all of these mutants
detectable.
"""

from __future__ import annotations

import dataclasses
import pathlib
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .flow import analyze_paths
from .lint import Finding, lint_paths, load_baseline

__all__ = [
    "DOMAIN_MUTANTS",
    "MUTANTS",
    "Mutant",
    "MutantApplyError",
    "MutantResult",
    "MutationReport",
    "PROTOCOL_MUTANTS",
    "run_mutants",
]


class MutantApplyError(RuntimeError):
    """A mutant's before-text no longer matches its file exactly once."""


@dataclass(frozen=True)
class Mutant:
    """One seeded domain/unit bug: an exact-text substitution."""

    mid: str
    #: file to mutate, relative to the copied ``src`` root
    path: str
    #: rule expected to kill the mutant (TP201..TP204, TP301..TP305)
    rule: str
    description: str
    before: str
    after: str


#: the seeded domain/unit mutants: every one must be killed by TP2xx
DOMAIN_MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        mid="M01", path="repro/ftl/base.py", rule="TP201",
        description="read-modify-write reads the LPN instead of the "
                    "old PPN",
        before="self.flash.read(ppn_old, PageKind.DATA)",
        after="self.flash.read(lpn, PageKind.DATA)"),
    Mutant(
        mid="M02", path="repro/ftl/base.py", rule="TP201",
        description="swapped lpn/ppn arguments when recording a "
                    "mapping",
        before="self._record_mapping(lpn, ppn_new, result)",
        after="self._record_mapping(ppn_new, lpn, result)"),
    Mutant(
        mid="M03", path="repro/ftl/base.py", rule="TP201",
        description="flash_table indexed by PPN and fed an LPN on the "
                    "translation-write path",
        before="            self.flash_table[lpn] = ppn\n"
               "        old_ptpn",
        after="            self.flash_table[ppn] = lpn\n"
              "        old_ptpn"),
    Mutant(
        mid="M04", path="repro/ftl/base.py", rule="TP201",
        description="GC migration derives the VTPN from the new PPN "
                    "instead of the LPN",
        before="vtpn = self.geometry.vtpn_of(lpn)",
        after="vtpn = self.geometry.vtpn_of(new_ppn)"),
    Mutant(
        mid="M05", path="repro/ftl/base.py", rule="TP202",
        description="unmapped-check compares a PPN against an LPN",
        before="if ppn_old == UNMAPPED:",
        after="if ppn_old == lpn:"),
    Mutant(
        mid="M06", path="repro/ftl/dftl.py", rule="TP201",
        description="double translation: flash_table indexed by VTPN "
                    "instead of LPN",
        before="ppn = self.flash_table[lpn]",
        after="ppn = self.flash_table[self.geometry.vtpn_of(lpn)]"),
    Mutant(
        mid="M07", path="repro/ftl/dftl.py", rule="TP204",
        description="byte budget stored as an entry count (missing "
                    "// entry_bytes)",
        before="self.capacity_entries = budget // entry_bytes",
        after="self.capacity_entries = budget"),
    Mutant(
        mid="M08", path="repro/ssd/device.py", rule="TP203",
        description="per-request service time converted to ms and "
                    "dispatched where µs are expected",
        before="            service = cost.service_time(ssd.read_us,"
               " ssd.write_us,\n"
               "                                        ssd.erase_us)"
               "\n",
        after="            response_ms = cost.service_time("
              "ssd.read_us, ssd.write_us,\n"
              "                                        ssd.erase_us)"
              " / 1000.0\n"
              "            service = response_ms\n"),
    Mutant(
        mid="M09", path="repro/ssd/parallel.py", rule="TP203",
        description="channel finish time adds milliseconds to a "
                    "microsecond clock",
        before="            # are bit-for-bit identical to the "
               "single-server model.\n"
               "            start = max(arrival, self._busy[0])\n"
               "            finish = start + service_us\n",
        after="            # are bit-for-bit identical to the "
              "single-server model.\n"
              "            service_ms = service_us / 1000.0\n"
              "            start = max(arrival, self._busy[0])\n"
              "            finish = start + service_ms\n"),
    Mutant(
        mid="M10", path="repro/ftl/block_ftl.py", rule="TP201",
        description="dropped * pages_per_block: a block index used as "
                    "the block's base LPN",
        before="        base_lpn = lbn * ppb",
        after="        base_lpn = lbn"),
)


#: the seeded protocol mutants: every one must be killed by TP3xx
PROTOCOL_MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        mid="P01", path="repro/ssd/fastpath.py", rule="TP301",
        description="deleted finally around the fast-mode run window: "
                    "exit_fast_mode only runs on one exception flavour",
        before="    finally:\n"
               "        flash.exit_fast_mode()",
        after="    except MemoryError:\n"
              "        flash.exit_fast_mode()\n"
              "        raise"),
    Mutant(
        mid="P02", path="repro/ftl/base.py", rule="TP301",
        description="deleted finally around the prefill fast-mode "
                    "window: a raise mid-fill strands fast mode",
        before="            finally:\n"
               "                flash.exit_fast_mode()",
        after="            except MemoryError:\n"
              "                flash.exit_fast_mode()\n"
              "                raise"),
    Mutant(
        mid="P03", path="repro/ssd/fastpath.py", rule="TP302",
        description="dropped enter_fast_mode: the finally releases a "
                    "window that was never opened",
        before="    flash.enter_fast_mode()\n"
               "    try:",
        after="    try:"),
    Mutant(
        mid="P04", path="repro/ftl/base.py", rule="TP302",
        description="swapped acquire for release: prefill exits fast "
                    "mode where it meant to enter it",
        before="            flash.enter_fast_mode()\n"
               "            try:",
        after="            flash.exit_fast_mode()\n"
              "            try:"),
    Mutant(
        mid="P05", path="repro/experiments/supervisor.py", rule="TP303",
        description="dropped spawn-failure cleanup: a partially-spawned "
                    "worker's pipe ends and process leak on the retry "
                    "path",
        before="                self._discard_spawn(parent_conn, "
               "child_conn, process)\n"
               "                self._spawn_failures += 1",
        after="                self._spawn_failures += 1"),
    Mutant(
        mid="P06", path="repro/experiments/supervisor.py", rule="TP305",
        description="journal append rewritten as manual open/close "
                    "outside with/try-finally",
        before="            with open(self.path, \"a\", "
               "encoding=\"utf-8\") as handle:\n"
               "                handle.write(json.dumps(payload) + "
               "\"\\n\")",
        after="            handle = open(self.path, \"a\", "
              "encoding=\"utf-8\")\n"
              "            handle.write(json.dumps(payload) + "
              "\"\\n\")\n"
              "            handle.close()"),
    Mutant(
        mid="P07", path="repro/ssd/fastpath.py", rule="TP304",
        description="dropped per-run reset before the fast-path serve "
                    "loop: previous replay state leaks into the run",
        before="    device._validate_trace(trace)\n"
               "    device._reset_state()",
        after="    device._validate_trace(trace)"),
    Mutant(
        mid="P08", path="repro/ssd/device.py", rule="TP304",
        description="dropped per-run reset in DeviceModel.run: "
                    "serve_request reachable without the reset",
        before="        self._validate_trace(trace)\n"
               "        self._reset_state()",
        after="        self._validate_trace(trace)"),
    Mutant(
        mid="P09", path="repro/ssd/fastpath.py", rule="TP302",
        description="warmup fold moved outside the fast-mode window: "
                    "exit before fold_stats loses the warmup counters",
        before="            flash.fold_stats()\n"
               "            flash.stats.reset()",
        after="            flash.exit_fast_mode()\n"
              "            flash.fold_stats()\n"
              "            flash.stats.reset()"),
    Mutant(
        mid="P10", path="repro/experiments/supervisor.py", rule="TP301",
        description="early return before the journal handle is closed",
        before="            with open(self.path, \"a\", "
               "encoding=\"utf-8\") as handle:\n"
               "                handle.write(json.dumps(payload) + "
               "\"\\n\")",
        after="            handle = open(self.path, \"a\", "
              "encoding=\"utf-8\")\n"
              "            if not payload:\n"
              "                return\n"
              "            handle.write(json.dumps(payload) + "
              "\"\\n\")\n"
              "            handle.close()"),
)


#: the full corpus the CLI and CI run: domain + protocol mutants
MUTANTS: Tuple[Mutant, ...] = DOMAIN_MUTANTS + PROTOCOL_MUTANTS


@dataclass
class MutantResult:
    """Outcome of one mutant: killed or survived, with the delta."""

    mutant: Mutant
    #: findings present in the mutated copy but not the pristine one
    delta: List[Finding]

    @property
    def killed(self) -> bool:
        """True when the expected rule fired in the mutated file."""
        return any(f.rule == self.mutant.rule
                   and f.path.endswith(self.mutant.path)
                   for f in self.delta)


@dataclass
class MutationReport:
    """The full harness outcome: pristine check + per-mutant verdicts."""

    #: findings on the pristine copy beyond the committed baseline
    pristine_new: List[Finding]
    results: List[MutantResult]

    @property
    def survivors(self) -> List[MutantResult]:
        """Mutants the analysis failed to flag."""
        return [r for r in self.results if not r.killed]

    @property
    def ok(self) -> bool:
        """True when HEAD is clean and every mutant is killed."""
        return not self.pristine_new and not self.survivors

    def to_json(self) -> Dict[str, object]:
        """JSON document for ``--format json``."""
        return {
            "tool": "repro.analysis mutants",
            "pristine_new": [f.render() for f in self.pristine_new],
            "mutants": [{
                "id": r.mutant.mid,
                "path": r.mutant.path,
                "rule": r.mutant.rule,
                "description": r.mutant.description,
                "killed": r.killed,
                "delta": [f.render() for f in r.delta],
            } for r in self.results],
            "ok": self.ok,
        }


def _analyze(root: pathlib.Path) -> List[Finding]:
    """Both passes over one tree copy."""
    paths = [str(root)]
    return lint_paths(paths) + analyze_paths(paths)


def _rebased_key(finding: Finding, copy_root: pathlib.Path,
                 src_root: pathlib.Path) -> Tuple[str, str, str]:
    """Baseline key with the tmp-copy path mapped back onto ``src``."""
    prefix = copy_root.as_posix() + "/"
    path = finding.path
    if path.startswith(prefix):
        path = (src_root / path[len(prefix):]).as_posix()
    return (finding.rule, path, finding.snippet)


def _apply(copy_root: pathlib.Path, mutant: Mutant) -> str:
    """Apply one mutant in place; returns the original text."""
    target = copy_root / mutant.path
    original = target.read_text(encoding="utf-8")
    occurrences = original.count(mutant.before)
    if occurrences != 1:
        raise MutantApplyError(
            f"{mutant.mid}: expected exactly one occurrence of the "
            f"before-text in {mutant.path}, found {occurrences} — the "
            "source drifted; update the mutant list")
    target.write_text(original.replace(mutant.before, mutant.after),
                      encoding="utf-8")
    return original


def run_mutants(src_root: str = "src",
                baseline: Optional[str] = ".analysis-baseline.json",
                mutants: Sequence[Mutant] = MUTANTS) -> MutationReport:
    """Run the full harness against a throwaway copy of ``src_root``.

    Copies the tree once, analyzes the pristine copy (comparing
    against the committed ``baseline`` for the HEAD-clean check), then
    applies/reverts each mutant in turn and records the finding delta.
    """
    src = pathlib.Path(src_root)
    grandfathered = (load_baseline(pathlib.Path(baseline))
                     if baseline else set())
    with tempfile.TemporaryDirectory(prefix="tp-mutants-") as tmp:
        # resolve() so the prefix matches the resolved finding paths
        # normalize_path() produces for files outside the repo
        copy_root = pathlib.Path(tmp).resolve() / src.name
        shutil.copytree(src, copy_root, ignore=shutil.ignore_patterns(
            "__pycache__", "*.pyc", "*.egg-info"))
        pristine = _analyze(copy_root)
        pristine_keys: Set[Tuple[str, str, str]] = {
            f.key for f in pristine}
        pristine_new = [
            f for f in pristine
            if _rebased_key(f, copy_root, src) not in grandfathered]
        results: List[MutantResult] = []
        for mutant in mutants:
            original = _apply(copy_root, mutant)
            try:
                mutated = _analyze(copy_root)
            finally:
                (copy_root / mutant.path).write_text(
                    original, encoding="utf-8")
            delta = [f for f in mutated if f.key not in pristine_keys]
            results.append(MutantResult(mutant=mutant, delta=delta))
    rebased = [dataclasses.replace(
        f, path=_rebased_key(f, copy_root, src)[1])
        for f in pristine_new]
    return MutationReport(pristine_new=rebased, results=results)
