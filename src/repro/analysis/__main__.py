"""Command-line entry point: ``python -m repro.analysis``.

Subcommands:

* ``lint [paths...]`` — run both analysis passes (the single-file TP0xx
  AST rules and the interprocedural TP1xx flow rules) over Python
  sources (default target: ``src``).  Exits non-zero when findings
  outside the committed baseline exist; ``--write-baseline``
  regenerates the baseline from the current findings instead.
  ``--format text|json|sarif`` picks the report format (SARIF 2.1.0
  feeds GitHub code scanning); ``--fail-stale`` turns stale baseline
  entries into a failure; ``--disable``/``--exclude`` select rules and
  prune subtrees per invocation (tests legitimately use ``assert``, so
  CI lints them with ``--disable TP003``).
* ``rules`` — print every TP lint rule, TP1xx flow rule and SAN
  sanitizer rule with its one-line description.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence, Set, Tuple

from .checkers import SAN_RULES
from .flow import FLOW_RULES, analyze_paths, to_sarif
from .flow.sarif import default_rule_table
from .lint import (Finding, RULES, lint_paths, load_baseline,
                   partition_findings, write_baseline)

#: default baseline location, relative to the invocation directory
DEFAULT_BASELINE = ".analysis-baseline.json"

#: the report formats the lint subcommand can emit
FORMATS = ("text", "json", "sarif")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (TP AST rules + "
                    "TP1xx interprocedural flow rules) and rule "
                    "listing for the FTLSan runtime sanitizer.")
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="run both analysis passes over Python sources")
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    lint.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE})")
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new")
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0")
    lint.add_argument(
        "--fail-stale", action="store_true",
        help="exit non-zero when baseline entries no longer trigger "
             "(keeps the committed baseline honest in CI)")
    lint.add_argument(
        "--format", choices=FORMATS, default="text", dest="format_",
        metavar="FORMAT",
        help="report format: text (default), json, or sarif "
             "(SARIF 2.1.0 for GitHub code scanning)")
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the json/sarif document to FILE instead of stdout")
    lint.add_argument(
        "--disable", action="append", default=[], metavar="CODES",
        help="rule codes to skip (comma-separated, repeatable); e.g. "
             "--disable TP003 when linting test trees")
    lint.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="path prefixes to prune from the linted trees "
             "(repeatable); e.g. --exclude tests/fixtures")
    sub.add_parser(
        "rules", help="list every TP lint rule, TP1xx flow rule and "
                      "SAN sanitizer rule")
    return parser


def _disabled_codes(raw: Sequence[str]) -> Set[str]:
    codes: Set[str] = set()
    for chunk in raw:
        codes.update(c.strip() for c in chunk.split(",") if c.strip())
    return codes


def _collect_findings(args: argparse.Namespace) -> List[Finding]:
    """Both passes over the requested trees, rule-filtered and sorted."""
    disabled = _disabled_codes(args.disable)
    findings = lint_paths(args.paths, exclude=args.exclude)
    findings += analyze_paths(args.paths, exclude=args.exclude)
    findings = [f for f in findings if f.rule not in disabled]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _emit_document(document: dict, output: Optional[str]) -> None:
    text = json.dumps(document, indent=2) + "\n"
    if output:
        pathlib.Path(output).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def _json_document(new: List[Finding], grandfathered: List[Finding],
                   stale: Set[Tuple[str, str, str]]) -> dict:
    def _encode(finding: Finding, suppressed: bool) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "snippet": finding.snippet,
            "suppressed": suppressed,
        }

    return {
        "version": 1,
        "tool": "repro.analysis",
        "findings": ([_encode(f, False) for f in new]
                     + [_encode(f, True) for f in grandfathered]),
        "summary": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline_entries": [
                {"rule": rule, "path": path, "snippet": snippet}
                for rule, path, snippet in sorted(stale)],
        },
    }


def _run_lint(args: argparse.Namespace) -> int:
    findings = _collect_findings(args)
    baseline_path = pathlib.Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    baseline = (set() if args.no_baseline
                else load_baseline(baseline_path))
    new, grandfathered = partition_findings(findings, baseline)
    stale = baseline - {f.key for f in findings}
    if args.format_ == "json":
        _emit_document(_json_document(new, grandfathered, stale),
                       args.output)
    elif args.format_ == "sarif":
        _emit_document(
            to_sarif(new, grandfathered,
                     default_rule_table(FLOW_RULES)),
            args.output)
    else:
        for finding in new:
            print(finding.render())
        if grandfathered:
            print(f"({len(grandfathered)} grandfathered finding(s) "
                  f"suppressed by {baseline_path})")
    status = sys.stdout if args.format_ == "text" else sys.stderr
    if stale:
        print(f"{'error' if args.fail_stale else 'note'}: {len(stale)} "
              "baseline entr(ies) no longer triggered; "
              "regenerate with --write-baseline", file=status)
    if new:
        print(f"{len(new)} new finding(s)", file=status)
        return 1
    if stale and args.fail_stale:
        return 1
    print(f"lint clean: {len(findings)} finding(s), all grandfathered"
          if findings else "lint clean", file=status)
    return 0


def _run_rules() -> int:
    print("TP lint rules (python -m repro.analysis lint):")
    for code in sorted(RULES):
        print(f"  {code}  {RULES[code]}")
    print()
    print("TP flow rules (interprocedural; same lint subcommand):")
    for code in sorted(FLOW_RULES):
        print(f"  {code}  {FLOW_RULES[code]}")
    print()
    print("SAN sanitizer rules (config.sanitizer / FTLSan):")
    for code in sorted(SAN_RULES):
        print(f"  {code}  {SAN_RULES[code]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    return _run_rules()


if __name__ == "__main__":
    sys.exit(main())
