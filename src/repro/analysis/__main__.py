"""Command-line entry point: ``python -m repro.analysis``.

Subcommands:

* ``lint [paths...]`` — run every analysis pass (the single-file TP0xx
  AST rules, the interprocedural TP1xx flow rules, the TP2xx
  domain/unit pass and the TP3xx typestate/protocol pass) over Python
  sources (default target: ``src``).  The tree is parsed exactly once
  into a shared project that all passes reuse; ``--stats`` prints the
  per-pass wall-clock split.  Exits non-zero when findings outside the
  committed baseline exist; ``--write-baseline`` regenerates the
  baseline from the current findings instead.  ``--format
  text|json|sarif`` picks the report format (SARIF 2.1.0 feeds GitHub
  code scanning); ``--fail-stale`` turns stale baseline entries into a
  failure; ``--disable``/``--exclude`` select rules and prune subtrees
  per invocation (tests legitimately use ``assert``, so CI lints them
  with ``--disable TP003``).
* ``mutants`` — self-validate the TP2xx domain pass and the TP3xx
  protocol pass: apply the seeded mutants from
  :mod:`repro.analysis.mutants` to a throwaway copy of ``src`` and
  fail unless every mutant is flagged while the pristine copy stays
  clean.
* ``rules`` — print every rule family (TP0xx lint, TP1xx flow, TP2xx
  domain, TP3xx typestate, SAN sanitizer), grouped and sorted, with
  one-line descriptions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .checkers import SAN_RULES
from .flow import (DOMAIN_RULES, FLOW_RULES, PROTOCOL_RULES, Project,
                   analyze_project, to_sarif)
from .flow.sarif import default_rule_table
from .lint import (Finding, RULES, lint_parsed, load_baseline,
                   partition_findings, write_baseline)
from .mutants import MUTANTS, MutantApplyError, run_mutants

#: default baseline location, relative to the invocation directory
DEFAULT_BASELINE = ".analysis-baseline.json"

#: the report formats the lint subcommand can emit
FORMATS = ("text", "json", "sarif")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (TP AST rules + "
                    "TP1xx interprocedural flow rules) and rule "
                    "listing for the FTLSan runtime sanitizer.")
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="run every analysis pass over Python sources "
                     "(one shared parse)")
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    lint.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE})")
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new")
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0")
    lint.add_argument(
        "--fail-stale", action="store_true",
        help="exit non-zero when baseline entries no longer trigger "
             "(keeps the committed baseline honest in CI)")
    lint.add_argument(
        "--format", choices=FORMATS, default="text", dest="format_",
        metavar="FORMAT",
        help="report format: text (default), json, or sarif "
             "(SARIF 2.1.0 for GitHub code scanning)")
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the json/sarif document to FILE instead of stdout")
    lint.add_argument(
        "--disable", action="append", default=[], metavar="CODES",
        help="rule codes to skip (comma-separated, repeatable); e.g. "
             "--disable TP003 when linting test trees")
    lint.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="path prefixes to prune from the linted trees "
             "(repeatable); e.g. --exclude tests/fixtures")
    lint.add_argument(
        "--stats", action="store_true",
        help="print the per-pass wall-clock split (parse once, then "
             "lint/flow/domains/protocols over the shared project)")
    mutants = sub.add_parser(
        "mutants", help="self-validate the TP2xx domain and TP3xx "
                        "protocol passes against the seeded mutant "
                        "corpus")
    mutants.add_argument(
        "--src", default="src", metavar="DIR",
        help="source tree to copy and mutate (default: src)")
    mutants.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline used for the pristine-copy clean check "
             f"(default: {DEFAULT_BASELINE})")
    mutants.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="format_", metavar="FORMAT",
        help="report format: text (default) or json")
    mutants.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the json document to FILE instead of stdout")
    mutants.add_argument(
        "--list", action="store_true", dest="list_",
        help="print the mutant corpus without running the analysis")
    sub.add_parser(
        "rules", help="list every rule family (TP0xx lint, TP1xx "
                      "flow, TP2xx domain, TP3xx typestate, SAN "
                      "sanitizer)")
    return parser


def _disabled_codes(raw: Sequence[str]) -> Set[str]:
    codes: Set[str] = set()
    for chunk in raw:
        codes.update(c.strip() for c in chunk.split(",") if c.strip())
    return codes


def _collect_findings(args: argparse.Namespace,
                      ) -> Tuple[List[Finding], Dict[str, float]]:
    """Every pass over the requested trees, rule-filtered and sorted.

    The trees are read and parsed exactly once into a flow project;
    the TP0xx lint visits the same trees via :func:`lint_parsed` and
    the TP1xx/TP2xx/TP3xx passes share the project and its call graph.
    Returns the findings plus the per-pass wall-clock timings.
    """
    disabled = _disabled_codes(args.disable)
    timings: Dict[str, float] = {}
    started = time.perf_counter()  # tp: allow=TP002 - host-side stats
    project = Project.from_paths(args.paths, exclude=args.exclude)
    timings["parse"] = time.perf_counter() - started  # tp: allow=TP002 - host-side stats
    started = time.perf_counter()  # tp: allow=TP002 - host-side stats
    findings = lint_parsed(
        (module.path, module.source_lines, module.tree)
        for module in project.modules.values())
    timings["lint"] = time.perf_counter() - started  # tp: allow=TP002 - host-side stats
    findings += analyze_project(project, timings=timings)
    findings = [f for f in findings if f.rule not in disabled]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, timings


def _emit_document(document: dict, output: Optional[str]) -> None:
    text = json.dumps(document, indent=2) + "\n"
    if output:
        pathlib.Path(output).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def _json_document(new: List[Finding], grandfathered: List[Finding],
                   stale: Set[Tuple[str, str, str]]) -> dict:
    def _encode(finding: Finding, suppressed: bool) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "snippet": finding.snippet,
            "suppressed": suppressed,
        }

    return {
        "version": 1,
        "tool": "repro.analysis",
        "findings": ([_encode(f, False) for f in new]
                     + [_encode(f, True) for f in grandfathered]),
        "summary": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline_entries": [
                {"rule": rule, "path": path, "snippet": snippet}
                for rule, path, snippet in sorted(stale)],
        },
    }


def _format_stats(timings: Dict[str, float]) -> str:
    order = ("parse", "lint", "flow", "domains", "protocols")
    parts = [f"{label} {timings[label]*1000.0:.0f}ms"
             for label in order if label in timings]
    total = sum(timings.values())
    return (f"stats: {' | '.join(parts)} "
            f"(total {total*1000.0:.0f}ms, one shared parse)")


def _run_lint(args: argparse.Namespace) -> int:
    findings, timings = _collect_findings(args)
    if args.stats:
        print(_format_stats(timings), file=sys.stderr)
    baseline_path = pathlib.Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    baseline = (set() if args.no_baseline
                else load_baseline(baseline_path))
    new, grandfathered = partition_findings(findings, baseline)
    stale = baseline - {f.key for f in findings}
    if args.format_ == "json":
        _emit_document(_json_document(new, grandfathered, stale),
                       args.output)
    elif args.format_ == "sarif":
        _emit_document(
            to_sarif(new, grandfathered,
                     default_rule_table({**FLOW_RULES,
                                         **DOMAIN_RULES,
                                         **PROTOCOL_RULES})),
            args.output)
    else:
        for finding in new:
            print(finding.render())
        if grandfathered:
            print(f"({len(grandfathered)} grandfathered finding(s) "
                  f"suppressed by {baseline_path})")
    status = sys.stdout if args.format_ == "text" else sys.stderr
    if stale:
        print(f"{'error' if args.fail_stale else 'note'}: {len(stale)} "
              "baseline entr(ies) no longer triggered; "
              "regenerate with --write-baseline", file=status)
    if new:
        print(f"{len(new)} new finding(s)", file=status)
        return 1
    if stale and args.fail_stale:
        return 1
    print(f"lint clean: {len(findings)} finding(s), all grandfathered"
          if findings else "lint clean", file=status)
    return 0


def _run_mutants(args: argparse.Namespace) -> int:
    if args.list_:
        for mutant in MUTANTS:
            print(f"{mutant.mid}  {mutant.rule}  {mutant.path}: "
                  f"{mutant.description}")
        return 0
    try:
        report = run_mutants(src_root=args.src, baseline=args.baseline)
    except MutantApplyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format_ == "json":
        _emit_document(report.to_json(), args.output)
    else:
        for finding in report.pristine_new:
            print(f"pristine: {finding.render()}")
        for result in report.results:
            verdict = "killed" if result.killed else "SURVIVED"
            rules = ",".join(sorted({f.rule for f in result.delta}))
            print(f"{result.mutant.mid}  {verdict:8s} "
                  f"{result.mutant.rule}  {result.mutant.path}: "
                  f"{result.mutant.description}"
                  + (f"  [{rules}]" if rules else ""))
    status = sys.stdout if args.format_ == "text" else sys.stderr
    if report.pristine_new:
        print(f"{len(report.pristine_new)} finding(s) on the pristine "
              "copy beyond the baseline", file=status)
    if report.survivors:
        print(f"{len(report.survivors)} mutant(s) survived",
              file=status)
    if report.ok:
        print(f"all {len(report.results)} mutant(s) killed; pristine "
              "copy clean", file=status)
    return 0 if report.ok else 1


#: the rule families the ``rules`` subcommand prints, in print order
_RULE_FAMILIES = (
    ("TP0xx AST lint rules (python -m repro.analysis lint):", RULES),
    ("TP1xx interprocedural flow rules (same lint subcommand):",
     FLOW_RULES),
    ("TP2xx domain/unit rules (same lint subcommand; self-validated "
     "by the mutants subcommand):", DOMAIN_RULES),
    ("TP3xx typestate/protocol rules (same lint subcommand; CFGs with "
     "exception edges, self-validated by the mutants subcommand):",
     PROTOCOL_RULES),
    ("SANxxx sanitizer rules (config.sanitizer / FTLSan):", SAN_RULES),
)


def _run_rules() -> int:
    for index, (title, table) in enumerate(_RULE_FAMILIES):
        if index:
            print()
        print(title)
        for code in sorted(table):
            print(f"  {code}  {table[code]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "mutants":
        return _run_mutants(args)
    return _run_rules()


if __name__ == "__main__":
    sys.exit(main())
