"""Command-line entry point: ``python -m repro.analysis``.

Subcommands:

* ``lint [paths...]`` — run the TP-rule AST lint pass (default target:
  ``src``).  Exits non-zero when findings outside the committed
  baseline exist; ``--write-baseline`` regenerates the baseline from
  the current findings instead.
* ``rules`` — print every TP lint rule and SAN sanitizer rule with its
  one-line description.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .checkers import SAN_RULES
from .lint import (RULES, lint_paths, load_baseline, partition_findings,
                   write_baseline)

#: default baseline location, relative to the invocation directory
DEFAULT_BASELINE = ".analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (TP rules) and "
                    "rule listing for the FTLSan runtime sanitizer.")
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="run the AST lint pass over Python sources")
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    lint.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE})")
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new")
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0")
    sub.add_parser(
        "rules", help="list every TP lint rule and SAN sanitizer rule")
    return parser


def _run_lint(args: argparse.Namespace) -> int:
    findings = lint_paths(args.paths)
    baseline_path = pathlib.Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    baseline = (set() if args.no_baseline
                else load_baseline(baseline_path))
    new, grandfathered = partition_findings(findings, baseline)
    for finding in new:
        print(finding.render())
    if grandfathered:
        print(f"({len(grandfathered)} grandfathered finding(s) "
              f"suppressed by {baseline_path})")
    stale = baseline - {f.key for f in findings}
    if stale:
        print(f"note: {len(stale)} baseline entr(ies) no longer "
              "triggered; consider --write-baseline")
    if new:
        print(f"{len(new)} new finding(s)")
        return 1
    print(f"lint clean: {len(findings)} finding(s), all grandfathered"
          if findings else "lint clean")
    return 0


def _run_rules() -> int:
    print("TP lint rules (python -m repro.analysis lint):")
    for code in sorted(RULES):
        print(f"  {code}  {RULES[code]}")
    print()
    print("SAN sanitizer rules (config.sanitizer / FTLSan):")
    for code in sorted(SAN_RULES):
        print(f"  {code}  {SAN_RULES[code]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    return _run_rules()


if __name__ == "__main__":
    sys.exit(main())
