"""Custom AST lint pass enforcing the project's structural rules.

The simulator's correctness claims rest on properties a generic linter
cannot know about: deterministic replay (PR 1's ``FaultPlan`` re-fires
the same faults only if nothing consults wall-clock time or a shared
RNG), invariant checks that must survive ``python -O`` (so no bare
``assert`` in ``src/``), frozen configuration (results are only
comparable if a run cannot mutate its config mid-flight), compact cache
nodes (``__slots__`` on every ``LRUNode`` subclass — the byte-budget
model assumes them), and a single flash entry point (every page
operation must pass through :class:`~repro.flash.FlashMemory` so the
:class:`~repro.faults.FaultInjector` sees it).

Each rule has a ``TP0xx`` code:

========  ==============================================================
TP001     unseeded / process-global randomness in simulation code
TP002     wall-clock time in simulation code (breaks deterministic replay)
TP003     bare ``assert`` (stripped under ``python -O``)
TP004     mutation of a frozen config dataclass
TP005     ``LRUNode`` subclass without ``__slots__``
TP006     flash page operation bypassing ``FlashMemory``/``FaultInjector``
========  ==============================================================

Suppression: append ``# tp: allow=TP0xx`` (comma-separated for several
codes) to the offending line with a short justification.  Grandfathered
findings live in a committed baseline file (see :func:`load_baseline`);
the lint exits non-zero only on findings that are in neither.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: every lint rule, code -> one-line description
RULES: Dict[str, str] = {
    "TP001": ("unseeded or process-global randomness in simulation code "
              "(use random.Random(seed) so FaultPlan replay stays "
              "deterministic)"),
    "TP002": ("wall-clock time in simulation code (time.time / "
              "datetime.now break deterministic replay; derive time from "
              "op counts)"),
    "TP003": ("bare assert (stripped under python -O); raise a typed "
              "error from repro.errors instead"),
    "TP004": "mutation of a frozen config dataclass",
    "TP005": "LRUNode subclass without __slots__",
    "TP006": ("direct flash page operation bypassing FlashMemory (and "
              "therefore the FaultInjector)"),
}

#: process-global random functions (module-level ``random.*``)
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "getrandbits", "seed", "triangular", "vonmisesvariate",
})

#: dotted call names that read the wall clock
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})

#: attribute names whose receivers are frozen config objects by
#: project convention (SimulationConfig / SSDConfig / TPFTLConfig ...)
_CONFIG_NAMES = frozenset({
    "config", "cfg", "ssd_config", "sim_config", "cache_cfg", "ssd",
    "tpftl",
})

#: page-level flash mutators that must only be called on a FlashMemory
_FLASH_OPS = frozenset({
    "program", "program_into", "erase", "mark_bad", "invalidate",
})

#: the root class whose subclasses must declare __slots__
_SLOTTED_ROOT = "LRUNode"

_ALLOW_RE = re.compile(r"tp:\s*allow=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, printable as ``path:line:col CODE message``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: stripped source line, used for line-number-stable baseline keys
    snippet: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line moves."""
        return (self.rule, self.path, self.snippet)

    def render(self) -> str:
        """Human-readable ``path:line:col [CODE] message`` diagnostic."""
        return (f"{self.path}:{self.line}:{self.col} [{self.rule}] "
                f"{self.message}")


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted source form of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _allowed_codes(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppression pragmas: ``# tp: allow=TP001,TP004``."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")
                     if code.strip()}
            allowed[lineno] = codes
    return allowed


class _FileVisitor(ast.NodeVisitor):
    """Single-pass rule evaluation over one module's AST."""

    def __init__(self, path: str, source_lines: Sequence[str],
                 in_flash_pkg: bool) -> None:
        self.path = path
        self.lines = source_lines
        self.in_flash_pkg = in_flash_pkg
        self.findings: List[Finding] = []
        self.allowed = _allowed_codes(source_lines)
        #: class name -> (base names, has __slots__, line)
        self.classes: Dict[str, Tuple[List[str], bool, int]] = {}

    # -- helpers -------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if rule in self.allowed.get(line, ()):  # suppressed in-line
            return
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        self.findings.append(Finding(rule=rule, path=self.path,
                                     line=line, col=col,
                                     message=message, snippet=snippet))

    # -- TP003 ---------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        """Flag every ``assert`` statement (TP003)."""
        self._flag("TP003", node,
                   "bare assert; raise SimInvariantError/FTLError from "
                   "repro.errors instead")
        self.generic_visit(node)

    # -- TP001 / TP002 / TP004 / TP006 (calls) -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        """Check call sites for TP001/TP002/TP004/TP006."""
        name = _dotted(node.func)
        if name is not None:
            self._check_random_call(node, name)
            self._check_clock_call(node, name)
            if name == "object.__setattr__":
                self._flag("TP004", node,
                           "object.__setattr__ mutates a frozen "
                           "dataclass")
        self._check_flash_call(node)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, name: str) -> None:
        if name.startswith("numpy.random") or name.startswith("np.random"):
            self._flag("TP001", node,
                       f"{name} uses numpy's global RNG; seed an "
                       "explicit Generator instead")
            return
        parts = name.split(".")
        if (len(parts) == 2 and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_FNS):
            self._flag("TP001", node,
                       f"{name}() draws from the process-global RNG; "
                       "use a seeded random.Random instance")
            return
        if name.endswith("random.Random") or name == "random.Random":
            if not node.args and not node.keywords:
                self._flag("TP001", node,
                           "random.Random() without a seed is "
                           "non-deterministic; pass an explicit seed")

    def _check_clock_call(self, node: ast.Call, name: str) -> None:
        for clock in _WALL_CLOCK:
            if name == clock or name.endswith("." + clock):
                self._flag("TP002", node,
                           f"{name}() reads the wall clock; simulation "
                           "time must derive from operation counts")
                return

    def _check_flash_call(self, node: ast.Call) -> None:
        if self.in_flash_pkg:
            return  # FlashMemory/Block themselves implement the ops
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _FLASH_OPS:
            return
        receiver = _dotted(func.value)
        if receiver is not None and (receiver == "flash"
                                     or receiver.endswith(".flash")):
            return  # routed through FlashMemory: injector consulted
        shown = receiver if receiver is not None else "<expr>"
        self._flag("TP006", node,
                   f"{shown}.{func.attr}() operates on flash pages "
                   "directly; route through FlashMemory so the "
                   "FaultInjector sees the operation")

    # -- TP004 (attribute assignment) ----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        """Check assignment targets for frozen-config mutation (TP004)."""
        for target in node.targets:
            self._check_config_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Check augmented assignments for frozen-config mutation."""
        self._check_config_target(node.target)
        self.generic_visit(node)

    def _check_config_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        receiver = _dotted(target.value)
        if receiver is None:
            return
        base = receiver.split(".")[-1]
        if base in _CONFIG_NAMES:
            self._flag("TP004", target,
                       f"assignment to {receiver}.{target.attr} mutates "
                       "a frozen config; use dataclasses.replace / "
                       ".scaled() instead")

    # -- TP005 (collection pass; resolution happens across files) ------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Record class bases and ``__slots__`` presence (for TP005)."""
        bases: List[str] = []
        for b in node.bases:
            dotted = _dotted(b)
            if dotted is None and isinstance(b, ast.Subscript):
                dotted = _dotted(b.value)  # Generic[K] and friends
            if dotted is not None:
                bases.append(dotted.split(".")[-1])
        has_slots = any(
            isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets)
            for stmt in node.body)
        self.classes[node.name] = (bases, has_slots, node.lineno)
        self.generic_visit(node)


def _resolve_slots(visitors: Sequence[_FileVisitor]) -> List[Finding]:
    """Cross-file TP005: transitive LRUNode subclasses need __slots__."""
    classes: Dict[str, Tuple[List[str], bool, int, _FileVisitor]] = {}
    for visitor in visitors:
        for name, (bases, has_slots, line) in visitor.classes.items():
            classes[name] = (bases, has_slots, line, visitor)
    slotted_family: Set[str] = {_SLOTTED_ROOT}
    changed = True
    while changed:
        changed = False
        for name, (bases, _, _, _) in classes.items():
            if name not in slotted_family and (
                    set(bases) & slotted_family):
                slotted_family.add(name)
                changed = True
    findings: List[Finding] = []
    for name in sorted(slotted_family - {_SLOTTED_ROOT}):
        if name not in classes:
            continue
        _, has_slots, line, visitor = classes[name]
        if not has_slots:
            if "TP005" in visitor.allowed.get(line, ()):
                continue
            snippet = ""
            if 1 <= line <= len(visitor.lines):
                snippet = visitor.lines[line - 1].strip()
            findings.append(Finding(
                rule="TP005", path=visitor.path, line=line, col=0,
                message=(f"class {name} subclasses {_SLOTTED_ROOT} but "
                         "declares no __slots__ (cache nodes must stay "
                         "dict-free for the byte-budget model)"),
                snippet=snippet))
    return findings


def _default_pruned(component: str) -> bool:
    """Path components never worth analyzing when walking a tree:
    bytecode caches, hidden directories (``.git``, ``.venv``, ...) and
    packaging metadata."""
    return (component == "__pycache__" or component.startswith(".")
            or component.endswith(".egg-info"))


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> List[pathlib.Path]:
    """All ``*.py`` files under the given files/directories, sorted.

    Walking a directory prunes ``__pycache__``, hidden and
    ``*.egg-info`` components below it by default (an explicitly named
    file is taken as-is, and so is the walked root itself — only
    components *under* it are filtered).  ``exclude`` is additive on
    top: it prunes whole subtrees by path prefix (posix form), so
    deliberately-dirty fixture directories can sit inside a linted
    tree: ``iter_python_files(["tests"], exclude=["tests/fixtures"])``.
    """
    prefixes = [pathlib.PurePosixPath(e).as_posix().rstrip("/")
                for e in exclude]

    def _excluded(path: pathlib.Path) -> bool:
        posix = path.as_posix()
        return any(posix == p or posix.startswith(p + "/")
                   for p in prefixes)

    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(
                f for f in sorted(path.rglob("*.py"))
                if not _excluded(f)
                and not any(_default_pruned(part)
                            for part in f.relative_to(path).parts))
        elif path.suffix == ".py" and not _excluded(path):
            files.append(path)
    return sorted(set(files))


def normalize_path(path: pathlib.Path) -> str:
    """Canonical finding/baseline path: repo-relative POSIX when the
    file sits under the current directory, absolute POSIX otherwise.

    Every pass (TP0xx lint, TP1xx/TP2xx flow) keys findings and
    baseline entries by this string, so invoking the CLI as
    ``lint src`` or ``lint ./src`` or ``lint $PWD/src`` produces
    identical baselines and ``--fail-stale`` never sees phantom
    entries from path-spelling drift.
    """
    resolved = path.resolve()
    try:
        return resolved.relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text (single-file rules + TP005)."""
    in_flash = "flash" in pathlib.PurePath(path).parts
    visitor = _FileVisitor(path, source.splitlines(), in_flash)
    visitor.visit(ast.parse(source, filename=path))
    return visitor.findings + _resolve_slots([visitor])


def lint_parsed(files: Iterable[Tuple[str, Sequence[str], ast.Module]],
                ) -> List[Finding]:
    """Lint already-parsed modules given as ``(path, lines, tree)``.

    This is the parse-once entry: the CLI parses every file exactly one
    time into the flow pass's project and feeds the same trees here,
    instead of re-reading and re-parsing the whole tree per pass.
    """
    visitors: List[_FileVisitor] = []
    findings: List[Finding] = []
    for path, source_lines, tree in files:
        in_flash = "flash" in pathlib.PurePath(path).parts
        visitor = _FileVisitor(path, list(source_lines), in_flash)
        visitor.visit(tree)
        visitors.append(visitor)
        findings.extend(visitor.findings)
    findings.extend(_resolve_slots(visitors))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_paths(paths: Sequence[str],
               exclude: Sequence[str] = ()) -> List[Finding]:
    """Lint every Python file under ``paths``; returns all findings."""
    parsed: List[Tuple[str, Sequence[str], ast.Module]] = []
    for file in iter_python_files(paths, exclude=exclude):
        rel = normalize_path(file)
        source = file.read_text(encoding="utf-8")
        parsed.append((rel, source.splitlines(),
                       ast.parse(source, filename=rel)))
    return lint_parsed(parsed)


# ----------------------------------------------------------------------
# Baseline (grandfathered findings)
# ----------------------------------------------------------------------
def load_baseline(path: pathlib.Path) -> Set[Tuple[str, str, str]]:
    """Load the committed baseline; missing file means empty baseline."""
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {(item["rule"], item["path"], item["snippet"])
            for item in payload.get("findings", [])}


def write_baseline(path: pathlib.Path,
                   findings: Iterable[Finding]) -> None:
    """Write the current findings as the new grandfathered baseline."""
    payload = {
        "version": 1,
        "comment": ("Grandfathered repro.analysis lint findings; "
                    "regenerate with `python -m repro.analysis lint "
                    "--write-baseline`"),
        "findings": [
            {"rule": f.rule, "path": f.path, "snippet": f.snippet}
            for f in sorted(findings, key=lambda f: f.key)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


def partition_findings(
        findings: Sequence[Finding],
        baseline: Set[Tuple[str, str, str]],
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, grandfathered) against a baseline."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.key in baseline else new).append(finding)
    return new, old
