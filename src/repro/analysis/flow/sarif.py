"""SARIF 2.1.0 serialization of lint + flow findings.

One ``run`` with one ``tool.driver`` describing every TP rule (the
single-file ``TP0xx`` set and the interprocedural ``TP1xx`` set), one
``result`` per finding.  Grandfathered findings are emitted with a
``suppressions`` entry of kind ``external`` (the committed baseline)
instead of being dropped, so code-scanning consumers can distinguish
"fixed" from "hidden".  Pragma-suppressed findings never reach this
layer — the analyses drop them at flag time, exactly as the text
format does.

``partialFingerprints`` carries a hash of the baseline key
``(rule, path, snippet)``, so GitHub code scanning tracks a finding
across unrelated line moves just like the baseline file does.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from ..lint import RULES, Finding

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "rule_severity", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: rules whose findings are advisory rather than correctness-breaking
_WARNING_RULES = frozenset({"TP104", "TP305"})


def rule_severity(code: str) -> str:
    """SARIF level for a rule code (``error`` unless advisory)."""
    return "warning" if code in _WARNING_RULES else "error"


def _fingerprint(finding: Finding) -> str:
    text = "|".join(finding.key)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def _rule_descriptor(code: str, description: str) -> Dict[str, object]:
    return {
        "id": code,
        "name": code,
        "shortDescription": {"text": description.split(" (")[0]},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": rule_severity(code)},
        "helpUri": ("https://github.com/tpftl/repro/blob/main/docs/"
                    "architecture.md#static-analysis--sanitizers"),
    }


def _result(finding: Finding, rule_index: Dict[str, int],
            suppressed: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": rule_severity(finding.rule),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": finding.col + 1,
                    "snippet": {"text": finding.snippet},
                },
            },
        }],
        "partialFingerprints": {
            "tpBaselineKey/v1": _fingerprint(finding),
        },
    }
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": ("grandfathered in the committed "
                              "analysis baseline"),
        }]
    return result


def to_sarif(new: Sequence[Finding], grandfathered: Sequence[Finding],
             all_rules: Dict[str, str],
             tool_version: str = "1.0.0") -> Dict[str, object]:
    """Build the complete SARIF 2.1.0 log document.

    ``all_rules`` maps every reportable rule code to its one-line
    description (pass ``{**RULES, **FLOW_RULES}``); codes are emitted
    sorted so ``ruleIndex`` values are stable across runs.
    """
    codes = sorted(all_rules)
    rule_index = {code: i for i, code in enumerate(codes)}
    results: List[Dict[str, object]] = []
    for finding in new:
        results.append(_result(finding, rule_index, suppressed=False))
    for finding in grandfathered:
        results.append(_result(finding, rule_index, suppressed=True))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri": ("https://github.com/tpftl/repro"),
                    "version": tool_version,
                    "rules": [_rule_descriptor(code, all_rules[code])
                              for code in codes],
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def default_rule_table(flow_rules: Dict[str, str]) -> Dict[str, str]:
    """The combined lint + flow rule table for the SARIF driver."""
    merged: Dict[str, str] = dict(RULES)
    merged.update(flow_rules)
    return merged
