"""Per-class mutable-state inventory for the flow analysis.

For every class the project parser walks each method once and records
what happens to ``self.<attr>``:

* **assignments** — plain / annotated stores (``self.x = ...``), the
  events that *(re)initialize* state;
* **mutations** — everything that changes state without rebinding it:
  augmented assigns (``self.x += ...``), subscript stores and deletes
  (``self.busy[ch] = ...``), and in-place mutator calls
  (``self.queue.append(...)``, ``.clear()``, ``.update()`` ...);
* **config aliases** — attributes bound to a *field of a frozen
  config* (``self.rules = config.rules``), the TP103 seed;
* **attribute types** — a light inference (``self.flash =
  FlashMemory(...)``, annotated ``__init__`` parameters) that lets the
  call graph resolve ``self.flash.program(...)`` to a real method;
* **set-typed attributes** — attributes initialized from set
  expressions, the TP104 seed.

Stores one level deeper (``self.ftl.metrics = ...``) are deliberately
*not* treated as mutations of ``ftl``: they mutate the pointed-to
object, which owns its own reset discipline, and counting them would
drown TP101 in false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..lint import _CONFIG_NAMES, _dotted

__all__ = [
    "AttrEvent",
    "ClassState",
    "MUTATOR_METHODS",
    "collect_class_state",
]

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "reverse",
    "rotate", "setdefault", "sort", "update",
})

#: assignment value shapes that produce a set
_SET_CTORS = frozenset({"set", "frozenset"})


@dataclass(frozen=True)
class AttrEvent:
    """One store/mutation of ``self.<attr>`` inside a method.

    ``kind`` is one of ``assign`` (rebinding store), ``augassign``,
    ``subscript`` (item store/delete through the attribute) or
    ``mutcall`` (in-place mutator method call); ``detail`` carries the
    mutator name or the aliased config chain where relevant.
    """

    attr: str
    kind: str
    method: str
    line: int
    col: int
    detail: str = ""


@dataclass
class ClassState:
    """Everything the rules need to know about one class's attributes."""

    #: method name -> attrs (re)bound by a plain/annotated assignment
    assigns: Dict[str, Set[str]] = field(default_factory=dict)
    #: method name -> in-place mutation events (no rebinding)
    mutations: Dict[str, List[AttrEvent]] = field(default_factory=dict)
    #: method name -> rebinding-store events (for run-path reporting)
    assign_events: Dict[str, List[AttrEvent]] = field(default_factory=dict)
    #: attr -> the config field chain it aliases (``config.rules``)
    aliases: Dict[str, AttrEvent] = field(default_factory=dict)
    #: attr -> inferred class qname (for call resolution)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attrs initialized from set literals/constructors/comprehensions
    set_attrs: Set[str] = field(default_factory=set)

    def assigned_in(self, methods: Set[str]) -> Set[str]:
        """Attrs rebound by a plain assignment in any of ``methods``."""
        out: Set[str] = set()
        for name in methods:
            out |= self.assigns.get(name, set())
        return out

    def events_in(self, methods: Set[str],
                  include_assigns: bool = False) -> List[AttrEvent]:
        """Mutation events in ``methods`` (optionally also rebinds)."""
        events: List[AttrEvent] = []
        for name in sorted(methods):
            events.extend(self.mutations.get(name, []))
            if include_assigns:
                events.extend(self.assign_events.get(name, []))
        return events


def _reads_self_attr(node: ast.AST, attr: str) -> bool:
    """True when ``node`` reads ``self.<attr>`` anywhere inside."""
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute) and sub.attr == attr
                and isinstance(sub.value, ast.Name)
                and sub.value.id in ("self", "cls")):
            return True
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """``x`` when ``node`` is exactly ``self.x`` / ``cls.x``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")):
        return node.attr
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that evaluate to a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CTORS
    return False


def _config_chain(node: ast.AST) -> Optional[str]:
    """The aliased frozen-config field chain, or None.

    Matches ``config.<field>...`` / ``cfg.<field>...`` (any name in the
    lint pass's frozen-config convention) and the attribute form
    ``self.config.<field>...``.  A bare config reference (no field) is
    not an alias — TP004 already polices stores through it.
    """
    dotted = _dotted(node)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[0] in ("self", "cls"):
        parts = parts[1:]
    if len(parts) >= 2 and parts[0] in _CONFIG_NAMES:
        return ".".join(parts)
    return None


class _MethodScanner(ast.NodeVisitor):
    """Collect :class:`AttrEvent` records from one method body."""

    def __init__(self, state: ClassState, method: str,
                 annotations: Dict[str, str],
                 resolve_class: Callable[[str], Optional[str]]) -> None:
        self.state = state
        self.method = method
        self.annotations = annotations
        self.resolve_class = resolve_class

    # -- helpers -------------------------------------------------------
    def _record_assign(self, attr: str, node: ast.AST,
                       value: Optional[ast.AST]) -> None:
        self.state.assigns.setdefault(self.method, set()).add(attr)
        detail = ""
        if value is not None and _reads_self_attr(value, attr):
            # self-referential rebinding (self.x = self.x + 1): the
            # previous value flows in, so this is not a fresh init
            detail = "selfref"
        self.state.assign_events.setdefault(self.method, []).append(
            AttrEvent(attr=attr, kind="assign", method=self.method,
                      line=node.lineno, col=node.col_offset,
                      detail=detail))
        if value is None:
            return
        chain = _config_chain(value)
        if chain is not None:
            self.state.aliases.setdefault(attr, AttrEvent(
                attr=attr, kind="alias", method=self.method,
                line=node.lineno, col=node.col_offset, detail=chain))
        if _is_set_expr(value):
            self.state.set_attrs.add(attr)
        self._infer_type(attr, value)

    def _infer_type(self, attr: str, value: ast.AST) -> None:
        if attr in self.state.attr_types:
            return
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                resolved = self.resolve_class(dotted)
                if resolved is not None:
                    self.state.attr_types[attr] = resolved
        elif isinstance(value, ast.Name):
            annotation = self.annotations.get(value.id)
            if annotation is not None:
                resolved = self.resolve_class(annotation)
                if resolved is not None:
                    self.state.attr_types[attr] = resolved

    def _record_mutation(self, attr: str, kind: str, node: ast.AST,
                         detail: str = "") -> None:
        self.state.mutations.setdefault(self.method, []).append(
            AttrEvent(attr=attr, kind=kind, method=self.method,
                      line=node.lineno, col=node.col_offset,
                      detail=detail))

    # -- stores --------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        """Record ``self.x = ...`` and ``self.x[i] = ...`` targets."""
        for target in node.targets:
            self._store_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Record annotated stores, resolving the annotation's type."""
        attr = _self_attr(node.target)
        if attr is not None:
            self._record_assign(attr, node, node.value)
            dotted = _dotted(node.annotation)
            if dotted is not None and attr not in self.state.attr_types:
                resolved = self.resolve_class(dotted)
                if resolved is not None:
                    self.state.attr_types[attr] = resolved
        elif isinstance(node.target, ast.Subscript):
            base = _self_attr(node.target.value)
            if base is not None:
                self._record_mutation(base, "subscript", node)
        self.generic_visit(node)

    def _store_target(self, target: ast.AST,
                      value: Optional[ast.AST]) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._record_assign(attr, target, value)
            return
        if isinstance(target, ast.Subscript):
            base = _self_attr(target.value)
            if base is not None:
                self._record_mutation(base, "subscript", target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element, None)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Record ``self.x += ...`` / ``self.x[i] += ...`` mutations."""
        attr = _self_attr(node.target)
        if attr is not None:
            self._record_mutation(attr, "augassign", node)
        elif isinstance(node.target, ast.Subscript):
            base = _self_attr(node.target.value)
            if base is not None:
                self._record_mutation(base, "subscript", node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        """Record ``del self.x[i]`` as an in-place mutation."""
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = _self_attr(target.value)
                if base is not None:
                    self._record_mutation(base, "subscript", node)
        self.generic_visit(node)

    # -- mutator calls -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        """Record ``self.x.append(...)``-style in-place mutator calls."""
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS):
            base = _self_attr(func.value)
            if base is not None:
                self._record_mutation(base, "mutcall", node,
                                      detail=func.attr)
            elif (isinstance(func.value, ast.Subscript)):
                inner = _self_attr(func.value.value)
                if inner is not None:
                    self._record_mutation(inner, "mutcall", node,
                                          detail=func.attr)
        self.generic_visit(node)

    # -- nested definitions are their own scope ------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Skip nested defs; their stores are not method-level state."""

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Skip nested defs; their stores are not method-level state."""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Skip nested classes; the project indexes them separately."""


def _param_annotations(node: ast.AST) -> Dict[str, str]:
    """Dotted annotation text per parameter of a function node."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return {}
    out: Dict[str, str] = {}
    args = list(node.args.posonlyargs) + list(node.args.args)
    args += list(node.args.kwonlyargs)
    for arg in args:
        if arg.annotation is None:
            continue
        annotation: ast.AST = arg.annotation
        if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str):  # string annotation
            try:
                annotation = ast.parse(annotation.value,
                                       mode="eval").body
            except SyntaxError:
                continue
        if isinstance(annotation, ast.Subscript):  # Optional[T] etc.
            annotation = annotation.slice
        dotted = _dotted(annotation)
        if dotted is not None:
            out[arg.arg] = dotted
    return out


def collect_class_state(
        node: ast.ClassDef,
        resolve_class: Callable[[str], Optional[str]]) -> ClassState:
    """Scan every method of ``node`` into one :class:`ClassState`."""
    state = ClassState()
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scanner = _MethodScanner(state, stmt.name,
                                 _param_annotations(stmt), resolve_class)
        for body_stmt in stmt.body:
            scanner.visit(body_stmt)
    return state
