"""The interprocedural ``TP1xx`` rules over the flow engine.

Each rule is a function ``(project, engine) -> findings`` registered in
:data:`FLOW_RULES`.  They share the lint pass's :class:`Finding` type
and ``(rule, path, snippet)`` baseline keys, so the CLI treats both
passes uniformly (baseline, pragmas, formats).

========  ==============================================================
TP101     per-run state mutated on the run path but never re-initialized
          on the reset path (the PR-4 channel-queue leak class)
TP102     transitive flash bypass: a call chain that reaches a direct
          flash page operation through helpers (the PR-2
          ``_invalidate_remaining`` class); generalizes TP006
TP103     a mutable field of a frozen config aliased into an attribute
          and later mutated in place (writes through to the config)
TP104     unordered ``set`` iteration feeding simulation-visible state
          on the run path (nondeterministic replay order)
========  ==============================================================

Suppression uses the same pragma as the lint pass
(``# tp: allow=TP101 - reason``).
"""

from __future__ import annotations

import ast
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..lint import _FLASH_OPS, Finding, _dotted
from .callgraph import FunctionInfo, ModuleInfo, Project
from .domains import DOMAIN_RULES, check_domains
from .engine import FlowEngine
from .state import AttrEvent, _is_set_expr
from .typestate import PROTOCOL_RULES, check_protocols

__all__ = [
    "DOMAIN_RULES",
    "FLOW_RULES",
    "PROTOCOL_RULES",
    "RESET_METHODS",
    "RUN_ROOTS",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
]

#: every flow rule, code -> one-line description
FLOW_RULES: Dict[str, str] = {
    "TP101": ("per-run state mutated on the run path but not "
              "re-initialized on the reset path (state leaks across "
              "run() calls)"),
    "TP102": ("call chain reaches a direct flash page operation "
              "through helpers, bypassing FlashMemory (transitive "
              "form of TP006)"),
    "TP103": ("mutable field of a frozen config aliased into an "
              "attribute and mutated in place (writes through to the "
              "shared config)"),
    "TP104": ("unordered set iteration on the simulation path "
              "(replay-visible order is nondeterministic; iterate "
              "sorted(...))"),
}

#: methods that constitute a class's per-run reset protocol
RESET_METHODS: Tuple[str, ...] = ("_reset_queues", "reset")
#: entry points of the serve/run path
RUN_ROOTS: Tuple[str, ...] = ("run", "serve_request")

_Rule = Callable[[Project, FlowEngine], List[Finding]]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _finding(project: Project, module: ModuleInfo, rule: str, line: int,
             col: int, message: str) -> Optional[Finding]:
    """Build a finding unless a pragma on ``line`` suppresses it."""
    if project.suppressed(module, line, rule):
        return None
    return Finding(rule=rule, path=module.path, line=line, col=col,
                   message=message,
                   snippet=project.snippet(module, line))


def _in_flash_package(path: str) -> bool:
    return "flash" in path.split("/")


def _self_call_closure(project: Project, cls_qname: str,
                       roots: Sequence[str]) -> Tuple[Set[str], bool]:
    """Method *names* reachable from ``roots`` via ``self.m()`` calls,
    resolved through ``cls_qname``'s effective method table, plus
    whether every self-call resolved (an unresolved target means the
    class is abstract with respect to this protocol — a template hook
    only subclasses implement)."""
    table = project.effective_methods(cls_qname)
    seen: Set[str] = set()
    complete = True
    queue = [r for r in roots if r in table]
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        for site in table[name].calls:
            if site.kind != "self":
                continue
            if site.target in table:
                queue.append(site.target)
            elif not site.target.startswith("__"):
                complete = False
    return seen, complete


def _defining_state(project: Project, cls_qname: str,
                    method: str) -> Optional[Tuple[str, "FunctionInfo"]]:
    """(defining class qname, FunctionInfo) for an effective method."""
    fn = project.effective_methods(cls_qname).get(method)
    if fn is None or fn.cls is None:
        return None
    return fn.cls, fn


# ----------------------------------------------------------------------
# TP101: per-run state reset
# ----------------------------------------------------------------------
def check_state_reset(project: Project,
                      engine: FlowEngine) -> List[Finding]:
    """Flag run-path mutations of attributes the reset path forgets.

    Applies to every class whose effective method table exposes both a
    run root (``run``/``serve_request``) and a reset protocol method
    (``_reset_queues``/``reset``) — the :class:`DeviceModel` contract.
    A plain rebinding store on the run path counts as an
    *initialization* (the attribute gets a fresh value every run)
    unless its right-hand side reads the attribute itself, in which
    case the previous run's value flows into this run — exactly the
    PR-4 cursor/queue leak.
    """
    findings: Dict[Tuple[str, int, str], Finding] = {}
    for cls_qname in sorted(project.classes):
        table = project.effective_methods(cls_qname)
        reset_roots = [m for m in RESET_METHODS if m in table]
        run_roots = [m for m in RUN_ROOTS if m in table]
        if not reset_roots or not run_roots:
            continue
        reset_names, reset_complete = _self_call_closure(
            project, cls_qname, reset_roots)
        if not reset_complete:
            continue
        run_names, _ = _self_call_closure(project, cls_qname, run_roots)
        run_names -= reset_names
        run_names.discard("__init__")
        reset_assigned: Set[str] = set()
        for method in reset_names:
            owned = _defining_state(project, cls_qname, method)
            if owned is None:
                continue
            owner, _ = owned
            state = project.classes[owner].state
            if state is not None:
                reset_assigned |= state.assigns.get(method, set())
        fresh_assigned: Set[str] = set()
        leaky_events: List[Tuple[AttrEvent, str]] = []
        for method in sorted(run_names):
            owned = _defining_state(project, cls_qname, method)
            if owned is None:
                continue
            owner, fn = owned
            state = project.classes[owner].state
            if state is None:
                continue
            for event in state.assign_events.get(method, []):
                if event.detail == "selfref":
                    leaky_events.append((event, fn.path))
                else:
                    fresh_assigned.add(event.attr)
            for event in state.mutations.get(method, []):
                leaky_events.append((event, fn.path))
        initialized = reset_assigned | fresh_assigned
        for event, path in leaky_events:
            if event.attr in initialized:
                continue
            module = project.module_for_path(path)
            if module is None:
                continue
            key = (path, event.line, event.attr)
            if key in findings:
                continue
            reset_shown = "/".join(f"{m}()" for m in reset_roots)
            found = _finding(
                project, module, "TP101", event.line, event.col,
                f"self.{event.attr} is mutated on the run path "
                f"({event.method}) but never re-initialized on the "
                f"reset path ({reset_shown}); its value leaks across "
                "run() calls")
            if found is not None:
                findings[key] = found
    return list(findings.values())


# ----------------------------------------------------------------------
# TP102: transitive flash bypass
# ----------------------------------------------------------------------
def _direct_bypass_lines(project: Project,
                         fn: FunctionInfo) -> List[int]:
    """Lines in ``fn`` holding a direct unrouted flash page op
    (the TP006 pattern), minus pragma-suppressed ones."""
    module = project.modules[fn.module]
    lines: List[int] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _FLASH_OPS:
            continue
        receiver = _dotted(func.value)
        if receiver is not None and (receiver == "flash"
                                     or receiver.endswith(".flash")):
            continue
        if (project.suppressed(module, node.lineno, "TP006")
                or project.suppressed(module, node.lineno, "TP102")):
            continue
        lines.append(node.lineno)
    return lines


def check_flash_escape(project: Project,
                       engine: FlowEngine) -> List[Finding]:
    """Flag call sites whose callee transitively bypasses FlashMemory.

    Sources are functions outside the flash package containing a
    direct unrouted page operation (TP006 flags those sites
    themselves); the taint is closed backwards over the call graph so
    every caller that reaches a bypass through any number of helpers
    is reported at its call site — the PR-2
    ``_invalidate_remaining`` shape, where the mutation hid one
    helper away from the merge path.
    """
    sources = {fn.qname for fn in project.functions.values()
               if not _in_flash_package(fn.path)
               and _direct_bypass_lines(project, fn)}
    if not sources:
        return []
    tainted = engine.reaching(sources)
    findings: List[Finding] = []
    for qname in sorted(tainted):
        fn = project.functions[qname]
        if _in_flash_package(fn.path):
            continue
        module = project.modules[fn.module]
        for callee, site in engine.sites_into(qname, tainted):
            shown = site.target + "()"
            found = _finding(
                project, module, "TP102", site.line, site.col,
                f"{shown} transitively performs a flash page "
                f"operation bypassing FlashMemory (reaches "
                f"{callee}); route the mutation through self.flash "
                "so the FaultInjector observes it")
            if found is not None:
                findings.append(found)
    return findings


# ----------------------------------------------------------------------
# TP103: frozen-config escape
# ----------------------------------------------------------------------
def check_config_escape(project: Project,
                        engine: FlowEngine) -> List[Finding]:
    """Flag in-place mutation of attributes aliasing config fields.

    An alias ``self.x = config.field`` is harmless until some method —
    possibly in a subclass, possibly far from the alias — mutates
    ``self.x`` in place: the "frozen" config then changes under every
    other holder of the same object.  Rebinding stores and augmented
    assigns are exempt (they replace the reference instead of writing
    through it, or are ambiguous for immutable fields).
    """
    findings: List[Finding] = []
    for cls_qname in sorted(project.classes):
        info = project.classes[cls_qname]
        if info.state is None or not info.state.aliases:
            continue
        related = [cls_qname] + sorted(project.descendants(cls_qname))
        for attr in sorted(info.state.aliases):
            alias = info.state.aliases[attr]
            for holder in related:
                holder_info = project.classes.get(holder)
                if holder_info is None or holder_info.state is None:
                    continue
                for method in sorted(holder_info.state.mutations):
                    for event in holder_info.state.mutations[method]:
                        if event.attr != attr:
                            continue
                        if event.kind not in ("mutcall", "subscript"):
                            continue
                        module = project.module_for_path(
                            holder_info.path)
                        if module is None:
                            continue
                        how = (f".{event.detail}()"
                               if event.kind == "mutcall"
                               else "item assignment")
                        found = _finding(
                            project, module, "TP103", event.line,
                            event.col,
                            f"self.{attr} aliases frozen config "
                            f"field {alias.detail} (bound in "
                            f"{alias.method}()); in-place {how} "
                            "writes through to the shared config — "
                            "copy the field before mutating it")
                        if found is not None:
                            findings.append(found)
    return findings


# ----------------------------------------------------------------------
# TP104: nondeterministic iteration
# ----------------------------------------------------------------------
def _family_set_attrs(project: Project, cls_qname: str) -> Set[str]:
    attrs: Set[str] = set()
    for owner in [cls_qname] + project.ancestors(cls_qname):
        info = project.classes.get(owner)
        if info is not None and info.state is not None:
            attrs |= info.state.set_attrs
    return attrs


def _set_locals(fn_node: ast.AST) -> Set[str]:
    """Local names bound to set expressions inside one function."""
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _iter_loops(fn_node: ast.AST) -> List[Tuple[ast.AST, ast.expr]]:
    """(loop node, iterated expression) for every for/comprehension."""
    loops: List[Tuple[ast.AST, ast.expr]] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            loops.append((node, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                loops.append((node, generator.iter))
    return loops


def check_unordered_iteration(project: Project,
                              engine: FlowEngine) -> List[Finding]:
    """Flag set iteration in functions reachable from the run path.

    Only functions the simulation can actually reach (the forward
    closure of every ``run``/``serve_request`` method) are checked, so
    pure tooling/reporting code may iterate sets freely.  ``dict``
    iteration is insertion-ordered in the supported interpreters and
    is exempt; wrapping the set in ``sorted(...)`` silences the rule
    structurally.
    """
    roots = [fn.qname for fn in project.functions.values()
             if fn.cls is not None and fn.name in RUN_ROOTS]
    reachable = engine.reachable_from(roots)
    findings: List[Finding] = []
    for qname in sorted(reachable):
        fn = project.functions[qname]
        module = project.modules[fn.module]
        set_names = _set_locals(fn.node)
        set_attrs = (_family_set_attrs(project, fn.cls)
                     if fn.cls is not None else set())
        for loop, iterated in _iter_loops(fn.node):
            described: Optional[str] = None
            if _is_set_expr(iterated):
                described = "a set expression"
            elif (isinstance(iterated, ast.Name)
                  and iterated.id in set_names):
                described = f"set {iterated.id!r}"
            elif (isinstance(iterated, ast.Attribute)
                  and isinstance(iterated.value, ast.Name)
                  and iterated.value.id in ("self", "cls")
                  and iterated.attr in set_attrs):
                described = f"set attribute self.{iterated.attr}"
            if described is None:
                continue
            found = _finding(
                project, module, "TP104", iterated.lineno,
                iterated.col_offset,
                f"iterating over {described} on the simulation path; "
                "set order is nondeterministic across processes — "
                "iterate sorted(...) so replay stays deterministic")
            if found is not None:
                findings.append(found)
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
_RULE_IMPLS: Dict[str, _Rule] = {
    "TP101": check_state_reset,
    "TP102": check_flash_escape,
    "TP103": check_config_escape,
    "TP104": check_unordered_iteration,
}


def analyze_project(project: Project,
                    timings: Optional[Dict[str, float]] = None,
                    ) -> List[Finding]:
    """Run every flow rule (TP1xx + the TP2xx domain pass + the TP3xx
    typestate pass) over an already-parsed project.

    ``timings`` (when given) collects host-side per-pass wall-clock
    seconds under the keys ``flow``/``domains``/``protocols`` for the
    CLI's ``--stats`` line.
    """
    engine = FlowEngine(project)
    findings: List[Finding] = []

    def timed(label: str, pass_fn: Callable[[], List[Finding]]) -> None:
        started = time.perf_counter()  # tp: allow=TP002 - host-side stats
        findings.extend(pass_fn())
        if timings is not None:
            elapsed = time.perf_counter() - started  # tp: allow=TP002 - host-side stats
            timings[label] = timings.get(label, 0.0) + elapsed

    def run_flow_rules() -> List[Finding]:
        out: List[Finding] = []
        for code in sorted(_RULE_IMPLS):
            out.extend(_RULE_IMPLS[code](project, engine))
        return out

    timed("flow", run_flow_rules)
    timed("domains", lambda: check_domains(project, engine))
    timed("protocols", lambda: check_protocols(project, engine))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def analyze_paths(paths: Sequence[str],
                  exclude: Sequence[str] = ()) -> List[Finding]:
    """Parse ``paths`` into one project and run the flow rules."""
    return analyze_project(Project.from_paths(paths, exclude=exclude))


def analyze_source(source: str,
                   path: str = "flowcheck.py") -> List[Finding]:
    """Run the flow rules over a single in-memory module (tests)."""
    return analyze_project(Project.from_sources({path: source}))
