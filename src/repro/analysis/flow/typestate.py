"""Typestate checking over CFGs with exception edges (rules TP301-305).

This module is the protocol-analysis half of the tentpole: it evaluates
declarative :class:`ProtocolSpec` state machines (acquire/release pairs,
must-call-before orderings) over the per-function control-flow graphs
built by :mod:`repro.analysis.flow.cfg`, using the same fixed-point
worklist engine that powers the TP1xx pass.  The properties it proves
are *temporal*: not "is this value well-formed" but "does every path out
of this function — including the paths that unwind through exception
edges — restore the invariant".

The repo's real protocols are seeded as built-in specs:

* ``fastmode`` — ``FlashMemory.enter_fast_mode()`` must be paired with
  ``exit_fast_mode()`` on every exit, and ``fold_stats()`` may only run
  while fast mode is held (TP301/TP302).
* ``process``/``pipe`` — supervisor worker lifecycles: a started
  ``Process`` must be joined/terminated on all exits and both ``Pipe``
  ends must be closed or handed off (TP303).
* ``file`` — ``open()`` handles must be closed on all paths (TP301) and
  with-able resources should use ``with``/``try-finally`` (TP305).
* ``reset-before-run`` — the per-run device reset must dominate every
  ``serve_request`` dispatch on the run path (TP304).

Module authors can declare additional pairings in-file with a
``# tp: protocol(name=..., acquire=..., release=...)`` pragma; the spec
is scoped to the declaring module.

Abstract states per tracked resource key::

    virgin --construct--> inst --start--> held --release--> rel
      |                    (ctor specs with a start method)    |
      +--acquire--> held <------------------acquire-----------+
    any --escape--> esc   (stored/passed/returned: ownership left)

The analysis is a *may* analysis (union join).  Exception edges leave a
statement mid-flight, so only release/escape effects are applied along
them — an acquire that raised never acquired.  Escaped resources are
never reported: ownership transfer is the caller's problem, which keeps
the pass FP-safe on handoff patterns like the supervisor's ``_Running``
records.  One level of interprocedural summaries sharpens both edges and
events: "may raise" / "always raises" (over the PR-5 call graph) decides
where exception successors exist, and "releases what it was passed"
turns ``shutdown(conn)``-style calls into releases instead of escapes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lint import Finding, _dotted
from .callgraph import CallSite, FunctionInfo, ModuleInfo, Project
from .cfg import CFG, CFGNode, build_cfg, calls_in
from .engine import FlowEngine, fixed_point

__all__ = [
    "PROTOCOL_RULES",
    "PROTOCOL_SPECS",
    "ORDER_SPECS",
    "ProtocolSpec",
    "OrderSpec",
    "check_protocols",
]

PROTOCOL_RULES: Dict[str, str] = {
    "TP301": (
        "resource acquired but not released on every path out of the "
        "function, including exception edges (enter_fast_mode without "
        "exit_fast_mode in a finally, open() without close())"
    ),
    "TP302": (
        "release or held-only call without a dominating acquire: double "
        "release, or exit_fast_mode/fold_stats reachable outside the "
        "fast-mode window"
    ),
    "TP303": (
        "worker lifecycle leak: a started Process is not joined or "
        "terminated on all exits, or a Pipe connection is neither closed "
        "nor handed off"
    ),
    "TP304": (
        "run path entered without the per-run reset dominating it: "
        "serve_request is reachable before _reset_state on some path"
    ),
    "TP305": (
        "with-able resource acquired outside with/try-finally: the "
        "normal-path release is skipped when an exception unwinds"
    ),
}


@dataclass(frozen=True)
class ProtocolSpec:
    """A paired acquire/release protocol evaluated over every function.

    Two flavours share the dataclass.  *Receiver* specs (``acquire`` is
    non-empty) track any receiver expression the protocol methods are
    invoked on (``flash.enter_fast_mode()`` tracks key ``flash``,
    canonicalised through local aliases).  *Constructor* specs
    (``constructors`` non-empty) track names bound directly to a
    constructor call (``proc = ctx.Process(...)``), optionally moving
    through a ``start`` state before the resource is live.
    """

    name: str
    resource: str
    leak_rule: str
    release: Tuple[str, ...]
    acquire: Tuple[str, ...] = ()
    use: Tuple[str, ...] = ()
    constructors: Tuple[str, ...] = ()
    start: Tuple[str, ...] = ()
    withable: bool = False
    #: path parts whose modules are exempt (the implementation itself).
    exempt_parts: Tuple[str, ...] = ()
    #: non-empty for pragma-declared specs: only applies in this module.
    module_scope: Optional[str] = None

    @property
    def receiver_based(self) -> bool:
        """True for specs keyed by the method receiver expression."""
        return bool(self.acquire)


@dataclass(frozen=True)
class OrderSpec:
    """A must-call-before ordering: ``before`` dominates ``target``.

    Applies to functions whose name is in ``entry_names`` and that call
    ``target`` at all; methods additionally need a ``before`` method in
    their class's effective method table (so arbitrary ``run`` methods
    on unrelated classes stay out of scope).
    """

    name: str
    rule: str
    entry_names: Tuple[str, ...]
    before: Tuple[str, ...]
    target: Tuple[str, ...]


PROTOCOL_SPECS: Tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        name="fastmode",
        resource="flash fast mode",
        leak_rule="TP301",
        acquire=("enter_fast_mode",),
        release=("exit_fast_mode",),
        use=("fold_stats",),
        exempt_parts=("flash",),
    ),
    ProtocolSpec(
        name="process",
        resource="worker process",
        leak_rule="TP303",
        constructors=("Process",),
        start=("start",),
        release=("join", "terminate", "kill"),
    ),
    ProtocolSpec(
        name="pipe",
        resource="pipe connection",
        leak_rule="TP303",
        constructors=("Pipe",),
        release=("close",),
    ),
    ProtocolSpec(
        name="file",
        resource="file handle",
        leak_rule="TP301",
        constructors=("open",),
        release=("close",),
        withable=True,
    ),
)

ORDER_SPECS: Tuple[OrderSpec, ...] = (
    OrderSpec(
        name="reset-before-run",
        rule="TP304",
        entry_names=("run", "run_fast"),
        before=("_reset_state",),
        target=("serve_request",),
    ),
)

# States a tracked resource key can be in (may-analysis: a key holds a
# *set* of these at each program point).
_VIRGIN = "virgin"
_INST = "inst"
_HELD = "held"
_REL = "rel"
_ESC = "esc"

_TRANSITIONS: Dict[str, Dict[str, str]] = {
    "acquire": {_VIRGIN: _HELD, _INST: _HELD, _HELD: _HELD, _REL: _HELD, _ESC: _ESC},
    "start": {_VIRGIN: _VIRGIN, _INST: _HELD, _HELD: _HELD, _REL: _REL, _ESC: _ESC},
    "release": {_VIRGIN: _VIRGIN, _INST: _REL, _HELD: _REL, _REL: _REL, _ESC: _ESC},
}

# Event kinds applied along exception edges: the statement blew up
# mid-flight, so only "the resource left our hands" effects are sound.
_EXC_SAFE_KINDS = frozenset({"release", "escape"})

_PROTOCOL_PRAGMA = re.compile(r"#\s*tp:\s*protocol\(([^)]*)\)")


@dataclass(frozen=True)
class _Event:
    """One protocol-relevant action inside a single CFG node."""

    kind: str  # acquire|construct|start|release|use|escape|before|target
    spec: str
    key: str
    line: int
    col: int
    #: state a construct event lands in (held, or inst for start specs).
    to_state: str = _HELD


def _fact(spec: str, key: str, state: str) -> str:
    return f"{spec}|{key}|{state}"


def _order_fact(name: str) -> str:
    return f"order:{name}||missing"


# ---------------------------------------------------------------------------
# Interprocedural summaries


def _has_explicit_raise(fn: FunctionInfo) -> bool:
    """True when the function body contains a ``raise`` statement."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _may_raise_summary(project: Project, engine: FlowEngine) -> Set[str]:
    """Functions that may raise: explicit raisers plus transitive callers."""
    seeds: Dict[str, FrozenSet[str]] = {}
    for qname, fn in project.functions.items():
        if _has_explicit_raise(fn):
            seeds[qname] = frozenset({"raises"})
    reverse: Dict[str, List[str]] = {}
    for caller, callees in engine.edges.items():
        for callee, _site in callees:
            reverse.setdefault(callee, []).append(caller)
    solved = fixed_point(reverse, seeds)
    return {qname for qname, facts in solved.items() if facts}


def _always_raises_summary(project: Project) -> Set[str]:
    """Functions with no normal exit (every path ends in ``raise``)."""
    always: Set[str] = set()
    for qname, fn in project.functions.items():
        try:
            cfg = build_cfg(fn.node)
        except RecursionError:  # pragma: no cover - pathological nesting
            continue
        if not cfg.exits_normally():
            always.add(qname)
    return always


def _param_names(fn: FunctionInfo) -> List[str]:
    """Positional parameter names, with the self/cls receiver dropped."""
    args = fn.node.args
    names = [arg.arg for arg in args.posonlyargs + args.args]
    if fn.cls is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _release_summary(
    project: Project, release_methods: Set[str]
) -> Dict[str, Set[str]]:
    """Per function: parameter names it calls a release method on.

    This is the "releases what it was passed" summary — passing a
    tracked resource to such a function counts as a release at the call
    site instead of an escape.
    """
    out: Dict[str, Set[str]] = {}
    for qname, fn in project.functions.items():
        params = set(_param_names(fn)) | {
            arg.arg for arg in fn.node.args.kwonlyargs
        }
        released: Set[str] = set()
        for call in calls_in(fn.node):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in release_methods
                and isinstance(func.value, ast.Name)
                and func.value.id in params
            ):
                released.add(func.value.id)
        out[qname] = released
    return out


def _call_site(call: ast.Call) -> Optional[CallSite]:
    """Classify a call expression the way the call-graph collector does."""
    func = call.func
    line, col = call.lineno, call.col_offset
    if isinstance(func, ast.Name):
        return CallSite("name", func.id, line, col)
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            return CallSite("self", func.attr, line, col)
        if isinstance(value, ast.Attribute):
            inner = value.value
            if isinstance(inner, ast.Name) and inner.id in ("self", "cls"):
                return CallSite("attr", func.attr, line, col, receiver=value.attr)
        dotted = _dotted(func)
        if dotted is not None:
            return CallSite("name", dotted, line, col)
    return None


def _mapped_param(callee: FunctionInfo, index: Optional[int], keyword: Optional[str]) -> Optional[str]:
    """Name of the callee parameter an argument lands in, if resolvable."""
    if keyword is not None:
        names = set(_param_names(callee)) | {
            arg.arg for arg in callee.node.args.kwonlyargs
        }
        return keyword if keyword in names else None
    if index is not None:
        positional = _param_names(callee)
        if index < len(positional):
            return positional[index]
    return None


# ---------------------------------------------------------------------------
# Per-function lexical scans


def _binding_counts(fn_node: ast.AST) -> Dict[str, int]:
    """How many times each local name is (re)bound in the function body."""
    counts: Dict[str, int] = {}

    def bump(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1

    def bind_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            bump(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind_target(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For, ast.AsyncFor)):
            bind_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind_target(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bump(node.name)
        elif isinstance(node, ast.NamedExpr):
            bind_target(node.target)
        stack.extend(ast.iter_child_nodes(node))
    return counts


def _alias_map(fn_node: ast.AST, counts: Mapping[str, int]) -> Dict[str, str]:
    """Single-assignment ``name = dotted.chain`` aliases in the body."""
    aliases: Dict[str, str] = {}
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and counts.get(node.targets[0].id, 0) == 1
        ):
            chain = _dotted(node.value)
            if chain is not None:
                aliases[node.targets[0].id] = chain
        stack.extend(ast.iter_child_nodes(node))
    return aliases


def _canonical(aliases: Mapping[str, str], dotted: str) -> str:
    """Resolve the head of a dotted chain through local aliases."""
    seen: Set[str] = set()
    while True:
        head, _, rest = dotted.partition(".")
        if head not in aliases or head in seen:
            return dotted
        seen.add(head)
        dotted = aliases[head] + (f".{rest}" if rest else "")


def _line_span(stmt: ast.stmt) -> range:
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    return range(stmt.lineno, end + 1)


def _lexical_guards(fn_node: ast.AST) -> Tuple[Set[int], Set[int]]:
    """Lines protected by a try-with-finally, and lines inside finallys."""
    protected: Set[int] = set()
    finally_lines: Set[int] = set()

    def walk(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Try) and stmt.finalbody:
                for inner in stmt.body + stmt.orelse:
                    protected.update(_line_span(inner))
                for handler in stmt.handlers:
                    for inner in handler.body:
                        protected.update(_line_span(inner))
                for inner in stmt.finalbody:
                    finally_lines.update(_line_span(inner))
            for name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, name, None)
                if isinstance(inner, list) and inner and isinstance(inner[0], ast.stmt):
                    walk(inner)
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                walk(case.body)

    body = getattr(fn_node, "body", [])
    walk([stmt for stmt in body if isinstance(stmt, ast.stmt)])
    return protected, finally_lines


def _names_in(expr: ast.AST) -> Set[str]:
    """Name identifiers appearing in an expression (skipping lambdas)."""
    names: Set[str] = set()
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Name):
            names.add(node.id)
        stack.extend(ast.iter_child_nodes(node))
    return names


# ---------------------------------------------------------------------------
# Pragma-declared specs


def _pragma_specs(module: ModuleInfo) -> List[ProtocolSpec]:
    """Parse ``# tp: protocol(name=..., acquire=..., release=...)`` lines."""
    specs: List[ProtocolSpec] = []
    for line in module.source_lines:
        match = _PROTOCOL_PRAGMA.search(line)
        if match is None:
            continue
        fields: Dict[str, str] = {}
        for part in match.group(1).split(","):
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if key and value:
                fields[key] = value
        if "name" not in fields or "release" not in fields:
            continue
        if "acquire" not in fields and "constructor" not in fields:
            continue
        specs.append(
            ProtocolSpec(
                name=fields["name"],
                resource=fields.get("resource", fields["name"]),
                leak_rule="TP301",
                acquire=(fields["acquire"],) if "acquire" in fields else (),
                release=(fields["release"],),
                use=(fields["use"],) if "use" in fields else (),
                constructors=(
                    (fields["constructor"],) if "constructor" in fields else ()
                ),
                module_scope=module.name,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# The per-function analysis


class _FunctionAnalysis:
    """Builds the CFG, extracts protocol events, and runs the dataflow."""

    def __init__(
        self,
        project: Project,
        fn: FunctionInfo,
        module: ModuleInfo,
        specs: Sequence[ProtocolSpec],
        orders: Sequence[OrderSpec],
        may_raise: Set[str],
        always_raises: Set[str],
        releases: Mapping[str, Set[str]],
    ) -> None:
        self.project = project
        self.fn = fn
        self.module = module
        self.specs = {spec.name: spec for spec in specs}
        self.may_raise = may_raise
        self.always_raises = always_raises
        self.releases = releases
        counts = _binding_counts(fn.node)
        self.aliases = _alias_map(fn.node, counts)
        self.protected_lines, self.finally_lines = _lexical_guards(fn.node)
        # method-name lookup tables for event extraction
        self.acquire_of: Dict[str, str] = {}
        self.release_of: Dict[str, List[str]] = {}
        self.use_of: Dict[str, List[str]] = {}
        self.start_of: Dict[str, List[str]] = {}
        self.ctor_of: Dict[str, List[str]] = {}
        for spec in specs:
            for method in spec.acquire:
                self.acquire_of[method] = spec.name
            for method in spec.release:
                self.release_of.setdefault(method, []).append(spec.name)
            for method in spec.use:
                self.use_of.setdefault(method, []).append(spec.name)
            for method in spec.start:
                self.start_of.setdefault(method, []).append(spec.name)
            for ctor in spec.constructors:
                self.ctor_of.setdefault(ctor, []).append(spec.name)
        self.orders = [order for order in orders if self._order_in_scope(order)]
        # keys bound by constructor calls / safely bound inside `with`
        self.ctor_keys: Dict[str, Set[str]] = {name: set() for name in self.specs}
        self.safe_keys: Dict[str, Set[str]] = {name: set() for name in self.specs}
        self._collect_ctor_keys()
        self.events: Dict[int, List[_Event]] = {}

    # -- scoping ----------------------------------------------------------

    def _order_in_scope(self, order: OrderSpec) -> bool:
        fn = self.fn
        if fn.name not in order.entry_names:
            return False
        has_target = any(
            isinstance(call.func, ast.Attribute) and call.func.attr in order.target
            for call in calls_in(fn.node)
        )
        if not has_target:
            return False
        if fn.cls is None:
            return True
        table = self.project.effective_methods(fn.cls)
        return any(method in table for method in order.before)

    # -- constructor key discovery ----------------------------------------

    def _ctor_specs_for(self, call: ast.Call) -> List[str]:
        chain = _dotted(call.func)
        if chain is None:
            return []
        last = chain.rsplit(".", 1)[-1]
        return self.ctor_of.get(last, [])

    def _collect_ctor_keys(self) -> None:
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.fn.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for spec_name in self._ctor_specs_for(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.ctor_keys[spec_name].add(target.id)
                        elif isinstance(target, (ast.Tuple, ast.List)):
                            for elt in target.elts:
                                if isinstance(elt, ast.Name):
                                    self.ctor_keys[spec_name].add(elt.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if not isinstance(item.context_expr, ast.Call):
                        continue
                    for spec_name in self._ctor_specs_for(item.context_expr):
                        if isinstance(item.optional_vars, ast.Name):
                            self.safe_keys[spec_name].add(item.optional_vars.id)
            stack.extend(ast.iter_child_nodes(node))
        for spec_name in self.ctor_keys:
            self.ctor_keys[spec_name] -= self.safe_keys[spec_name]

    # -- event extraction --------------------------------------------------

    def _tracked_ctor_key(self, name: str) -> List[str]:
        return [
            spec_name
            for spec_name, keys in self.ctor_keys.items()
            if name in keys
        ]

    def _resolved_release_param(
        self, call: ast.Call, index: Optional[int], keyword: Optional[str]
    ) -> bool:
        """True when every resolved callee releases the passed argument."""
        site = _call_site(call)
        if site is None:
            return False
        callees = [
            qname
            for qname in self.project.resolve_call(self.fn, site)
            if qname in self.project.functions
        ]
        if not callees:
            return False
        for qname in callees:
            callee = self.project.functions[qname]
            param = _mapped_param(callee, index, keyword)
            if param is None or param not in self.releases.get(qname, set()):
                return False
        return True

    def _emit_call_events(self, call: ast.Call, events: List[_Event]) -> None:
        line, col = call.lineno, call.col_offset
        # resource arguments: handed off (escape) or released via summary
        tracked_names = {
            name
            for keys in self.ctor_keys.values()
            for name in keys
        }
        def scan_arg(arg: ast.AST, index: Optional[int], keyword: Optional[str]) -> None:
            for name in _names_in(arg) & tracked_names:
                kind = (
                    "release"
                    if isinstance(arg, ast.Name)
                    and self._resolved_release_param(call, index, keyword)
                    else "escape"
                )
                for spec_name in self._tracked_ctor_key(name):
                    events.append(
                        _Event(kind, spec_name, name, line, col)
                    )
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                scan_arg(arg.value, None, None)
            else:
                scan_arg(arg, index, None)
        for kw in call.keywords:
            scan_arg(kw.value, None, kw.arg)
        # protocol method calls on a receiver
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver = _dotted(func.value)
        if receiver is None:
            return
        canonical = _canonical(self.aliases, receiver)
        spec_name = self.acquire_of.get(method)
        if spec_name is not None:
            events.append(_Event("acquire", spec_name, canonical, line, col))
        for spec_name in self.release_of.get(method, []):
            spec = self.specs[spec_name]
            if spec.receiver_based:
                events.append(_Event("release", spec_name, canonical, line, col))
            elif receiver in self.ctor_keys[spec_name]:
                events.append(_Event("release", spec_name, receiver, line, col))
        for spec_name in self.use_of.get(method, []):
            if self.specs[spec_name].receiver_based:
                events.append(_Event("use", spec_name, canonical, line, col))
        for spec_name in self.start_of.get(method, []):
            if receiver in self.ctor_keys[spec_name]:
                events.append(_Event("start", spec_name, receiver, line, col))
        for order in self.orders:
            if method in order.before:
                events.append(_Event("before", f"order:{order.name}", "", line, col))
            if method in order.target:
                events.append(_Event("target", f"order:{order.name}", "", line, col))

    def _emit_escape(self, expr: ast.AST, events: List[_Event], line: int, col: int) -> None:
        tracked = {
            name for keys in self.ctor_keys.values() for name in keys
        }
        for name in _names_in(expr) & tracked:
            for spec_name in self._tracked_ctor_key(name):
                events.append(_Event("escape", spec_name, name, line, col))

    def _extract_node_events(self, node: CFGNode) -> List[_Event]:
        events: List[_Event] = []
        for effect in node.effects:
            self._walk_effect(effect, events)
        return events

    def _walk_effect(self, item: ast.AST, events: List[_Event]) -> None:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(item, ast.Assign):
            # value side first (evaluation order), then the binding
            self._walk_effect(item.value, events)
            if isinstance(item.value, ast.Call):
                ctor_specs = self._ctor_specs_for(item.value)
            else:
                ctor_specs = []
            line, col = item.lineno, item.col_offset
            for target in item.targets:
                if ctor_specs and isinstance(target, (ast.Name, ast.Tuple, ast.List)):
                    elts = (
                        [target] if isinstance(target, ast.Name) else list(target.elts)
                    )
                    for elt in elts:
                        if not isinstance(elt, ast.Name):
                            continue
                        for spec_name in ctor_specs:
                            if elt.id not in self.ctor_keys[spec_name]:
                                continue
                            spec = self.specs[spec_name]
                            to_state = _INST if spec.start else _HELD
                            events.append(
                                _Event(
                                    "construct",
                                    spec_name,
                                    elt.id,
                                    line,
                                    col,
                                    to_state=to_state,
                                )
                            )
                elif isinstance(target, ast.Name):
                    # plain rebind kills the old binding; aliasing a
                    # tracked resource into a new name is an escape
                    self._emit_escape(item.value, events, line, col)
                    if self._tracked_ctor_key(target.id) and not ctor_specs:
                        self._emit_escape(target, events, line, col)
                else:
                    # store into an attribute/subscript: ownership leaves
                    self._emit_escape(item.value, events, line, col)
            return
        if isinstance(item, ast.AugAssign):
            self._walk_effect(item.value, events)
            self._emit_escape(item.value, events, item.lineno, item.col_offset)
            return
        if isinstance(item, (ast.Return, ast.Yield, ast.YieldFrom)):
            if item.value is not None:
                self._walk_effect(item.value, events)
                self._emit_escape(item.value, events, item.lineno, item.col_offset)
            return
        if isinstance(item, (ast.With, ast.AsyncWith)):
            # a bare `with tracked_handle:` releases it on block exit;
            # the CFG anchors only the items on the head node
            for withitem in item.items:
                self._walk_effect(withitem.context_expr, events)
                if isinstance(withitem.context_expr, ast.Name):
                    name = withitem.context_expr.id
                    for spec_name in self._tracked_ctor_key(name):
                        events.append(
                            _Event(
                                "release",
                                spec_name,
                                name,
                                item.lineno,
                                item.col_offset,
                            )
                        )
            return
        if isinstance(item, ast.withitem):
            self._walk_effect(item.context_expr, events)
            if isinstance(item.context_expr, ast.Name):
                name = item.context_expr.id
                for spec_name in self._tracked_ctor_key(name):
                    events.append(
                        _Event(
                            "release",
                            spec_name,
                            name,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                        )
                    )
            return
        if isinstance(item, ast.Call):
            self._walk_effect(item.func, events)
            for arg in item.args:
                self._walk_effect(arg, events)
            for kw in item.keywords:
                self._walk_effect(kw.value, events)
            self._emit_call_events(item, events)
            return
        for child in ast.iter_child_nodes(item):
            self._walk_effect(child, events)

    # -- exception-edge classification ------------------------------------

    def classify(self, call: ast.Call) -> str:
        """Exception strength of one call site (see EXC_STRENGTHS)."""
        site = _call_site(call)
        if site is None:
            return "weak"
        callees = [
            qname
            for qname in self.project.resolve_call(self.fn, site)
            if qname in self.project.functions
        ]
        if not callees:
            return "weak"
        if all(qname in self.always_raises for qname in callees):
            return "always"
        if any(
            qname in self.may_raise or qname in self.always_raises
            for qname in callees
        ):
            return "strong"
        return "none"

    # -- dataflow ----------------------------------------------------------

    def _step(
        self,
        events: Sequence[_Event],
        buckets: Dict[Tuple[str, str], Set[str]],
        exceptional: bool,
        report: Optional[List[Tuple[str, int, int, str]]] = None,
    ) -> None:
        """Apply a node's events to state buckets, in program order.

        With ``report`` set (the diagnostics pass over the solved entry
        facts) protocol violations are appended as
        ``(rule, line, col, message)`` tuples.
        """
        for event in events:
            if exceptional and event.kind not in _EXC_SAFE_KINDS:
                continue
            bucket_key = (event.spec, event.key)
            if event.kind == "before":
                buckets.pop((event.spec, event.key), None)
                continue
            if event.kind == "target":
                if report is not None and "missing" in buckets.get(bucket_key, ()):
                    report.append(
                        (
                            "TP304",
                            event.line,
                            event.col,
                            f"{self.fn.name}() can reach "
                            f"{self.module.source_lines[event.line - 1].strip()!r} "
                            "before the per-run reset has executed on this "
                            "path; call the reset first on every path",
                        )
                    )
                continue
            states = buckets.get(bucket_key)
            if event.kind == "construct":
                buckets[bucket_key] = {event.to_state}
                continue
            if states is None:
                continue
            if event.kind == "escape":
                buckets[bucket_key] = {_ESC}
                continue
            if event.kind == "use":
                if (
                    report is not None
                    and states
                    and not states & {_HELD, _ESC}
                ):
                    spec = self.specs[event.spec]
                    report.append(
                        (
                            "TP302",
                            event.line,
                            event.col,
                            f"{self.fn.name}() calls {spec.use[0]}() on "
                            f"{event.key!r} on a path where {spec.resource} "
                            "was never acquired (or already released)",
                        )
                    )
                continue
            if event.kind == "release" and report is not None and states:
                if not states & {_HELD, _INST, _ESC}:
                    spec = self.specs[event.spec]
                    flavour = (
                        "already released earlier on this path (double release)"
                        if _REL in states
                        else "never acquired on this path"
                    )
                    report.append(
                        (
                            "TP302",
                            event.line,
                            event.col,
                            f"{self.fn.name}() releases {spec.resource} "
                            f"{event.key!r} which was {flavour}",
                        )
                    )
            transitions = _TRANSITIONS[event.kind]
            buckets[bucket_key] = {transitions[state] for state in states}

    @staticmethod
    def _parse_facts(facts: FrozenSet[str]) -> Dict[Tuple[str, str], Set[str]]:
        buckets: Dict[Tuple[str, str], Set[str]] = {}
        for fact in facts:
            spec, key, state = fact.split("|", 2)
            buckets.setdefault((spec, key), set()).add(state)
        return buckets

    @staticmethod
    def _pack_facts(buckets: Dict[Tuple[str, str], Set[str]]) -> FrozenSet[str]:
        return frozenset(
            _fact(spec, key, state)
            for (spec, key), states in buckets.items()
            for state in states
        )

    def run(self) -> List[Finding]:
        """Build the CFG, solve the dataflow, and report violations."""
        cfg = build_cfg(self.fn.node, classify=self.classify)
        for nid, node in cfg.nodes.items():
            node_events = self._extract_node_events(node)
            if node_events:
                self.events[nid] = node_events
        seeds = self._seed_facts()
        if not seeds and not self.events:
            return []
        solved = self._solve(cfg, seeds)
        return self._diagnose(cfg, solved)

    def _seed_facts(self) -> FrozenSet[str]:
        seeded: Set[str] = set()
        for node_events in self.events.values():
            for event in node_events:
                if event.kind in ("before", "target"):
                    continue
                spec = self.specs[event.spec]
                if spec.receiver_based or event.key in self.ctor_keys[event.spec]:
                    seeded.add(_fact(event.spec, event.key, _VIRGIN))
        for order in self.orders:
            seeded.add(_order_fact(order.name))
        return frozenset(seeded)

    def _solve(
        self, cfg: CFG, seeds: FrozenSet[str]
    ) -> Mapping[str, FrozenSet[str]]:
        graph: Dict[str, List[str]] = {}
        for nid in cfg.nodes:
            graph[f"n{nid}"] = [f"p{nid}", f"e{nid}"]
            graph[f"p{nid}"] = [f"n{succ}" for succ in cfg.normal_succ[nid]]
            graph[f"e{nid}"] = [f"n{succ}" for succ in cfg.exc_succ[nid]]

        def transfer(node: str, facts: FrozenSet[str]) -> FrozenSet[str]:
            if not facts or node.startswith("n"):
                return facts
            nid = int(node[1:])
            node_events = self.events.get(nid)
            if not node_events:
                return facts
            buckets = self._parse_facts(facts)
            self._step(node_events, buckets, exceptional=node.startswith("e"))
            return self._pack_facts(buckets)

        return fixed_point(graph, {f"n{cfg.entry}": seeds}, transfer)

    def _diagnose(
        self, cfg: CFG, solved: Mapping[str, FrozenSet[str]]
    ) -> List[Finding]:
        reports: List[Tuple[str, int, int, str]] = []
        for nid in cfg.nodes:
            node_events = self.events.get(nid)
            if not node_events:
                continue
            facts = solved.get(f"n{nid}")
            if not facts:
                continue
            buckets = self._parse_facts(facts)
            self._step(node_events, buckets, exceptional=False, report=reports)
        reports.extend(self._leak_reports(cfg, solved))
        reports.extend(self._withable_reports())
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for rule, line, col, message in reports:
            dedupe = (rule, line, message)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            if self.project.suppressed(self.module, line, rule):
                continue
            findings.append(
                Finding(
                    rule=rule,
                    path=self.module.path,
                    line=line,
                    col=col,
                    message=message,
                    snippet=self.project.snippet(self.module, line),
                )
            )
        return findings

    def _acquire_sites(self, spec_name: str, key: str) -> List[Tuple[int, int]]:
        sites: List[Tuple[int, int]] = []
        for node_events in self.events.values():
            for event in node_events:
                if event.spec != spec_name or event.key != key:
                    continue
                if event.kind in ("acquire", "start") or (
                    event.kind == "construct" and event.to_state == _HELD
                ):
                    sites.append((event.line, event.col))
        return sorted(sites)

    def _leak_reports(
        self, cfg: CFG, solved: Mapping[str, FrozenSet[str]]
    ) -> List[Tuple[str, int, int, str]]:
        exit_descs: Dict[Tuple[str, str], List[str]] = {}
        for exit_node, desc in (
            (cfg.exit, "a normal return path"),
            (cfg.raise_exit, "an exception path"),
        ):
            facts = solved.get(f"n{exit_node}")
            if not facts:
                continue
            for (spec_name, key), states in self._parse_facts(facts).items():
                if _HELD in states and not spec_name.startswith("order:"):
                    exit_descs.setdefault((spec_name, key), []).append(desc)
        reports: List[Tuple[str, int, int, str]] = []
        for (spec_name, key), descs in exit_descs.items():
            spec = self.specs[spec_name]
            sites = self._acquire_sites(spec_name, key)
            if not sites:
                continue
            line, col = sites[0]
            release_names = " or ".join(f"{name}()" for name in spec.release)
            reports.append(
                (
                    spec.leak_rule,
                    line,
                    col,
                    f"{self.fn.name}() acquires {spec.resource} {key!r} but "
                    f"{' and '.join(descs)} can leave the function without "
                    f"{release_names}; release it in a finally block "
                    "(or hand it off explicitly)",
                )
            )
        return reports

    def _withable_reports(self) -> List[Tuple[str, int, int, str]]:
        reports: List[Tuple[str, int, int, str]] = []
        for node_events in self.events.values():
            for event in node_events:
                if event.kind != "construct":
                    continue
                spec = self.specs[event.spec]
                if not spec.withable:
                    continue
                releases = [
                    other
                    for evs in self.events.values()
                    for other in evs
                    if other.kind == "release"
                    and other.spec == event.spec
                    and other.key == event.key
                ]
                if not releases:
                    continue  # the no-release case is TP301's leak report
                if event.line in self.protected_lines:
                    continue
                if any(rel.line in self.finally_lines for rel in releases):
                    continue
                reports.append(
                    (
                        "TP305",
                        event.line,
                        event.col,
                        f"{self.fn.name}() acquires {spec.resource} "
                        f"{event.key!r} outside with/try-finally; an "
                        "exception between acquire and release leaks it — "
                        "use a with block",
                    )
                )
        return reports


# ---------------------------------------------------------------------------
# Entry point


def _specs_for(
    fn: FunctionInfo, module: ModuleInfo, local_specs: Sequence[ProtocolSpec]
) -> List[ProtocolSpec]:
    parts = set(module.path.replace("\\", "/").split("/"))
    specs: List[ProtocolSpec] = []
    for spec in PROTOCOL_SPECS:
        if spec.exempt_parts and parts & set(spec.exempt_parts):
            continue
        specs.append(spec)
    for spec in local_specs:
        if spec.module_scope == module.name:
            specs.append(spec)
    return specs


def check_protocols(project: Project, engine: Optional[FlowEngine] = None) -> List[Finding]:
    """Run the TP3xx typestate pass over every function in the project."""
    if engine is None:
        engine = FlowEngine(project)
    may_raise = _may_raise_summary(project, engine)
    always_raises = _always_raises_summary(project)
    release_methods: Set[str] = set()
    pragma_specs: List[ProtocolSpec] = []
    for module in project.modules.values():
        pragma_specs.extend(_pragma_specs(module))
    for spec in tuple(PROTOCOL_SPECS) + tuple(pragma_specs):
        release_methods.update(spec.release)
    releases = _release_summary(project, release_methods)
    findings: List[Finding] = []
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        module = project.modules.get(fn.module)
        if module is None:
            continue
        specs = _specs_for(fn, module, pragma_specs)
        analysis = _FunctionAnalysis(
            project,
            fn,
            module,
            specs,
            ORDER_SPECS,
            may_raise,
            always_raises,
            releases,
        )
        findings.extend(analysis.run())
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return findings
