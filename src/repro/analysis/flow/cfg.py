"""Per-function control-flow graphs with explicit exception edges.

The typestate pass (:mod:`repro.analysis.flow.typestate`) checks
*temporal* protocols — "``exit_fast_mode`` runs on every path out of
this region, including the path where ``serve_request`` raised".  That
question cannot be asked of a syntax tree; it needs a CFG whose edges
include the ways control *abnormally* leaves a statement:

* ``raise`` statements and calls that may raise (classified by the
  caller via a may-raise summary over the project call graph) get
  **exception edges** to the innermost enclosing handlers, or through
  the enclosing ``finally`` blocks to a synthetic ``RAISE_EXIT`` node;
* ``finally`` bodies are **duplicated per continuation kind** (normal
  fall-through, exception propagation, ``return``, ``break``,
  ``continue``) so each path's facts flow through its own copy — the
  textbook way to keep try/finally precise without path explosion
  (one copy per kind per ``try``, not per raising site);
* early ``return``/``break``/``continue`` are routed through every
  ``finally`` between the statement and its target.

Edges are split into **normal** and **exceptional** successor maps: an
exception edge leaves a statement *mid-flight*, so the typestate
transfer applies only the statement's release/escape effects along it
(an acquire that raised never acquired).

The exception model is deliberately two-tier to stay quiet on pristine
code: calls *resolved* (via the call graph) to functions that may
transitively raise always generate exception edges, while *unresolved*
calls (builtins, stdlib, duck-typed receivers) generate them only
inside a ``try`` — outside one, a leaked resource could only be
observed by a crash that unwinds the whole frame anyway, and flagging
every ``dict.get`` would drown the signal.  Attribute access and
arithmetic never raise in the model.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["CFG", "CFGNode", "build_cfg", "calls_in"]

#: exception strength of one call, as classified by the caller, in
#: increasing order: "none" (cannot raise), "weak" (unknown callee —
#: raises only inside a try), "strong" (resolved callee may raise),
#: "always" (resolved callee never returns normally).
EXC_STRENGTHS = ("none", "weak", "strong", "always")

#: classifier callback: ast.Call -> one of EXC_STRENGTHS
Classifier = Callable[[ast.Call], str]

_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def calls_in(node: ast.AST) -> List[ast.Call]:
    """Every call expression under ``node``, in source order, without
    descending into nested function/lambda bodies (they have their own
    CFGs — or none — and their calls do not run here)."""
    calls: List[ast.Call] = []

    def _walk(current: ast.AST) -> None:
        if isinstance(current, ast.Call):
            calls.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _NESTED):
                continue
            _walk(child)

    _walk(node)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


@dataclass
class CFGNode:
    """One CFG node: a statement (or statement fragment) or a synthetic
    entry/exit/handler marker.

    ``stmt`` anchors the node in the source (line/col, statement
    class); ``effects`` lists the sub-ASTs whose expressions actually
    evaluate *at* this node — for a ``for`` loop that is the iterable,
    not the body, which has its own nodes.
    """

    nid: int
    #: "entry", "exit", "raise_exit", "stmt", "handler"
    kind: str
    stmt: Optional[ast.AST]
    effects: Tuple[ast.AST, ...]
    line: int
    col: int


class CFG:
    """The graph: nodes plus split normal/exceptional successor maps."""

    def __init__(self) -> None:
        self.nodes: Dict[int, CFGNode] = {}
        self.entry: int = 0
        self.exit: int = 0
        self.raise_exit: int = 0
        self.normal_succ: Dict[int, List[int]] = {}
        self.exc_succ: Dict[int, List[int]] = {}

    def add_node(self, kind: str, stmt: Optional[ast.AST] = None,
                 effects: Optional[Sequence[ast.AST]] = None) -> int:
        """Append a node anchored at ``stmt`` and return its id."""
        nid = len(self.nodes)
        line = getattr(stmt, "lineno", 0) if stmt is not None else 0
        col = getattr(stmt, "col_offset", 0) if stmt is not None else 0
        if effects is None:
            effects = (stmt,) if stmt is not None else ()
        self.nodes[nid] = CFGNode(nid=nid, kind=kind, stmt=stmt,
                                  effects=tuple(effects),
                                  line=line, col=col)
        self.normal_succ[nid] = []
        self.exc_succ[nid] = []
        return nid

    def link(self, src: int, dst: int, exceptional: bool = False) -> None:
        """Add a normal (or exceptional) edge, deduplicating."""
        table = self.exc_succ if exceptional else self.normal_succ
        if dst not in table[src]:
            table[src].append(dst)

    def reachable(self) -> Set[int]:
        """Node ids reachable from the entry along any edge kind."""
        seen: Set[int] = set()
        queue = [self.entry]
        while queue:
            nid = queue.pop()
            if nid in seen:
                continue
            seen.add(nid)
            queue.extend(self.normal_succ[nid])
            queue.extend(self.exc_succ[nid])
        return seen

    def exits_normally(self) -> bool:
        """True when the normal exit is reachable from the entry — the
        negation is the "always raises" interprocedural summary."""
        return self.exit in self.reachable()


@dataclass(eq=False)
class _TryFrame:
    """One enclosing ``try`` during construction.

    A ``try`` with both handlers and a ``finally`` is pushed as two
    frames: the handler frame covers only the body, the finally frame
    covers body, handlers and ``else`` alike.
    """

    handlers: List[int] = field(default_factory=list)
    catches_all: bool = False
    finalbody: Optional[List[ast.stmt]] = None
    #: lazily built finally duplicates, continuation kind -> (entry,
    #: frontier); the normal-completion copy is built inline instead.
    copies: Dict[str, Tuple[int, List[int]]] = field(default_factory=dict)


@dataclass(eq=False)
class _LoopFrame:
    """One enclosing loop: where ``continue`` goes and the pending
    ``break`` frontier (linked to the after-loop node by the caller)."""

    head: int
    breaks: List[int] = field(default_factory=list)


_Frame = Union[_TryFrame, _LoopFrame]

_STRENGTH_ORDER = {s: i for i, s in enumerate(EXC_STRENGTHS)}


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    node = handler.type
    name = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else "")
    return name in ("Exception", "BaseException")


class _Builder:
    """Recursive statement-list walker building one function's CFG."""

    def __init__(self, classify: Classifier) -> None:
        self.cfg = CFG()
        self.classify = classify
        self.frames: List[_Frame] = []

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def build(self, fn: ast.AST) -> CFG:
        """Build and return the CFG of one function definition."""
        graph = self.cfg
        graph.entry = graph.add_node("entry")
        graph.exit = graph.add_node("exit")
        graph.raise_exit = graph.add_node("raise_exit")
        body: List[ast.stmt] = getattr(fn, "body", [])
        frontier = self._body(body, [graph.entry])
        for nid in frontier:
            graph.link(nid, graph.exit)
        return graph

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _body(self, stmts: Sequence[ast.stmt],
              frontier: List[int]) -> List[int]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if hasattr(ast, "TryStar") and isinstance(
                stmt, ast.TryStar):  # pragma: no cover - py3.11+
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._abrupt_return(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._abrupt_loop(stmt, frontier, "break")
        if isinstance(stmt, ast.Continue):
            return self._abrupt_loop(stmt, frontier, "continue")
        if isinstance(stmt, ast.Raise):
            self._linear(stmt, frontier, raises="raise")
            return []
        nid = self._linear(stmt, frontier)
        return [nid] if self._falls_through(nid) else []

    # ------------------------------------------------------------------
    # Simple statements
    # ------------------------------------------------------------------
    def _strength(self, effects: Sequence[ast.AST]) -> str:
        strength = "none"
        for effect in effects:
            for call in calls_in(effect):
                classified = self.classify(call)
                if (_STRENGTH_ORDER.get(classified, 0)
                        > _STRENGTH_ORDER[strength]):
                    strength = classified
        return strength

    def _linear(self, stmt: ast.AST, frontier: List[int],
                effects: Optional[Sequence[ast.AST]] = None,
                raises: Optional[str] = None) -> int:
        """One plain node: link from the frontier, add exception edges
        per the statement's strongest contained call (or an explicit
        ``raise``); returns the node id.  A call classified "always"
        never falls through — the caller sees that via the returned
        node being terminal only when it checks, so ``_stmt`` wraps it:
        see :meth:`_maybe_terminal`."""
        nid = self.cfg.add_node("stmt", stmt, effects)
        for prev in frontier:
            self.cfg.link(prev, nid)
        strength = raises or self._strength(self.cfg.nodes[nid].effects)
        if strength != "none":
            self._route_exception(nid, strength)
        self.cfg.nodes[nid].kind = (
            "noreturn" if strength == "always" else self.cfg.nodes[nid].kind)
        return nid

    def _falls_through(self, nid: int) -> bool:
        return self.cfg.nodes[nid].kind != "noreturn"

    # ------------------------------------------------------------------
    # Exception routing
    # ------------------------------------------------------------------
    def _finally_copy(self, frame: _TryFrame,
                      kind: str) -> Tuple[int, List[int]]:
        """The frame's finally duplicate for one continuation kind,
        built on first use under the frame stack *outside* the frame —
        exactly the stack the ``finally`` body runs under."""
        if kind not in frame.copies:
            index = next(i for i, f in enumerate(self.frames)
                         if f is frame)
            saved = self.frames
            self.frames = saved[:index]
            entry = self.cfg.add_node("stmt", None)
            exits = self._body(frame.finalbody or [], [entry])
            self.frames = saved
            frame.copies[kind] = (entry, exits)
        return frame.copies[kind]

    def _route_exception(self, nid: int, strength: str) -> None:
        """Add exception edges from ``nid`` per the two-tier policy."""
        current = [nid]
        exceptional = True  # the first hop leaves the statement mid-way
        saw_try = False
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                continue
            saw_try = True
            if frame.handlers:
                for handler in frame.handlers:
                    for src in current:
                        self.cfg.link(src, handler, exceptional)
                if strength != "raise" or frame.catches_all:
                    return
                # an explicit raise of a specific exception may slip
                # past specific handlers: keep propagating outward
                continue
            if frame.finalbody is not None:
                entry, exits = self._finally_copy(frame, "exc")
                for src in current:
                    self.cfg.link(src, entry, exceptional)
                current = exits
                exceptional = False
        if strength == "weak" and not saw_try:
            return
        for src in current:
            self.cfg.link(src, self.cfg.raise_exit, exceptional)

    # ------------------------------------------------------------------
    # Abrupt control transfer (return / break / continue)
    # ------------------------------------------------------------------
    def _route_through_finallys(self, start: int, kind: str,
                                until: Optional[_Frame]) -> List[int]:
        """Route an abrupt transfer from ``start`` through every
        ``finally`` between it and ``until`` (exclusive; None = all)."""
        current = [start]
        for frame in reversed(self.frames):
            if frame is until:
                break
            if isinstance(frame, _TryFrame) and frame.finalbody is not None:
                entry, exits = self._finally_copy(frame, kind)
                for src in current:
                    self.cfg.link(src, entry)
                current = exits
        return current

    def _abrupt_return(self, stmt: ast.Return,
                       frontier: List[int]) -> List[int]:
        nid = self._linear(stmt, frontier)
        if self._falls_through(nid):
            for src in self._route_through_finallys(nid, "return", None):
                self.cfg.link(src, self.cfg.exit)
        return []

    def _abrupt_loop(self, stmt: ast.stmt, frontier: List[int],
                     kind: str) -> List[int]:
        nid = self._linear(stmt, frontier)
        loop = next((f for f in reversed(self.frames)
                     if isinstance(f, _LoopFrame)), None)
        if loop is None:  # malformed source; treat as linear
            return [nid]
        terminal = self._route_through_finallys(nid, kind, loop)
        if kind == "break":
            loop.breaks.extend(terminal)
        else:
            for src in terminal:
                self.cfg.link(src, loop.head)
        return []

    # ------------------------------------------------------------------
    # Compound statements
    # ------------------------------------------------------------------
    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        test = self._linear(stmt, frontier, effects=[stmt.test])
        if not self._falls_through(test):
            return []
        out = self._body(stmt.body, [test])
        if stmt.orelse:
            out = out + self._body(stmt.orelse, [test])
        else:
            out = out + [test]
        return out

    def _loop_exit_is_static(self, test: ast.expr) -> bool:
        """``while True:`` (or any truthy constant) never falls out."""
        return isinstance(test, ast.Constant) and bool(test.value)

    def _while(self, stmt: ast.While, frontier: List[int]) -> List[int]:
        head = self._linear(stmt, frontier, effects=[stmt.test])
        loop = _LoopFrame(head=head)
        self.frames.append(loop)
        body_out = self._body(stmt.body, [head])
        self.frames.pop()
        for src in body_out:
            self.cfg.link(src, head)
        out: List[int] = ([] if self._loop_exit_is_static(stmt.test)
                          else [head])
        if stmt.orelse:
            out = self._body(stmt.orelse, out) if out else []
        return out + loop.breaks

    def _for(self, stmt: Union[ast.For, ast.AsyncFor],
             frontier: List[int]) -> List[int]:
        head = self._linear(stmt, frontier,
                            effects=[stmt.target, stmt.iter])
        loop = _LoopFrame(head=head)
        self.frames.append(loop)
        body_out = self._body(stmt.body, [head])
        self.frames.pop()
        for src in body_out:
            self.cfg.link(src, head)
        out: List[int] = [head]
        if stmt.orelse:
            out = self._body(stmt.orelse, out)
        return out + loop.breaks

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              frontier: List[int]) -> List[int]:
        # One node evaluates the context expressions; ``__exit__`` is
        # the language's own guaranteed release, so nothing special is
        # modelled on the exception path (the typestate pass treats
        # with-bound resources as safe).
        head = self._linear(stmt, frontier, effects=list(stmt.items))
        return self._body(stmt.body, [head])

    def _match(self, stmt: ast.Match,
               frontier: List[int]) -> List[int]:
        subject = self._linear(stmt, frontier, effects=[stmt.subject])
        out: List[int] = [subject]  # no case may match
        for case in stmt.cases:
            out = out + self._body(case.body, [subject])
        return out

    def _try(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        body: List[ast.stmt] = getattr(stmt, "body")
        handlers: List[ast.ExceptHandler] = getattr(stmt, "handlers")
        orelse: List[ast.stmt] = getattr(stmt, "orelse")
        finalbody: List[ast.stmt] = getattr(stmt, "finalbody")
        fin_frame: Optional[_TryFrame] = None
        if finalbody:
            fin_frame = _TryFrame(finalbody=finalbody)
            self.frames.append(fin_frame)
        handler_entries = [self.cfg.add_node("handler", h, effects=())
                           for h in handlers]
        if handlers:
            frame = _TryFrame(
                handlers=handler_entries,
                catches_all=any(_is_catch_all(h) for h in handlers))
            self.frames.append(frame)
        body_out = self._body(body, frontier)
        if handlers:
            self.frames.pop()
        if orelse:
            body_out = self._body(orelse, body_out)
        merged = list(body_out)
        for handler, entry in zip(handlers, handler_entries):
            merged.extend(self._body(handler.body, [entry]))
        if fin_frame is not None:
            self.frames.pop()
            entry = self.cfg.add_node("stmt", None)
            for src in merged:
                self.cfg.link(src, entry)
            return self._body(finalbody, [entry])
        return merged


def build_cfg(fn: ast.AST, classify: Optional[Classifier] = None) -> CFG:
    """Build the CFG of one function definition node.

    ``classify`` maps each contained call to its exception strength
    (see :data:`EXC_STRENGTHS`); omitted, every call is "weak" — the
    structure-only mode the always-raises pre-pass uses.
    """
    builder = _Builder(classify or (lambda call: "weak"))
    return builder.build(fn)
