"""Project parser and name-resolved call graph for the flow analysis.

The flow pass needs to see the whole program at once: the two worst
bugs this project has shipped were invisible to any single-file visitor
(state initialized in ``__init__`` but forgotten by the reset path;
flash mutation reached through a helper).  :class:`Project` parses
every module under the analyzed roots exactly once and builds

* a **module index** with resolved imports (``from ..ftl.base import
  BaseFTL`` inside ``repro.ssd.device`` resolves to
  ``repro.ftl.base.BaseFTL``, including relative-import levels);
* a **class index** with bases resolved across modules and the derived
  ancestor/descendant relations;
* a **function index** (module functions and methods) with every call
  site extracted and name-resolved: plain names through the import
  map, ``self.m(...)`` through the class hierarchy (including
  subclass overrides — virtual dispatch is a *may* edge), and
  ``self.attr.m(...)`` through the light attribute-type inference in
  :mod:`repro.analysis.flow.state`.

Resolution is best-effort and sound in the may-analysis sense: an
unresolvable call simply contributes no edge.  Calls into classes
(``FlashMemory(...)``) edge to the class's ``__init__`` when it exists.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lint import (_allowed_codes, _dotted, iter_python_files,
                    normalize_path)
from .state import ClassState, collect_class_state

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``kind`` distinguishes how the callee was written down:

    * ``"name"`` — a plain or dotted name (``collect(x)``,
      ``module.helper(x)``); ``target`` holds the dotted text.
    * ``"self"`` — a method call on ``self``/``cls``; ``target`` is the
      method name.
    * ``"attr"`` — a method call on a ``self`` attribute
      (``self.flash.program(...)``); ``receiver`` is the attribute
      name, ``target`` the method name.
    """

    kind: str
    target: str
    line: int
    col: int
    receiver: Optional[str] = None


@dataclass
class FunctionInfo:
    """A module-level function or a method, with its call sites."""

    qname: str
    module: str
    name: str
    path: str
    line: int
    node: ast.AST
    cls: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition with resolved bases and its methods."""

    qname: str
    module: str
    name: str
    path: str
    line: int
    node: ast.ClassDef
    #: base expressions as written (dotted text), pre-resolution
    base_names: List[str] = field(default_factory=list)
    #: base class qnames resolved against the project (subset)
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    state: Optional[ClassState] = None


@dataclass
class ModuleInfo:
    """One parsed module: source, import map, and suppression pragmas."""

    name: str
    path: str
    tree: ast.Module
    source_lines: List[str]
    #: local name -> fully qualified dotted name
    imports: Dict[str, str] = field(default_factory=dict)
    #: line -> suppressed rule codes (``# tp: allow=TP10x``)
    allowed: Dict[int, Set[str]] = field(default_factory=dict)


def _module_name(path: pathlib.Path) -> str:
    """Dotted module name for ``path`` (rooted after a ``src`` dir)."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    parts = [p for p in parts if p not in (".", "..", "/")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


class _CallCollector(ast.NodeVisitor):
    """Extract :class:`CallSite` records from one function body."""

    def __init__(self) -> None:
        self.calls: List[CallSite] = []

    def visit_Call(self, node: ast.Call) -> None:
        """Classify the call as self-dispatch, attr-call or plain name."""
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                self.calls.append(CallSite(
                    kind="self", target=func.attr,
                    line=node.lineno, col=node.col_offset))
            elif (isinstance(value, ast.Attribute)
                  and isinstance(value.value, ast.Name)
                  and value.value.id in ("self", "cls")):
                self.calls.append(CallSite(
                    kind="attr", target=func.attr, receiver=value.attr,
                    line=node.lineno, col=node.col_offset))
            else:
                dotted = _dotted(func)
                if dotted is not None:
                    self.calls.append(CallSite(
                        kind="name", target=dotted,
                        line=node.lineno, col=node.col_offset))
        elif isinstance(func, ast.Name):
            self.calls.append(CallSite(
                kind="name", target=func.id,
                line=node.lineno, col=node.col_offset))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Do not descend into nested defs; they get their own entry."""

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Do not descend into nested defs; they get their own entry."""


class Project:
    """Whole-program index: modules, classes, functions, call sites."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple class name -> qnames (for last-resort base resolution)
        self._by_simple: Dict[str, List[str]] = {}
        self._descendants: Optional[Dict[str, Set[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Sequence[str],
                   exclude: Sequence[str] = ()) -> "Project":
        """Parse every ``*.py`` under ``paths`` into one project."""
        sources: Dict[str, str] = {}
        for file in iter_python_files(paths, exclude=exclude):
            sources[normalize_path(file)] = file.read_text(
                encoding="utf-8")
        return cls.from_sources(sources)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{path: source}`` (tests use this)."""
        project = cls()
        for path, source in sorted(sources.items()):
            project._add_module(path, source)
        project._resolve_bases()
        project._collect_state()
        return project

    def _add_module(self, path: str, source: str) -> None:
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        name = _module_name(pathlib.PurePosixPath(path))
        if name in self.modules:  # same-named module elsewhere: keep both
            name = f"{name}@{len(self.modules)}"
        module = ModuleInfo(name=name, path=path, tree=tree,
                            source_lines=lines,
                            allowed=_allowed_codes(lines))
        self._collect_imports(module, path)
        self.modules[name] = module
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, cls_qname=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _collect_imports(self, module: ModuleInfo, path: str) -> None:
        is_pkg = pathlib.PurePosixPath(path).name == "__init__.py"
        package = module.name if is_pkg else ".".join(
            module.name.split(".")[:-1])
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = package.split(".") if package else []
                    anchor = anchor[:len(anchor) - (node.level - 1)]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = (f"{base}.{alias.name}"
                                             if base else alias.name)

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{module.name}.{node.name}"
        info = ClassInfo(qname=qname, module=module.name, name=node.name,
                         path=module.path, line=node.lineno, node=node)
        for b in node.bases:
            dotted = _dotted(b)
            if dotted is None and isinstance(b, ast.Subscript):
                dotted = _dotted(b.value)
            if dotted is not None:
                info.base_names.append(dotted)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, cls_qname=qname,
                                   cls_info=info)
        self.classes[qname] = info
        self._by_simple.setdefault(node.name, []).append(qname)

    def _add_function(self, module: ModuleInfo, node: ast.AST,
                      cls_qname: Optional[str],
                      cls_info: Optional[ClassInfo] = None) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        owner = cls_qname or module.name
        qname = f"{owner}.{node.name}"
        collector = _CallCollector()
        for stmt in node.body:
            collector.visit(stmt)
        info = FunctionInfo(qname=qname, module=module.name,
                            name=node.name, path=module.path,
                            line=node.lineno, node=node, cls=cls_qname,
                            calls=collector.calls)
        self.functions[qname] = info
        if cls_info is not None:
            cls_info.methods[node.name] = info

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: ModuleInfo, dotted: str) -> str:
        """Resolve a dotted name against the module's import map."""
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            base = module.imports[head]
            return f"{base}.{rest}" if rest else base
        local = f"{module.name}.{dotted}"
        if local in self.classes or local in self.functions:
            return local
        head_local = f"{module.name}.{head}"
        if head_local in self.classes and rest:
            return f"{head_local}.{rest}"
        return dotted

    def resolve_class(self, module: ModuleInfo,
                      dotted: str) -> Optional[str]:
        """Resolve a dotted name to a known class qname, if any.

        Falls back to unique-simple-name matching so sources analyzed
        without their import closure (a lone fixture file, a test tree
        without ``src``) still see their local hierarchies.
        """
        resolved = self.resolve_name(module, dotted)
        if resolved in self.classes:
            return resolved
        simple = dotted.split(".")[-1]
        candidates = self._by_simple.get(simple, [])
        if len(candidates) == 1:
            return candidates[0]
        for candidate in candidates:
            if candidate.startswith(module.name + "."):
                return candidate
        return None

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            module = self.modules[info.module]
            for dotted in info.base_names:
                resolved = self.resolve_class(module, dotted)
                if resolved is not None and resolved != info.qname:
                    info.bases.append(resolved)

    def _collect_state(self) -> None:
        for info in self.classes.values():
            module = self.modules[info.module]
            info.state = collect_class_state(
                info.node,
                resolve_class=lambda d, _m=module: self.resolve_class(_m, d))

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------
    def ancestors(self, qname: str) -> List[str]:
        """All (transitive) base-class qnames, nearest first."""
        seen: List[str] = []
        queue = list(self.classes[qname].bases)
        while queue:
            base = queue.pop(0)
            if base in seen or base == qname:
                continue
            seen.append(base)
            if base in self.classes:
                queue.extend(self.classes[base].bases)
        return seen

    def descendants(self, qname: str) -> Set[str]:
        """All (transitive) subclass qnames."""
        if self._descendants is None:
            self._descendants = {}
            direct: Dict[str, Set[str]] = {}
            for cls in self.classes.values():
                for base in cls.bases:
                    direct.setdefault(base, set()).add(cls.qname)
            for name in self.classes:
                out: Set[str] = set()
                queue = list(direct.get(name, ()))
                while queue:
                    sub = queue.pop()
                    if sub in out:
                        continue
                    out.add(sub)
                    queue.extend(direct.get(sub, ()))
                self._descendants[name] = out
        return self._descendants.get(qname, set())

    def effective_methods(self, qname: str) -> Dict[str, FunctionInfo]:
        """Method table of ``qname`` with inheritance applied
        (own definitions win over ancestors, nearest ancestor first)."""
        table: Dict[str, FunctionInfo] = {}
        for owner in [qname] + self.ancestors(qname):
            info = self.classes.get(owner)
            if info is None:
                continue
            for name, fn in info.methods.items():
                table.setdefault(name, fn)
        return table

    def attr_type(self, cls_qname: str, attr: str) -> Optional[str]:
        """Inferred class qname of ``self.<attr>`` for a class,
        searching the hierarchy nearest-first."""
        for owner in [cls_qname] + self.ancestors(cls_qname):
            info = self.classes.get(owner)
            if info is None or info.state is None:
                continue
            found = info.state.attr_types.get(attr)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # Call-graph edges
    # ------------------------------------------------------------------
    def resolve_call(self, fn: FunctionInfo,
                     site: CallSite) -> Set[str]:
        """Resolve one call site to the set of possible callee qnames.

        Virtual dispatch is modelled as a *may* edge set: a ``self.m``
        call from class ``C`` targets ``m`` as seen by ``C`` **and**
        every override of ``m`` in ``C``'s descendants; an
        ``self.attr.m`` call does the same for the attribute's inferred
        type.
        """
        module = self.modules[fn.module]
        if site.kind == "self" and fn.cls is not None:
            return self._virtual_targets(fn.cls, site.target)
        if site.kind == "attr" and fn.cls is not None:
            receiver = site.receiver or ""
            typ = self.attr_type(fn.cls, receiver)
            if typ is not None:
                return self._virtual_targets(typ, site.target)
            return set()
        if site.kind == "name":
            resolved = self.resolve_name(module, site.target)
            if resolved in self.functions:
                return {resolved}
            if resolved in self.classes:
                init = f"{resolved}.__init__"
                table = self.effective_methods(resolved)
                ctor = table.get("__init__")
                if ctor is not None:
                    return {ctor.qname}
                return {init} if init in self.functions else set()
            simple = site.target.split(".")[-1]
            local = f"{fn.module}.{simple}"
            if local in self.functions:
                return {local}
        return set()

    def _virtual_targets(self, cls_qname: str, method: str) -> Set[str]:
        targets: Set[str] = set()
        table = self.effective_methods(cls_qname)
        if method in table:
            targets.add(table[method].qname)
        for sub in self.descendants(cls_qname):
            info = self.classes.get(sub)
            if info is not None and method in info.methods:
                targets.add(info.methods[method].qname)
        return targets

    def call_edges(self) -> Dict[str, Set[Tuple[str, CallSite]]]:
        """The full call graph: ``caller -> {(callee, site), ...}``."""
        edges: Dict[str, Set[Tuple[str, CallSite]]] = {}
        for fn in self.functions.values():
            out: Set[Tuple[str, CallSite]] = set()
            for site in fn.calls:
                for callee in self.resolve_call(fn, site):
                    out.add((callee, site))
            edges[fn.qname] = out
        return edges

    # ------------------------------------------------------------------
    # Suppression / source access helpers
    # ------------------------------------------------------------------
    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        """The module parsed from ``path``, if any."""
        for module in self.modules.values():
            if module.path == path:
                return module
        return None

    def snippet(self, module: ModuleInfo, line: int) -> str:
        """Stripped source line ``line`` of ``module`` (1-based)."""
        if 1 <= line <= len(module.source_lines):
            return module.source_lines[line - 1].strip()
        return ""

    def suppressed(self, module: ModuleInfo, line: int,
                   rule: str) -> bool:
        """True when ``# tp: allow=<rule>`` covers ``line``."""
        return rule in module.allowed.get(line, set())


def iter_class_functions(project: Project,
                         qnames: Iterable[str]) -> List[FunctionInfo]:
    """The :class:`FunctionInfo` records for the given qnames."""
    return [project.functions[q] for q in qnames
            if q in project.functions]
