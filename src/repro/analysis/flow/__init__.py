"""Interprocedural dataflow analysis for the TP lint pass.

Where :mod:`repro.analysis.lint` checks one AST node at a time, this
subpackage sees the whole program: :mod:`~repro.analysis.flow.callgraph`
parses every module once and builds a name-resolved call graph plus a
per-class mutable-state inventory (:mod:`~repro.analysis.flow.state`);
:mod:`~repro.analysis.flow.engine` runs fixed-point closures over the
graph; :mod:`~repro.analysis.flow.rules` implements the ``TP1xx``
rules on top (state-reset, transitive flash escape, frozen-config
aliasing, nondeterministic iteration); :mod:`~repro.analysis.flow.cfg`
builds per-function control-flow graphs with explicit exception edges
for the ``TP3xx`` typestate pass in
:mod:`~repro.analysis.flow.typestate`; and
:mod:`~repro.analysis.flow.sarif` serializes every pass's findings as
SARIF 2.1.0 for GitHub code scanning.

Run it through the shared CLI::

    python -m repro.analysis lint src --format sarif
"""

from __future__ import annotations

from .callgraph import Project
from .cfg import CFG, build_cfg
from .domains import DOMAIN_RULES, check_domains
from .engine import FlowEngine, fixed_point
from .rules import (FLOW_RULES, PROTOCOL_RULES, analyze_paths,
                    analyze_project, analyze_source)
from .sarif import to_sarif
from .typestate import (ORDER_SPECS, PROTOCOL_SPECS, OrderSpec,
                        ProtocolSpec, check_protocols)

__all__ = [
    "CFG",
    "DOMAIN_RULES",
    "FLOW_RULES",
    "FlowEngine",
    "ORDER_SPECS",
    "OrderSpec",
    "PROTOCOL_RULES",
    "PROTOCOL_SPECS",
    "Project",
    "ProtocolSpec",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "build_cfg",
    "check_domains",
    "check_protocols",
    "fixed_point",
    "to_sarif",
]
