"""A small fixed-point framework over the project call graph.

The TP1xx rules are all instances of one scheme: seed a set of *facts*
at some functions, propagate them along call edges (forwards for
"reachable from the run path", backwards for "may reach a flash
mutation") until nothing changes, then report where a fact meets a
syntactic pattern.  :class:`FlowEngine` owns the propagation so each
rule stays a few lines of seeding plus a few lines of reporting.

The solver is a classic worklist **forward may-analysis**: node facts
are sets, the join is union, and a transfer function maps the incoming
union to the node's contribution.  Monotone transfers over the finite
fact powerset guarantee termination.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from .callgraph import CallSite, Project

__all__ = ["FlowEngine", "fixed_point"]

#: a transfer function: (node, incoming facts) -> facts added at node
Transfer = Callable[[str, FrozenSet[str]], FrozenSet[str]]

_IDENTITY: Transfer = lambda _node, facts: facts  # noqa: E731


def fixed_point(edges: Mapping[str, Iterable[str]],
                seeds: Mapping[str, FrozenSet[str]],
                transfer: Transfer = _IDENTITY,
                ) -> Dict[str, FrozenSet[str]]:
    """Solve a union-join dataflow problem to a fixed point.

    ``edges[n]`` lists the nodes facts flow *to* from ``n``;
    ``seeds[n]`` are the facts generated at ``n`` regardless of flow.
    ``transfer`` filters/extends the facts a node passes on (default:
    pass everything through).  Returns the stable fact set per node.
    """
    facts: Dict[str, FrozenSet[str]] = {n: frozenset(s)
                                        for n, s in seeds.items()}
    worklist: List[str] = list(facts)
    while worklist:
        node = worklist.pop()
        outgoing = transfer(node, facts.get(node, frozenset()))
        if not outgoing:
            continue
        for successor in edges.get(node, ()):
            have = facts.get(successor, frozenset())
            merged = have | outgoing
            if merged != have:
                facts[successor] = merged
                worklist.append(successor)
    return facts


class FlowEngine:
    """Directional closures over one project's call graph."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: caller -> {(callee qname, call site)}
        self.edges: Dict[str, Set[Tuple[str, CallSite]]] = (
            project.call_edges())
        self._forward: Dict[str, Set[str]] = {
            caller: {callee for callee, _ in sites}
            for caller, sites in self.edges.items()}
        self._backward: Dict[str, Set[str]] = {}
        for caller, callees in self._forward.items():
            for callee in callees:
                self._backward.setdefault(callee, set()).add(caller)

    # ------------------------------------------------------------------
    # Closures
    # ------------------------------------------------------------------
    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """All functions reachable from ``roots`` along call edges
        (roots included): the "is on the run path" closure."""
        seeds = {root: frozenset({"R"}) for root in roots
                 if root in self.project.functions}
        solved = fixed_point(self._forward, seeds)
        return {node for node, facts in solved.items() if facts}

    def reaching(self, targets: Iterable[str]) -> Set[str]:
        """All functions that may transitively *call into* ``targets``
        (targets included): the taint closure used by TP102."""
        seeds = {t: frozenset({"T"}) for t in targets
                 if t in self.project.functions}
        solved = fixed_point(self._backward, seeds)
        return {node for node, facts in solved.items() if facts}

    def callers_of(self, qname: str) -> Set[str]:
        """Direct callers of ``qname`` (the reverse call-graph edge),
        used by the domain pass to requeue callers when a function's
        inferred return domain changes."""
        return set(self._backward.get(qname, ()))

    # ------------------------------------------------------------------
    # Call-site queries
    # ------------------------------------------------------------------
    def sites_into(self, caller: str,
                   callees: Set[str]) -> List[Tuple[str, CallSite]]:
        """Call sites in ``caller`` whose resolved callee is in
        ``callees``, sorted by position."""
        hits = [(callee, site) for callee, site
                in self.edges.get(caller, set()) if callee in callees]
        return sorted(hits, key=lambda pair: (pair[1].line,
                                              pair[1].col, pair[0]))
