"""Address-domain and unit abstract interpretation (the ``TP2xx`` pass).

Every address space in the simulator — logical page (LPN), physical
page (PPN), virtual translation page (VPN/VTPN), block index, in-block
page offset — and every unit (microseconds vs milliseconds, bytes vs
page/entry counts) is a bare ``int``/``float``.  A swapped ``lpn``/
``ppn`` argument or a µs-vs-ms mix therefore corrupts results silently
instead of failing.  This pass gives those ints a *domain* and reports
where two incompatible domains meet.

The lattice is flat: :data:`UNKNOWN` at the bottom, one element per
domain, and :data:`CONFLICT` on top (a slot fed incompatible domains by
different callers — treated as polymorphic, never reported).  Domains
are seeded from

* **parameter names and annotations** — ``lpn``/``base_lpn`` is an
  LPN, ``*_us`` is microseconds, ``*_bytes`` is bytes, an ``lpn: LPN``
  annotation wins over the name (see :func:`domain_from_name`);
* a small **curated signature map** for the core APIs
  (``BaseFTL._translate`` returns a PPN, ``FlashMemory.program`` takes
  polymorphic page metadata, ``ByteBudget.charge`` takes bytes,
  ``AccessResult.service_time`` returns microseconds, ...);
* the special ``flash_table`` contract: it is always indexed by LPN
  and always holds authoritative PPNs.

Seeds are then propagated **interprocedurally** through the
:class:`~repro.analysis.flow.engine.FlowEngine` call graph with a
chaotic-iteration worklist: unseeded parameters join the domains of
their incoming arguments (disagreement → :data:`CONFLICT`), inferred
return domains flow back to callers, until nothing changes.  A final
pass reports four rules:

========  ==============================================================
TP201     cross-domain value flow: an LPN-tainted value reaching a
          PPN-typed parameter / store slot (and any other
          address-domain confusion across a call or assignment)
TP202     mixed-domain arithmetic or comparison (``lpn + ppn``,
          ``block == ppn``) without a conversion idiom
TP203     time-unit mixing: microsecond-seeded values meeting
          millisecond values across calls or arithmetic
TP204     bytes vs page/entry counts meeting in the cache-budget path
========  ==============================================================

**Conversion idioms** deliberately launder domains instead of flagging:
multiplying or dividing two domain-carrying values yields
:data:`UNKNOWN` (``lbn * pages_per_block`` is how a block index
legitimately becomes a page address), adding an address to a plain
count is pointer arithmetic (``base_lpn + i``), and comparing an
address against a count is a bounds check
(``0 <= lpn < logical_pages``).  Named conversion helpers
(``us_to_ms``-style, matched by :data:`_CONVERSION_RE`) type their
result by the target unit and never have their arguments checked.  A
``# tp: domain(ppn)`` pragma re-types the assignment target on its
line and suppresses domain findings there; the shared
``# tp: allow=TP20x`` pragma works as for every other rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lint import Finding, _dotted
from .callgraph import CallSite, FunctionInfo, ModuleInfo, Project
from .engine import FlowEngine
from .state import _param_annotations

__all__ = [
    "DOMAIN_RULES",
    "Domain",
    "check_domains",
    "domain_from_name",
]

#: every domain rule, code -> one-line description
DOMAIN_RULES: Dict[str, str] = {
    "TP201": ("cross-domain value flow: an address of one domain "
              "(LPN/PPN/VPN/block/offset) reaches a parameter or store "
              "slot typed as another domain"),
    "TP202": ("mixed-domain arithmetic or comparison (e.g. lpn + ppn, "
              "block == ppn) without a conversion idiom such as "
              "* pages_per_block"),
    "TP203": ("time-unit mixing: a microsecond-seeded value meets a "
              "millisecond value across a call, assignment or "
              "arithmetic"),
    "TP204": ("bytes vs page/entry counts mixed in the cache-budget "
              "path (byte budgets and entry counts are different "
              "units)"),
}

# ----------------------------------------------------------------------
# The domain lattice
# ----------------------------------------------------------------------
Domain = str

LPN: Domain = "LPN"
PPN: Domain = "PPN"
VPN: Domain = "VPN"
BLOCK: Domain = "BLOCK"
PAGE_OFFSET: Domain = "PAGE_OFFSET"
TIME_US: Domain = "TIME_US"
TIME_MS: Domain = "TIME_MS"
BYTES: Domain = "BYTES"
PAGES: Domain = "PAGES"
UNKNOWN: Domain = "UNKNOWN"
CONFLICT: Domain = "CONFLICT"

ADDRESS_DOMAINS = frozenset({LPN, PPN, VPN, BLOCK, PAGE_OFFSET})
TIME_DOMAINS = frozenset({TIME_US, TIME_MS})
COUNT_DOMAINS = frozenset({BYTES, PAGES})
_SILENT = frozenset({UNKNOWN, CONFLICT})


def _join(a: Domain, b: Domain) -> Domain:
    """Interprocedural join: unknowns are ignored, clashes conflict."""
    if a == b:
        return a
    if a in _SILENT:
        return b if a == UNKNOWN else CONFLICT
    if b in _SILENT:
        return a if b == UNKNOWN else CONFLICT
    return CONFLICT


def _soft_join(a: Domain, b: Domain) -> Domain:
    """Expression join (ternaries, ``min``/``max``): clashes go silent."""
    if a == b:
        return a
    if a == UNKNOWN:
        return b
    if b == UNKNOWN:
        return a
    return UNKNOWN


def _clash(a: Domain, b: Domain) -> Optional[str]:
    """Category of an incompatible meeting of ``a`` and ``b``.

    Returns ``None`` when the pair is fine: equal domains, anything
    unknown/polymorphic, and the two whitelisted conversion idioms —
    address vs count (bounds checks, pointer arithmetic) in either
    direction.
    """
    if a in _SILENT or b in _SILENT or a == b:
        return None
    pair = {a, b}
    if pair <= TIME_DOMAINS:
        return "time"
    if pair <= COUNT_DOMAINS:
        return "count"
    if PAGE_OFFSET in pair:
        other = (pair - {PAGE_OFFSET}).pop()
        # an offset is relative: meeting an absolute address (pointer
        # arithmetic, merge checks) or a page count (bounds checks)
        # is the documented idiom; meeting a time or byte value is not
        return "mixed" if other in TIME_DOMAINS or other == BYTES \
            else None
    if pair <= ADDRESS_DOMAINS:
        return "address"
    if pair & ADDRESS_DOMAINS and pair & COUNT_DOMAINS:
        return None  # bounds check / pointer arithmetic idiom
    return "mixed"


#: clash category -> rule code, per context
_FLOW_RULE = {"address": "TP201", "mixed": "TP201",
              "time": "TP203", "count": "TP204"}
_ARITH_RULE = {"address": "TP202", "mixed": "TP202",
               "time": "TP203", "count": "TP204"}


# ----------------------------------------------------------------------
# Name / annotation seeding
# ----------------------------------------------------------------------
#: identifier words that carry a domain (matched per ``_``-split word)
_WORD_DOMAINS: Dict[str, Domain] = {
    "lpn": LPN, "lpns": LPN,
    "ppn": PPN, "ppns": PPN, "ptpn": PPN, "ptpns": PPN,
    "vtpn": VPN, "vtpns": VPN, "vpn": VPN, "mvpn": VPN,
    "lbn": BLOCK, "pbn": BLOCK, "block": BLOCK, "blocks": BLOCK,
    "offset": PAGE_OFFSET, "offsets": PAGE_OFFSET,
    "bytes": BYTES, "nbytes": BYTES,
    "pages": PAGES, "npages": PAGES,
    "entries": PAGES, "nentries": PAGES,
}

#: unit suffixes: only meaningful as the *last* word of an identifier
_SUFFIX_DOMAINS: Dict[str, Domain] = {"us": TIME_US, "ms": TIME_MS}

#: exact-name overrides (highest priority, beats the word heuristics)
_NAME_DOMAINS: Dict[str, Domain] = {
    "arrival": TIME_US,      # Request/RequestTiming arrival clock
    "col_offset": UNKNOWN,   # ast coordinates, not a page offset
    "end_col_offset": UNKNOWN,
}

#: ``self.<attr>`` / ``x.<attr>`` reads with a known domain by name
_ATTR_DOMAINS: Dict[str, Domain] = {
    "arrival": TIME_US,
    "response_time": TIME_US,
    "queue_delay": TIME_US,
    "service_time": TIME_US,
    "makespan": TIME_US,
}

#: type-alias annotations from repro.types, mapped onto the lattice
_ANNOTATION_DOMAINS: Dict[str, Domain] = {
    "LPN": LPN, "PPN": PPN, "VTPN": VPN, "PTPN": PPN, "BlockId": BLOCK,
}

#: ``to_ms`` / ``us_to_ms`` / ``as_pages`` style conversion helpers
_CONVERSION_RE = re.compile(r"(?:^|_)(?:to|as)_([a-z]+)$")

#: ``# tp: domain(ppn)`` pragma, re-typing its line's assignment target
_DOMAIN_PRAGMA_RE = re.compile(r"tp:\s*domain\((\w+)\)", re.IGNORECASE)

#: pragma / conversion-helper tokens -> domain
_TOKEN_DOMAINS: Dict[str, Domain] = {
    "lpn": LPN, "ppn": PPN, "ptpn": PPN, "vpn": VPN, "vtpn": VPN,
    "mvpn": VPN, "block": BLOCK, "offset": PAGE_OFFSET, "us": TIME_US,
    "ms": TIME_MS, "bytes": BYTES, "pages": PAGES, "entries": PAGES,
    "any": UNKNOWN, "unknown": UNKNOWN,
}


def domain_from_name(name: str) -> Domain:
    """Best-effort domain of an identifier, from its ``_``-split words.

    ``base_lpn`` → LPN, ``service_us`` → TIME_US, ``budget_bytes`` →
    BYTES, ``capacity_entries`` → PAGES.  Ratio-style names
    (``pages_per_block``, ``entries_per_page``) and names matching two
    different domains are conversion factors, not members of either
    domain, and map to :data:`UNKNOWN`.
    """
    if name.isupper():  # UNMAPPED, PPN_BYTES, type-alias constants
        return UNKNOWN
    lowered = name.lower()
    if lowered in _NAME_DOMAINS:
        return _NAME_DOMAINS[lowered]
    words = lowered.split("_")
    if "per" in words:
        return UNKNOWN  # pages_per_block and friends are ratios
    found = {_WORD_DOMAINS[w] for w in words if w in _WORD_DOMAINS}
    if words[-1] in _SUFFIX_DOMAINS:
        found.add(_SUFFIX_DOMAINS[words[-1]])
    if len(found) == 1:
        return next(iter(found))
    return UNKNOWN


def _conversion_target(name: str) -> Optional[Domain]:
    """Result domain of a named conversion helper, if it is one."""
    match = _CONVERSION_RE.search(name.lower())
    if match is None:
        return None
    return _TOKEN_DOMAINS.get(match.group(1), UNKNOWN)


# ----------------------------------------------------------------------
# Curated signature map for the core APIs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Sig:
    """Curated domains for one function: per-param and return."""

    params: Mapping[str, Domain] = field(default_factory=dict)
    returns: Optional[Domain] = None


#: keyed by ``ClassName.method`` (or bare function name); these beat
#: both the name heuristics and interprocedural inference
_SIGNATURES: Dict[str, _Sig] = {
    # --- the translation core -----------------------------------------
    "BaseFTL._translate": _Sig({"lpn": LPN}, returns=PPN),
    "BaseFTL._record_mapping": _Sig({"lpn": LPN, "ppn": PPN}),
    "BaseFTL._cache_update_if_present": _Sig({"lpn": LPN, "ppn": PPN}),
    "BaseFTL.lookup_current": _Sig({"lpn": LPN}, returns=PPN),
    "BaseFTL.cache_peek": _Sig({"lpn": LPN}, returns=PPN),
    "BaseFTL.read_translation_page": _Sig({"vtpn": VPN}),
    "BaseFTL.write_translation_page": _Sig({"vtpn": VPN}),
    "GlobalTranslationDirectory.lookup": _Sig({"vtpn": VPN},
                                              returns=PPN),
    "GlobalTranslationDirectory.get": _Sig({"vtpn": VPN}, returns=PPN),
    "GlobalTranslationDirectory.update": _Sig({"vtpn": VPN,
                                               "ptpn": PPN}),
    "GlobalTranslationDirectory.is_mapped": _Sig({"vtpn": VPN}),
    "TranslationGeometry.vtpn_of": _Sig({"lpn": LPN}, returns=VPN),
    "TranslationGeometry.offset_of": _Sig({"lpn": LPN},
                                          returns=PAGE_OFFSET),
    "TranslationGeometry.locate": _Sig({"lpn": LPN}),
    "TranslationGeometry.first_lpn": _Sig({"vtpn": VPN}, returns=LPN),
    "TranslationGeometry.last_lpn": _Sig({"vtpn": VPN}, returns=LPN),
    "TranslationGeometry.lpns_of": _Sig({"vtpn": VPN}),
    "TranslationGeometry.entries_in": _Sig({"vtpn": VPN},
                                           returns=PAGES),
    "TranslationGeometry.same_page": _Sig({"lpn_a": LPN, "lpn_b": LPN}),
    # --- the flash substrate ------------------------------------------
    # program()/read() metadata is polymorphic by design: an LPN for
    # data pages, a VTPN for translation pages -> CONFLICT (never
    # flagged, never propagated).
    "FlashMemory.program": _Sig({"meta": CONFLICT}, returns=PPN),
    "FlashMemory.program_into": _Sig({"meta": CONFLICT}, returns=PPN),
    "FlashMemory.read": _Sig({"ppn": PPN}, returns=CONFLICT),
    "FlashMemory.invalidate": _Sig({"ppn": PPN}),
    "FlashMemory.is_valid": _Sig({"ppn": PPN}),
    "FlashMemory.erase": _Sig({"block_id": BLOCK}),
    "FlashMemory.ppn_of": _Sig({"block_id": BLOCK,
                                "offset": PAGE_OFFSET}, returns=PPN),
    "FlashMemory.block_id_of": _Sig({"ppn": PPN}, returns=BLOCK),
    "FlashMemory.offset_of": _Sig({"ppn": PPN}, returns=PAGE_OFFSET),
    "FlashMemory.block_of": _Sig({"ppn": PPN}),
    # --- budgets and timing -------------------------------------------
    "ByteBudget.__init__": _Sig({"capacity": BYTES}),
    "ByteBudget.fits": _Sig({"nbytes": BYTES}),
    "ByteBudget.charge": _Sig({"nbytes": BYTES}),
    "ByteBudget.release": _Sig({"nbytes": BYTES}),
    "ByteBudget.require": _Sig({"nbytes": BYTES}),
    "CacheConfig.entry_budget_bytes": _Sig({"gtd_bytes": BYTES},
                                           returns=BYTES),
    "AccessResult.service_time": _Sig({"read_us": TIME_US,
                                       "write_us": TIME_US,
                                       "erase_us": TIME_US},
                                      returns=TIME_US),
    "ResponseStats.percentile": _Sig(returns=TIME_US),
}

#: dataclass constructors (no ``__init__`` def to resolve): keyword
#: arguments are checked against these domains
_CTOR_SIGNATURES: Dict[str, Dict[str, Domain]] = {
    "RequestTiming": {"arrival": TIME_US, "start": TIME_US,
                      "finish": TIME_US},
}

#: builtins whose result adopts its arguments' (soft-joined) domain
_TRANSPARENT_BUILTINS = frozenset({"min", "max", "abs", "int", "float"})


def _signature_key(project: Project, fn: FunctionInfo) -> str:
    """``ClassName.method`` (or bare name) key into :data:`_SIGNATURES`."""
    if fn.cls is not None and fn.cls in project.classes:
        return f"{project.classes[fn.cls].name}.{fn.name}"
    return fn.name


# ----------------------------------------------------------------------
# Function summaries
# ----------------------------------------------------------------------
def _positional_params(node: ast.AST) -> List[str]:
    """Positional parameter names, ``self``/``cls`` stripped."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    names = [a.arg for a in node.args.posonlyargs + node.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


@dataclass
class _Summary:
    """Domain summary of one function: parameter and return domains."""

    params: List[str]
    domains: Dict[str, Domain]
    #: params whose domain is pinned (curated/annotation/name-seeded)
    pinned: Set[str]
    ret: Domain = UNKNOWN
    ret_pinned: bool = False

    def param_domain(self, name: str) -> Domain:
        """Current domain of parameter ``name`` (UNKNOWN if unseeded)."""
        return self.domains.get(name, UNKNOWN)

    def observe_arg(self, name: str, domain: Domain) -> bool:
        """Join an incoming argument domain; True when it changed."""
        if name in self.pinned or name not in self.domains:
            return False
        merged = _join(self.domains[name], domain)
        if merged == self.domains[name]:
            return False
        self.domains[name] = merged
        return True

    def observe_return(self, domain: Domain) -> bool:
        """Join an inferred return domain; True when it changed."""
        if self.ret_pinned:
            return False
        merged = _join(self.ret, domain)
        if merged == self.ret:
            return False
        self.ret = merged
        return True


def _seed_summary(project: Project, fn: FunctionInfo) -> _Summary:
    """Initial summary: curated map > annotation > name heuristic."""
    sig = _SIGNATURES.get(_signature_key(project, fn), _Sig())
    annotations = _param_annotations(fn.node)
    params = _positional_params(fn.node)
    kwonly = []
    if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        kwonly = [a.arg for a in fn.node.args.kwonlyargs]
    domains: Dict[str, Domain] = {}
    pinned: Set[str] = set()
    for name in params + kwonly:
        if name in sig.params:
            domains[name] = sig.params[name]
            pinned.add(name)
            continue
        annotated = _ANNOTATION_DOMAINS.get(
            annotations.get(name, "").split(".")[-1], UNKNOWN)
        hinted = annotated if annotated != UNKNOWN \
            else domain_from_name(name)
        domains[name] = hinted
        if hinted != UNKNOWN:
            pinned.add(name)
    ret: Domain = UNKNOWN
    ret_pinned = False
    if sig.returns is not None:
        ret, ret_pinned = sig.returns, True
    else:
        converted = _conversion_target(fn.name)
        if converted is not None:
            ret, ret_pinned = converted, True
        else:
            hinted = domain_from_name(fn.name)
            if hinted != UNKNOWN:
                ret, ret_pinned = hinted, True
    return _Summary(params=params, domains=domains, pinned=pinned,
                    ret=ret, ret_pinned=ret_pinned)


# ----------------------------------------------------------------------
# The per-function abstract evaluator
# ----------------------------------------------------------------------
_ARITH_OPS = (ast.Add, ast.Sub)
_ORDERED_CMPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _domain_pragmas(module: ModuleInfo) -> Dict[int, Domain]:
    """Per-line ``# tp: domain(...)`` re-typing pragmas."""
    out: Dict[int, Domain] = {}
    for lineno, text in enumerate(module.source_lines, start=1):
        match = _DOMAIN_PRAGMA_RE.search(text)
        if match:
            out[lineno] = _TOKEN_DOMAINS.get(
                match.group(1).lower(), UNKNOWN)
    return out


class _FnPass:
    """One flow-ordered walk over a function body.

    In *propagation* runs it feeds observed argument/return domains
    into the summaries; in the *reporting* run it emits findings.
    """

    def __init__(self, pass_: "_DomainPass", fn: FunctionInfo,
                 report: bool) -> None:
        self.pass_ = pass_
        self.project = pass_.project
        self.fn = fn
        self.module = pass_.project.modules[fn.module]
        self.pragmas = pass_.pragmas(self.module)
        self.report = report
        self.summary = pass_.summaries[fn.qname]
        self.env: Dict[str, Domain] = dict(self.summary.domains)
        self.changed: Set[str] = set()
        self.findings: List[Finding] = []

    # -- reporting -----------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if not self.report:
            return
        line = getattr(node, "lineno", self.fn.line)
        col = getattr(node, "col_offset", 0)
        if line in self.pragmas:  # tp: domain(...) covers the line
            return
        if self.project.suppressed(self.module, line, rule):
            return
        self.findings.append(Finding(
            rule=rule, path=self.module.path, line=line, col=col,
            message=message,
            snippet=self.project.snippet(self.module, line)))

    def _check(self, a: Domain, b: Domain, rules: Dict[str, str],
               node: ast.AST, describe: str) -> None:
        category = _clash(a, b)
        if category is None:
            return
        first, second = sorted((a, b))
        self._flag(rules[category], node,
                   f"{describe} mixes the {first} and {second} "
                   f"domains" + (" (different time units)"
                                 if category == "time" else ""))

    # -- driver --------------------------------------------------------
    def run(self) -> None:
        """Walk the function body once in flow order."""
        body = getattr(self.fn.node, "body", [])
        self._block(body)

    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    # -- statements ----------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            domain = self._eval(stmt.value)
            pragma = self.pragmas.get(stmt.lineno)
            if pragma is not None:
                domain = pragma
            for target in stmt.targets:
                self._assign(target, domain, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            domain = (self._eval(stmt.value)
                      if stmt.value is not None else UNKNOWN)
            annotated = _ANNOTATION_DOMAINS.get(
                (_dotted(stmt.annotation) or "").split(".")[-1], UNKNOWN)
            if annotated != UNKNOWN:
                domain = annotated
            pragma = self.pragmas.get(stmt.lineno)
            if pragma is not None:
                domain = pragma
            self._assign(stmt.target, domain, stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            target_domain = self._eval(stmt.target)
            value_domain = self._eval(stmt.value)
            if isinstance(stmt.op, _ARITH_OPS):
                self._check(target_domain, value_domain, _ARITH_RULE,
                            stmt, "augmented assignment")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                domain = self._eval(stmt.value)
                if domain not in _SILENT:
                    if self.summary.observe_return(domain):
                        self.changed.add(self.fn.qname)
        elif isinstance(stmt, (ast.Expr, ast.Await)):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._bind_target(stmt.target)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._eval(target)
        # nested defs/classes get their own summaries; do not descend

    def _bind_target(self, target: ast.expr) -> None:
        """Bind loop/comprehension targets by their name heuristic."""
        if isinstance(target, ast.Name):
            self.env[target.id] = domain_from_name(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt)

    def _assign(self, target: ast.expr, domain: Domain,
                value: Optional[ast.expr], stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            hinted = domain_from_name(target.id)
            self._store(target.id, hinted, domain, stmt)
        elif isinstance(target, ast.Attribute):
            self._eval(target.value)
            hinted = _ATTR_DOMAINS.get(target.attr,
                                       domain_from_name(target.attr))
            self._store(None, hinted, domain, stmt,
                        shown=f"store to .{target.attr}")
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, domain)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, ast.Tuple) and \
                    len(value.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts,
                                                 value.elts):
                    self._assign(sub_target, self._eval(sub_value),
                                 sub_value, stmt)
            else:
                for sub_target in target.elts:
                    self._bind_target(sub_target)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value)

    def _store(self, name: Optional[str], hinted: Domain,
               domain: Domain, stmt: ast.stmt, shown: str = "") -> None:
        """Record one store; flag hint-vs-value domain clashes."""
        if hinted not in _SILENT and domain not in _SILENT \
                and hinted != domain:
            describe = shown or (f"assignment to {name!r}"
                                 if name else "assignment")
            self._check(hinted, domain, _FLOW_RULE, stmt, describe)
            domain = hinted  # trust the name downstream
        if name is not None:
            self.env[name] = domain if domain != UNKNOWN else hinted

    # -- expressions ---------------------------------------------------
    def _eval(self, node: Optional[ast.expr]) -> Domain:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return domain_from_name(node.id)
        if isinstance(node, ast.Attribute):
            self._eval(node.value)
            return _ATTR_DOMAINS.get(node.attr,
                                     domain_from_name(node.attr))
        if isinstance(node, ast.Subscript):
            return self._subscript_load(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _soft_join(self._eval(node.body),
                              self._eval(node.orelse))
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            domain = self._eval(node.value)
            self._assign(node.target, domain, node.value, node)
            return domain
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                self._eval(generator.iter)
                self._bind_target(generator.target)
                for cond in generator.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                self._eval(node.key)
                self._eval(node.value)
            else:
                self._eval(node.elt)
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                self._eval(value)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value)
            return UNKNOWN
        if isinstance(node, ast.FormattedValue):
            self._eval(node.value)
            return UNKNOWN
        return UNKNOWN  # constants, lambdas, ellipsis, ...

    def _binop(self, node: ast.BinOp) -> Domain:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, _ARITH_OPS):
            self._check(left, right, _ARITH_RULE, node,
                        "'+'" if isinstance(node.op, ast.Add)
                        else "'-'")
            if PAGE_OFFSET in (left, right) and left != right:
                # an offset is an increment: base + offset stays in
                # base's domain (UNKNOWN base stays unknown)
                other = right if left == PAGE_OFFSET else left
                return other if other not in _SILENT else UNKNOWN
            if left in _SILENT:
                return right if right not in _SILENT else UNKNOWN
            if right in _SILENT or left == right:
                return left
            # whitelisted cross-family pair: address + count is
            # pointer arithmetic and stays in the address domain
            if left in ADDRESS_DOMAINS:
                return left
            if right in ADDRESS_DOMAINS:
                return right
            return UNKNOWN
        # '*', '/', '//', '%', '<<', ... are conversions: multiplying
        # by pages_per_block (or a literal like entry size 8) moves a
        # value between domains, so the result is deliberately UNKNOWN
        # and a name hint on the assignment target re-types it
        return UNKNOWN

    def _compare(self, node: ast.Compare) -> None:
        left = self._eval(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator)
            if isinstance(op, _ORDERED_CMPS):
                self._check(left, right, _ARITH_RULE, node,
                            "comparison")
            left = right

    # -- subscripts: the flash_table contract --------------------------
    @staticmethod
    def _is_flash_table(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "flash_table"
        return isinstance(node, ast.Attribute) and \
            node.attr == "flash_table"

    def _subscript_load(self, node: ast.Subscript) -> Domain:
        if self._is_flash_table(node.value):
            index = self._eval(node.slice)
            self._check_flash_table_index(index, node)
            return PPN
        self._eval(node.value)
        self._eval(node.slice)
        return UNKNOWN

    def _subscript_store(self, target: ast.Subscript,
                         domain: Domain) -> None:
        if self._is_flash_table(target.value):
            index = self._eval(target.slice)
            self._check_flash_table_index(index, target)
            if domain not in _SILENT and domain != PPN:
                self._flag("TP201", target,
                           f"flash_table stores authoritative PPNs "
                           f"but receives a {domain}-domain value")
        else:
            self._eval(target.value)
            self._eval(target.slice)

    def _check_flash_table_index(self, index: Domain,
                                 node: ast.AST) -> None:
        if index in ADDRESS_DOMAINS and index != LPN:
            self._flag("TP201", node,
                       f"flash_table is indexed by LPN but receives "
                       f"a {index}-domain index")

    # -- calls ---------------------------------------------------------
    def _call_site(self, node: ast.Call) -> Optional[CallSite]:
        """Re-classify a call expression the way _CallCollector does."""
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in ("self",
                                                            "cls"):
                return CallSite(kind="self", target=func.attr,
                                line=node.lineno,
                                col=node.col_offset)
            if isinstance(value, ast.Attribute) and \
                    isinstance(value.value, ast.Name) and \
                    value.value.id in ("self", "cls"):
                return CallSite(kind="attr", target=func.attr,
                                receiver=value.attr, line=node.lineno,
                                col=node.col_offset)
            dotted = _dotted(func)
            if dotted is not None:
                return CallSite(kind="name", target=dotted,
                                line=node.lineno, col=node.col_offset)
            return None
        if isinstance(func, ast.Name):
            return CallSite(kind="name", target=func.id,
                            line=node.lineno, col=node.col_offset)
        return None

    def _call(self, node: ast.Call) -> Domain:
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            self._eval(node.func)
        arg_domains = [self._eval(arg) for arg in node.args]
        kw_domains = {kw.arg: self._eval(kw.value)
                      for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)
        simple = (node.func.attr if isinstance(node.func, ast.Attribute)
                  else node.func.id
                  if isinstance(node.func, ast.Name) else "")
        converted = _conversion_target(simple)
        if converted is not None:
            return converted  # conversion helpers launder domains
        site = self._call_site(node)
        callees: Set[str] = set()
        if site is not None:
            callees = self.project.resolve_call(self.fn, site)
        if not callees:
            return self._unresolved_call(node, simple, arg_domains)
        returns: Domain = UNKNOWN
        flagged: Set[Tuple[int, str]] = set()
        for qname in sorted(callees):
            summary = self.pass_.summaries.get(qname)
            if summary is None:
                continue
            callee_fn = self.project.functions[qname]
            if _conversion_target(callee_fn.name) is None:
                self._check_args(node, qname, summary, arg_domains,
                                 kw_domains, flagged)
            returns = _soft_join(returns, summary.ret)
        if returns == UNKNOWN:
            ctor = self._ctor_check(node, simple, kw_domains)
            if ctor:
                return UNKNOWN
            hinted = domain_from_name(simple)
            if hinted != UNKNOWN:
                return hinted
        return returns

    def _unresolved_call(self, node: ast.Call, simple: str,
                         arg_domains: List[Domain]) -> Domain:
        if self._ctor_check(node, simple,
                            {kw.arg: self._eval(kw.value)
                             for kw in node.keywords
                             if kw.arg is not None}):
            return UNKNOWN
        if simple in _TRANSPARENT_BUILTINS:
            joined: Domain = UNKNOWN
            for domain in arg_domains:
                joined = _soft_join(joined, domain)
            return joined
        return domain_from_name(simple)

    def _ctor_check(self, node: ast.Call, simple: str,
                    kw_domains: Dict[str, Domain]) -> bool:
        """Check keyword args of curated dataclass constructors."""
        sig = _CTOR_SIGNATURES.get(simple)
        if sig is None:
            return False
        for name, domain in kw_domains.items():
            expected = sig.get(name, UNKNOWN)
            category = _clash(domain, expected)
            if category is not None:
                self._flag(_FLOW_RULE[category], node,
                           f"argument {name!r} of {simple}() is "
                           f"{expected} but receives a {domain}-domain "
                           f"value")
        return True

    def _check_args(self, node: ast.Call, qname: str,
                    summary: _Summary, arg_domains: List[Domain],
                    kw_domains: Dict[str, Domain],
                    flagged: Set[Tuple[int, str]]) -> None:
        pairs: List[Tuple[str, Domain]] = []
        for index, domain in enumerate(arg_domains):
            if index >= len(summary.params):
                break
            if isinstance(node.args[index], ast.Starred):
                break
            pairs.append((summary.params[index], domain))
        for name, domain in kw_domains.items():
            if name in summary.domains:
                pairs.append((name, domain))
        shown = qname.split(".")[-1]
        for name, domain in pairs:
            if name not in summary.pinned:
                # inferred slot: join (disagreement -> CONFLICT ->
                # polymorphic, silent), never a check target
                if domain not in _SILENT:
                    if self.pass_.summaries[qname].observe_arg(
                            name, domain):
                        self.changed.add(qname)
                continue
            expected = summary.param_domain(name)
            category = _clash(domain, expected)
            if category is None:
                continue
            key = (node.lineno, name)
            if key in flagged:
                continue  # one report per arg across may-callees
            flagged.add(key)
            self._flag(_FLOW_RULE[category], node,
                       f"argument {name!r} of {shown}() is "
                       f"{expected}-typed but receives a "
                       f"{domain}-domain value")


# ----------------------------------------------------------------------
# The interprocedural driver
# ----------------------------------------------------------------------
class _DomainPass:
    """Summaries + chaotic iteration + the final reporting walk."""

    def __init__(self, project: Project, engine: FlowEngine) -> None:
        self.project = project
        self.engine = engine
        self.summaries: Dict[str, _Summary] = {
            qname: _seed_summary(project, fn)
            for qname, fn in project.functions.items()}
        self._pragmas: Dict[str, Dict[int, Domain]] = {}

    def pragmas(self, module: ModuleInfo) -> Dict[int, Domain]:
        """Per-line ``tp: domain(...)`` re-typings, cached per module."""
        if module.name not in self._pragmas:
            self._pragmas[module.name] = _domain_pragmas(module)
        return self._pragmas[module.name]

    def solve(self) -> None:
        """Propagate argument/return domains to a fixed point."""
        pending: List[str] = sorted(self.project.functions)
        queued: Set[str] = set(pending)
        rounds = 0
        limit = max(64, 8 * len(pending))
        while pending and rounds < limit:
            rounds += 1
            qname = pending.pop()
            queued.discard(qname)
            fn = self.project.functions[qname]
            walk = _FnPass(self, fn, report=False)
            walk.run()
            affected: Set[str] = set()
            for changed in walk.changed:
                if changed == qname:  # return domain changed
                    affected |= self.engine.callers_of(qname)
                else:  # a callee's parameter domain changed
                    affected.add(changed)
            for name in affected:
                if name not in queued and \
                        name in self.project.functions:
                    queued.add(name)
                    pending.append(name)

    def report(self) -> List[Finding]:
        """The final walk: evaluate every function and collect findings."""
        findings: List[Finding] = []
        for qname in sorted(self.project.functions):
            fn = self.project.functions[qname]
            walk = _FnPass(self, fn, report=True)
            walk.run()
            findings.extend(walk.findings)
        unique = {(f.rule, f.path, f.line, f.col, f.message): f
                  for f in findings}
        return sorted(unique.values(),
                      key=lambda f: (f.path, f.line, f.rule))


def check_domains(project: Project,
                  engine: FlowEngine) -> List[Finding]:
    """Run the TP2xx domain/unit pass over an analyzed project."""
    pass_ = _DomainPass(project, engine)
    pass_.solve()
    return pass_.report()
