"""Correctness tooling for the reproduction: lint pass + FTLSan.

Two pillars, both specific to this codebase:

* :mod:`repro.analysis.lint` — an AST-based lint pass (rules ``TP001``
  – ``TP006``) enforcing the project's structural rules over ``src/``:
  determinism (no unseeded randomness, no wall clock), typed errors
  instead of bare ``assert``, frozen configs stay frozen, ``__slots__``
  on cache nodes, and all flash page traffic routed through
  :class:`~repro.flash.FlashMemory`.  Run it as
  ``python -m repro.analysis lint src``.
* :mod:`repro.analysis.flow` — the interprocedural layer (rules
  ``TP101``–``TP104``): a project-wide call graph plus per-class
  mutable-state inventory feeding a fixed-point engine, catching the
  bug shapes single-node visitors cannot (run-path state missing from
  the reset path, flash mutation hidden behind helpers, frozen-config
  aliasing, nondeterministic set iteration).  The same ``lint``
  subcommand runs both passes and can emit SARIF 2.1.0
  (``--format sarif``) for GitHub code scanning.
* :mod:`repro.analysis.sanitizer` — FTLSan, a config-gated runtime
  checker (rules ``SAN001``–``SAN009``) validating the paper's §4.2 /
  §4.4 / §4.5 invariants and a shadow page map against live simulator
  state, at a configurable sampling interval.

See ``docs/architecture.md`` ("Static analysis & sanitizers") for the
full rule tables.
"""

from __future__ import annotations

from .checkers import SAN_RULES
from .flow import FLOW_RULES, analyze_paths, analyze_source
from .lint import Finding, RULES, lint_paths, lint_source
from .sanitizer import FTLSan, attach

__all__ = [
    "FLOW_RULES",
    "FTLSan",
    "Finding",
    "RULES",
    "SAN_RULES",
    "analyze_paths",
    "analyze_source",
    "attach",
    "lint_paths",
    "lint_source",
]
