"""Correctness tooling for the reproduction: lint pass + FTLSan.

Two pillars, both specific to this codebase:

* :mod:`repro.analysis.lint` — an AST-based lint pass (rules ``TP001``
  – ``TP006``) enforcing the project's structural rules over ``src/``:
  determinism (no unseeded randomness, no wall clock), typed errors
  instead of bare ``assert``, frozen configs stay frozen, ``__slots__``
  on cache nodes, and all flash page traffic routed through
  :class:`~repro.flash.FlashMemory`.  Run it as
  ``python -m repro.analysis lint src``.
* :mod:`repro.analysis.sanitizer` — FTLSan, a config-gated runtime
  checker (rules ``SAN001``–``SAN009``) validating the paper's §4.2 /
  §4.4 / §4.5 invariants and a shadow page map against live simulator
  state, at a configurable sampling interval.

See ``docs/architecture.md`` ("Static analysis & sanitizers") for the
full rule tables.
"""

from __future__ import annotations

from .checkers import SAN_RULES
from .lint import Finding, RULES, lint_paths, lint_source
from .sanitizer import FTLSan, attach

__all__ = [
    "FTLSan",
    "Finding",
    "RULES",
    "SAN_RULES",
    "attach",
    "lint_paths",
    "lint_source",
]
