"""State checkers behind FTLSan's ``SAN0xx`` rules.

Each checker is a plain function taking the FTL under test and a
``fail(code, message)`` callback, so the same checks serve two callers:

* :class:`~repro.analysis.sanitizer.FTLSan` wires ``fail`` to raise
  :class:`~repro.errors.SanitizerError` tagged with the current host
  operation sequence number (failures replay deterministically);
* ``TPFTL.assert_invariants`` calls the TPFTL checkers directly from
  property-based tests, outside any sanitized run.

Rule map (paper sections in parentheses):

========  ============================================================
SAN001    shadow page-map cross-validation (all FTLs)
SAN002    two-level LRU structural well-formedness (§4.1/§4.2)
SAN003    TP-node hotness bookkeeping: ``hot_sum``/``dirty_count`` (§4.2)
SAN004    byte-budget recount vs. ``ByteBudget``/capacity accounting
SAN005    prefetch never crosses a translation-page boundary (§4.5)
SAN006    prefetch-induced eviction confined to one TP node (§4.5)
SAN007    clean-first victim choice (§4.4)
SAN008    batch-update postcondition: only the victim leaves, the rest
          of its node turns clean (§4.4)
SAN009    flash page state machine: counters match states, BAD pages
          and RETIRED blocks are terminal
========  ============================================================

SAN005–SAN008 are *event* rules checked inline by FTLSan's
``note_*`` hooks; this module hosts the *state* rules (SAN001–SAN004,
SAN009) that recompute ground truth from scratch.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, TYPE_CHECKING

from ..types import BlockKind, PageState, UNMAPPED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..flash import FlashMemory
    from ..ftl.base import BaseFTL
    from ..ftl.tpftl import TPFTL

#: signature of the violation callback: (rule code, message)
FailFn = Callable[[str, str], None]

#: FTLSan rule codes with one-line descriptions (mirrors the table in
#: the module docstring; used by ``python -m repro.analysis rules``).
SAN_RULES: Dict[str, str] = {
    "SAN001": "shadow page-map cross-validation against flash state",
    "SAN002": "two-level LRU structural well-formedness (tpftl)",
    "SAN003": "TP-node hotness/dirty bookkeeping in sync (tpftl, §4.2)",
    "SAN004": "byte-budget recount matches ByteBudget/capacity accounting",
    "SAN005": "prefetch stays within one translation page (§4.5)",
    "SAN006": "prefetch-induced eviction confined to one TP node (§4.5)",
    "SAN007": "clean-first victim choice honoured (§4.4)",
    "SAN008": "batch-update leaves the victim's node all-clean (§4.4)",
    "SAN009": "flash page state machine (BAD/RETIRED terminal, counters)",
}


# ----------------------------------------------------------------------
# SAN001: shadow page map
# ----------------------------------------------------------------------
def check_shadow(ftl: "BaseFTL", fail: FailFn, shadow: Dict[int, str],
                 lpns: Iterable[int]) -> None:
    """Cross-validate ``lpns`` against the sanitizer's shadow map.

    ``shadow`` records the last host operation per LPN: ``"W"`` (must be
    mapped to a valid flash page whose recorded metadata is the LPN) or
    ``"T"`` (must be unmapped).  LPNs absent from the shadow are skipped
    — their mapping still reflects prefill and is covered by the
    injectivity sweep.
    """
    for lpn in lpns:
        expected = shadow.get(lpn)
        if expected is None:
            continue
        current = ftl.lookup_current(lpn)
        if expected == "T":
            if current != UNMAPPED:
                fail("SAN001",
                     f"LPN {lpn} was trimmed but still maps to PPN "
                     f"{current}")
            continue
        if current == UNMAPPED:
            fail("SAN001", f"LPN {lpn} was written but is unmapped")
            continue
        block = ftl.flash.block_of(current)
        offset = ftl.flash.offset_of(current)
        state = block.state(offset)
        if state is not PageState.VALID:
            fail("SAN001",
                 f"LPN {lpn} maps to PPN {current} in state {state.name}")
            continue
        meta = block.meta(offset)
        if meta != lpn:
            fail("SAN001",
                 f"LPN {lpn} maps to PPN {current} whose metadata says "
                 f"LPN {meta}")


def check_injectivity(ftl: "BaseFTL", fail: FailFn) -> None:
    """No two LPNs may resolve to the same physical page (full sweep)."""
    owner: Dict[int, int] = {}
    for lpn in range(len(ftl.flash_table)):
        current = ftl.lookup_current(lpn)
        if current == UNMAPPED:
            continue
        previous = owner.get(current)
        if previous is not None:
            fail("SAN001",
                 f"LPNs {previous} and {lpn} both map to PPN {current}")
            return
        owner[current] = lpn


# ----------------------------------------------------------------------
# SAN002/SAN003: TPFTL two-level LRU structure and hotness
# ----------------------------------------------------------------------
def check_two_level_lru(ftl: "TPFTL", fail: FailFn) -> None:
    """Structural well-formedness of the two-level LRU lists (§4.1).

    Every TP node in the page-level list must be indexed in ``by_vtpn``
    (and vice versa), be non-empty, and index exactly the entry nodes of
    its entry-level list, each belonging to the node's translation page.
    """
    seen = 0
    for node in ftl.page_list:
        seen += 1
        indexed = ftl.by_vtpn.get(node.vtpn)
        if indexed is not node:
            fail("SAN002",
                 f"TP node {node.vtpn} in page list is not the node "
                 "indexed under its VTPN")
            return
        count = 0
        for entry in node.entries:
            count += 1
            if ftl.geometry.vtpn_of(entry.lpn) != node.vtpn:
                fail("SAN002",
                     f"entry LPN {entry.lpn} cached under TP node "
                     f"{node.vtpn} belongs to translation page "
                     f"{ftl.geometry.vtpn_of(entry.lpn)}")
                return
            if node.by_lpn.get(entry.lpn) is not entry:
                fail("SAN002",
                     f"entry LPN {entry.lpn} of TP node {node.vtpn} "
                     "is not indexed in by_lpn")
                return
        if count == 0:
            fail("SAN002", f"empty TP node {node.vtpn} in page list")
            return
        if count != len(node.by_lpn):
            fail("SAN002",
                 f"TP node {node.vtpn} lists {count} entries but "
                 f"indexes {len(node.by_lpn)}")
            return
    if seen != len(ftl.by_vtpn):
        fail("SAN002",
             f"page list holds {seen} nodes but by_vtpn indexes "
             f"{len(ftl.by_vtpn)}")


def check_hotness(ftl: "TPFTL", fail: FailFn) -> None:
    """§4.2 bookkeeping: ``hot_sum``/``dirty_count`` match recounts."""
    for node in ftl.page_list:
        hot = 0
        dirty = 0
        for entry in node.entries:
            hot += entry.hot_seq
            if entry.dirty:
                dirty += 1
        if hot != node.hot_sum:
            fail("SAN003",
                 f"TP node {node.vtpn} hot_sum {node.hot_sum} != "
                 f"recounted {hot}")
            return
        if dirty != node.dirty_count:
            fail("SAN003",
                 f"TP node {node.vtpn} dirty_count {node.dirty_count} "
                 f"!= recounted {dirty}")
            return


# ----------------------------------------------------------------------
# SAN004: budget accounting
# ----------------------------------------------------------------------
def check_budget(ftl: "BaseFTL", fail: FailFn) -> None:
    """Recount the cache's cost model against its budget accounting.

    Dispatches on the FTL: TPFTL and S-FTL carry :class:`ByteBudget`
    instances whose ``used`` must equal a from-scratch recount and never
    exceed capacity; DFTL/CDFTL carry entry/page capacities (CDFTL's CMT
    may over-fill by one slot when every entry is pinned dirty — see
    ``CDFTL._install_cmt``).  FTLs without a bounded cache are skipped.
    """
    name = getattr(ftl, "name", "")
    if name == "tpftl":
        _check_tpftl_budget(ftl, fail)  # type: ignore[arg-type]
    elif name == "sftl":
        _check_sftl_budget(ftl, fail)
    elif name == "dftl":
        if len(ftl.cmt) > ftl.capacity_entries:  # type: ignore[attr-defined]
            fail("SAN004",
                 f"DFTL CMT holds {len(ftl.cmt)} entries, "  # type: ignore[attr-defined]
                 f"capacity {ftl.capacity_entries}")  # type: ignore[attr-defined]
    elif name == "cdftl":
        if len(ftl.cmt) > ftl.cmt_capacity + 1:  # type: ignore[attr-defined]
            fail("SAN004",
                 f"CDFTL CMT holds {len(ftl.cmt)} entries, "  # type: ignore[attr-defined]
                 f"capacity {ftl.cmt_capacity} (+1 pinned slack)")  # type: ignore[attr-defined]
        if len(ftl.ctp) > ftl.ctp_capacity:  # type: ignore[attr-defined]
            fail("SAN004",
                 f"CDFTL CTP holds {len(ftl.ctp)} pages, "  # type: ignore[attr-defined]
                 f"capacity {ftl.ctp_capacity}")  # type: ignore[attr-defined]


def _check_tpftl_budget(ftl: "TPFTL", fail: FailFn) -> None:
    used = 0
    for node in ftl.page_list:
        used += ftl.node_bytes + len(node) * ftl.entry_bytes
    if used != ftl.budget.used:
        fail("SAN004",
             f"TPFTL budget says {ftl.budget.used}B used but the cache "
             f"recounts to {used}B")
        return
    if ftl.budget.used > ftl.budget.capacity:
        fail("SAN004",
             f"TPFTL budget overdrawn: {ftl.budget.used}B of "
             f"{ftl.budget.capacity}B")


def _check_sftl_budget(ftl: "BaseFTL", fail: FailFn) -> None:
    from ..ftl.sftl import BUFFER_ENTRY_BYTES
    pages = ftl.pages  # type: ignore[attr-defined]
    page_budget = ftl.page_budget  # type: ignore[attr-defined]
    used = 0
    for vtpn in pages.keys_mru_to_lru():
        page = pages.get(vtpn, touch=False)
        if page is None:  # pragma: no cover - LRUDict cannot lose keys
            continue
        used += page.charged_bytes
    if used != page_budget.used:
        fail("SAN004",
             f"S-FTL page budget says {page_budget.used}B used but "
             f"cached pages recount to {used}B")
        return
    buffer_budget = ftl.buffer_budget  # type: ignore[attr-defined]
    if buffer_budget is not None:
        parked = sum(len(group) for group
                     in ftl.buffer.values())  # type: ignore[attr-defined]
        if parked * BUFFER_ENTRY_BYTES != buffer_budget.used:
            fail("SAN004",
                 f"S-FTL dirty buffer says {buffer_budget.used}B used "
                 f"but holds {parked} entries "
                 f"({parked * BUFFER_ENTRY_BYTES}B)")


# ----------------------------------------------------------------------
# SAN009: flash page state machine
# ----------------------------------------------------------------------
def check_flash_state(flash: "FlashMemory", fail: FailFn,
                      memory: Dict[str, set]) -> None:
    """Validate the flash substrate's per-block state machine.

    * per-block ``valid/invalid/bad`` counters equal a recount of the
      page states, and the four states partition the block (a FREE page
      below the write pointer would also break the partition via
      ``free_count``);
    * pages once BAD stay BAD (terminal across erases);
    * blocks once RETIRED stay RETIRED (terminal);
    * blocks in the free pool hold no valid pages.

    ``memory`` persists the previously-seen BAD pages and RETIRED block
    ids between invocations (terminal-state tracking needs history).
    """
    seen_bad = memory.setdefault("bad_pages", set())
    seen_retired = memory.setdefault("retired", set())
    for block in flash.blocks:
        valid = invalid = bad = 0
        for offset in range(block.pages_per_block):
            state = block.state(offset)
            if state is PageState.VALID:
                valid += 1
            elif state is PageState.INVALID:
                invalid += 1
            elif state is PageState.BAD:
                bad += 1
                seen_bad.add((block.block_id, offset))
        if valid != block.valid_count or invalid != block.invalid_count \
                or bad != block.bad_count:
            fail("SAN009",
                 f"block {block.block_id} counters "
                 f"({block.valid_count}v/{block.invalid_count}i/"
                 f"{block.bad_count}b) != recount "
                 f"({valid}v/{invalid}i/{bad}b)")
            return
        if valid + invalid + bad + block.free_count \
                != block.pages_per_block:
            fail("SAN009",
                 f"block {block.block_id} page states do not partition "
                 "the block (FREE page below the write pointer?)")
            return
        if block.is_free and valid:
            fail("SAN009",
                 f"free-pool block {block.block_id} holds {valid} "
                 "valid pages")
            return
        if block.kind is BlockKind.RETIRED:
            seen_retired.add(block.block_id)
    for block_id, offset in seen_bad:
        if flash.blocks[block_id].state(offset) is not PageState.BAD:
            fail("SAN009",
                 f"page {offset} of block {block_id} was BAD but is now "
                 f"{flash.blocks[block_id].state(offset).name} (BAD is "
                 "terminal)")
            return
    for block_id in seen_retired:
        if flash.blocks[block_id].kind is not BlockKind.RETIRED:
            fail("SAN009",
                 f"block {block_id} was RETIRED but is now "
                 f"{flash.blocks[block_id].kind.value} (RETIRED is "
                 "terminal)")
            return
