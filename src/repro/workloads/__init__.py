"""Workloads: trace parsers, synthetic generators, and characterisation.

The paper evaluates on four enterprise traces (Table 4): Financial1/2
(UMass SPC) and MSR-ts/MSR-src (MSR Cambridge).  Those files cannot be
redistributed, so this package provides (a) parsers for both original
formats, usable if you have the files, and (b) synthetic generators whose
presets match every statistic Table 4 reports plus the locality structure
§3.2 analyses.  Experiments accept either source.
"""

from .msr import load_msr_trace, parse_msr_lines
from .presets import (PRESET_NAMES, financial1, financial2, make_preset,
                      msr_src, msr_ts)
from .spc import load_spc_trace, parse_spc_lines
from .stats import WorkloadStats, characterize
from .synthetic import SyntheticSpec, generate
from .traffic import (ARRIVAL_KINDS, ArrivalModel, TenantSpec,
                      TrafficSpec, compose, uniform_mix)
from .writers import (msr_lines, spc_lines, write_msr_trace,
                      write_spc_trace)

__all__ = [
    "SyntheticSpec", "generate",
    "financial1", "financial2", "msr_ts", "msr_src", "make_preset",
    "PRESET_NAMES",
    "load_spc_trace", "parse_spc_lines",
    "load_msr_trace", "parse_msr_lines",
    "write_spc_trace", "write_msr_trace", "spc_lines", "msr_lines",
    "WorkloadStats", "characterize",
    "ArrivalModel", "TenantSpec", "TrafficSpec", "compose",
    "uniform_mix", "ARRIVAL_KINDS",
]
