"""Workload presets matching Table 4 of the paper.

Each preset mirrors one of the paper's four enterprise traces:

========== =========== ============ ========= ========== =============
Trace      Write ratio Avg req size Seq. read Seq. write Address space
========== =========== ============ ========= ========== =============
Financial1 77.9%       3.5KB        1.5%      1.8%       512MB
Financial2 18%         2.4KB        0.8%      0.5%       512MB
MSR-ts     82.4%       9KB          47.2%     6%         16GB
MSR-src    88.7%       7.2KB        22.6%     7.1%       16GB
========== =========== ============ ========= ========== =============

The Financial traces are random-dominant with strong temporal locality
(OLTP); the MSR traces are write-dominant with larger requests and strong
sequentiality, writes concentrated enough that GC victims are mostly
fully invalid (the paper measures WA close to 1 for them).

Address spaces default to a scaled-down size because the simulator is
pure Python; the mapping cache is sized *relative* to the mapping table
(the paper's 1/128 rule), so the cache-pressure regime the design reacts
to is preserved.  Pass ``logical_pages`` explicitly for full-size runs.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import WorkloadError
from ..types import Trace
from .synthetic import SyntheticSpec, generate

#: default address spaces (pages of 4KB)
FINANCIAL_PAGES = 131_072  # 512MB: the paper's exact Financial config
MSR_PAGES = 262_144        # 1GB stand-in for the paper's 16GB
#: bytes per page assumed when converting Table 4's KB request sizes
PAGE_BYTES = 4096


def financial1(logical_pages: int = FINANCIAL_PAGES,
               num_requests: int = 60_000, seed: int = 1) -> Trace:
    """Random-dominant, write-intensive OLTP (Financial1-like).

    77.9% writes, ~3.5KB requests (almost all single-page after 4KB
    alignment), minimal sequentiality, strong temporal locality with a
    working set large relative to a 1/128 mapping cache.
    """
    spec = SyntheticSpec(
        name="financial1",
        logical_pages=logical_pages,
        num_requests=num_requests,
        write_ratio=0.779,
        seq_read_fraction=0.06,
        seq_write_fraction=0.06,
        mean_read_pages=1.05,
        mean_write_pages=1.05,
        zipf_alpha=20.0,
        streams=3,
        mean_stream_pages=48,
        stream_align=16,
        stream_start_alpha=6.0,
        mean_interarrival_us=8000.0,
        seed=seed,
    )
    return generate(spec)


def financial2(logical_pages: int = FINANCIAL_PAGES,
               num_requests: int = 60_000, seed: int = 2) -> Trace:
    """Random-dominant, read-intensive OLTP (Financial2-like).

    18% writes, ~2.4KB requests, near-zero sequentiality, strong
    temporal locality.
    """
    spec = SyntheticSpec(
        name="financial2",
        logical_pages=logical_pages,
        num_requests=num_requests,
        write_ratio=0.18,
        seq_read_fraction=0.04,
        seq_write_fraction=0.03,
        mean_read_pages=1.0,
        mean_write_pages=1.0,
        zipf_alpha=20.0,
        streams=3,
        mean_stream_pages=48,
        stream_align=16,
        stream_start_alpha=6.0,
        mean_interarrival_us=8000.0,
        seed=seed,
    )
    return generate(spec)


def msr_ts(logical_pages: int = MSR_PAGES,
           num_requests: int = 60_000, seed: int = 3) -> Trace:
    """Write-dominant server trace with strong sequentiality (MSR-ts-like).

    82.4% writes, ~9KB requests, 47.2% sequential reads; writes cluster
    in long runs over a compact working set so GC finds mostly-invalid
    victims (paper: WA ~ 1 for MSR workloads).
    """
    spec = SyntheticSpec(
        name="msr-ts",
        logical_pages=logical_pages,
        num_requests=num_requests,
        write_ratio=0.824,
        seq_read_fraction=0.55,
        seq_write_fraction=0.70,
        mean_read_pages=2.2,
        mean_write_pages=2.2,
        zipf_alpha=64.0,
        streams=4,
        mean_stream_pages=128,
        stream_align=64,
        stream_start_alpha=24.0,
        mean_interarrival_us=6000.0,
        seed=seed,
    )
    return generate(spec)


def msr_src(logical_pages: int = MSR_PAGES,
            num_requests: int = 60_000, seed: int = 4) -> Trace:
    """Write-dominant source-control trace (MSR-src-like).

    88.7% writes, ~7.2KB requests, 22.6% sequential reads, sequential
    write bursts over a compact working set.
    """
    spec = SyntheticSpec(
        name="msr-src",
        logical_pages=logical_pages,
        num_requests=num_requests,
        write_ratio=0.887,
        seq_read_fraction=0.35,
        seq_write_fraction=0.60,
        mean_read_pages=1.8,
        mean_write_pages=1.8,
        zipf_alpha=64.0,
        streams=4,
        mean_stream_pages=96,
        stream_align=64,
        stream_start_alpha=24.0,
        mean_interarrival_us=6000.0,
        seed=seed,
    )
    return generate(spec)


_PRESETS: Dict[str, Callable[..., Trace]] = {
    "financial1": financial1,
    "financial2": financial2,
    "msr-ts": msr_ts,
    "msr-src": msr_src,
}

#: names accepted by :func:`make_preset`
PRESET_NAMES = tuple(_PRESETS)


def make_preset(name: str, **kwargs) -> Trace:
    """Build a preset workload by its paper name (e.g. ``"msr-ts"``)."""
    try:
        builder = _PRESETS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown preset {name!r}; choose from "
            f"{', '.join(PRESET_NAMES)}") from None
    return builder(**kwargs)
