"""Workload characterisation: the statistics of the paper's Table 4.

``characterize`` computes, for any trace, the write ratio, average
request size, sequential-read/write fractions and footprint — letting
tests assert that the synthetic presets actually match the paper's
workload specification, and letting users sanity-check their own traces.

A request counts as *sequential* when it starts exactly where the
previous request of the same direction ended — the standard definition
for trace-level sequentiality measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..types import Op, Trace


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of a trace (Table 4 columns and a few more)."""

    name: str
    requests: int
    write_ratio: float
    #: fraction of requests that are TRIMs (extension)
    trim_ratio: float
    avg_request_bytes: float
    seq_read_fraction: float
    seq_write_fraction: float
    #: distinct logical pages touched
    footprint_pages: int
    logical_pages: int
    #: total pages read / written
    pages_read: int
    pages_written: int

    @property
    def avg_request_kb(self) -> float:
        """Mean request size in KiB."""
        return self.avg_request_bytes / 1024.0

    @property
    def footprint_fraction(self) -> float:
        """Touched pages over the address space."""
        if not self.logical_pages:
            return 0.0
        return self.footprint_pages / self.logical_pages

    def as_table4_row(self) -> Dict[str, str]:
        """Render in the shape of the paper's Table 4."""
        return {
            "Workload": self.name,
            "Write Ratio": f"{self.write_ratio * 100:.1f}%",
            "Avg. Req. Size": f"{self.avg_request_kb:.1f}KB",
            "Seq. Read": f"{self.seq_read_fraction * 100:.1f}%",
            "Seq. Write": f"{self.seq_write_fraction * 100:.1f}%",
            "Address Space": f"{self.logical_pages * 4 // 1024}MB",
        }


def characterize(trace: Trace, page_size: int = 4096) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a trace in one pass."""
    writes = 0
    trims = 0
    total_bytes = 0
    seq: Dict[Op, int] = {op: 0 for op in Op}
    counts: Dict[Op, int] = {op: 0 for op in Op}
    last_end: Dict[Op, Optional[int]] = {op: None for op in Op}
    touched = set()
    pages_read = 0
    pages_written = 0
    for request in trace:
        counts[request.op] += 1
        if request.is_write:
            writes += 1
            pages_written += request.npages
        elif request.op is Op.TRIM:
            trims += 1
        else:
            pages_read += request.npages
        total_bytes += request.npages * page_size
        if last_end[request.op] == request.lpn:
            seq[request.op] += 1
        last_end[request.op] = request.end_lpn
        touched.update(range(request.lpn, request.end_lpn))
    n = len(trace)
    return WorkloadStats(
        name=trace.name,
        requests=n,
        write_ratio=writes / n if n else 0.0,
        trim_ratio=trims / n if n else 0.0,
        avg_request_bytes=total_bytes / n if n else 0.0,
        seq_read_fraction=(seq[Op.READ] / counts[Op.READ]
                           if counts[Op.READ] else 0.0),
        seq_write_fraction=(seq[Op.WRITE] / counts[Op.WRITE]
                            if counts[Op.WRITE] else 0.0),
        footprint_pages=len(touched),
        logical_pages=trace.logical_pages,
        pages_read=pages_read,
        pages_written=pages_written,
    )
