"""Parser for SPC-format traces (UMass Financial1/Financial2).

Format: one request per line, comma-separated::

    ASU,LBA,Size,Opcode,Timestamp[,...]

``ASU`` is the application-specific unit (a volume id), ``LBA`` the
logical block address in 512-byte sectors within that ASU, ``Size`` the
request size in bytes, ``Opcode`` ``r``/``w`` (case-insensitive), and
``Timestamp`` seconds from trace start.  Extra trailing fields are
ignored, as are blank/comment lines.

Requests are 4KB-page aligned, and LPNs can optionally be wrapped modulo
a device size so any trace fits any simulated device (the paper instead
sizes the SSD to the trace's address space; pass ``wrap_pages=None`` and
size your device from ``Trace.max_lpn()`` for that behaviour).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..errors import WorkloadError
from ..types import Op, Request, Trace

SECTOR_BYTES = 512


def parse_spc_lines(lines: Iterable[str], page_size: int = 4096,
                    wrap_pages: Optional[int] = None,
                    asu_filter: Optional[int] = None,
                    name: str = "spc") -> Trace:
    """Parse SPC trace lines into a :class:`~repro.types.Trace`."""
    requests: List[Request] = []
    max_page = 0
    start_ts: Optional[float] = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 5:
            raise WorkloadError(
                f"SPC line {lineno}: expected >=5 fields, got "
                f"{len(parts)}: {line!r}")
        try:
            asu = int(parts[0])
            lba = int(parts[1])
            size = int(parts[2])
            opcode = parts[3].strip().lower()
            timestamp = float(parts[4])
        except ValueError as exc:
            raise WorkloadError(f"SPC line {lineno}: {exc}") from exc
        if asu_filter is not None and asu != asu_filter:
            continue
        if opcode not in ("r", "w"):
            raise WorkloadError(
                f"SPC line {lineno}: unknown opcode {opcode!r}")
        if size <= 0:
            continue  # zero-length requests occur in the raw traces
        op = Op.READ if opcode == "r" else Op.WRITE
        byte_offset = lba * SECTOR_BYTES
        first = byte_offset // page_size
        last = (byte_offset + size - 1) // page_size
        npages = last - first + 1
        if wrap_pages is not None:
            first %= wrap_pages
            if first + npages > wrap_pages:
                npages = wrap_pages - first
        if start_ts is None:
            start_ts = timestamp
        arrival_us = (timestamp - start_ts) * 1e6
        requests.append(Request(arrival=arrival_us, op=op, lpn=first,
                                npages=npages))
        max_page = max(max_page, first + npages)
    requests.sort(key=lambda r: r.arrival)
    logical = wrap_pages if wrap_pages is not None else max_page
    return Trace(requests=requests, logical_pages=max(logical, 1),
                 name=name)


def load_spc_trace(path: Union[str, Path], page_size: int = 4096,
                   wrap_pages: Optional[int] = None,
                   asu_filter: Optional[int] = None) -> Trace:
    """Load an SPC trace file (e.g. the UMass Financial traces)."""
    path = Path(path)
    with path.open("r", encoding="ascii", errors="replace") as handle:
        return parse_spc_lines(handle, page_size=page_size,
                               wrap_pages=wrap_pages,
                               asu_filter=asu_filter, name=path.stem)
