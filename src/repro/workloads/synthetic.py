"""Synthetic enterprise-workload generator.

Generates traces with the three properties the paper's FTLs respond to:

* **temporal locality** — random accesses draw page *ranks* from a
  power-law (Zipf-like) distribution, then scatter the ranks across the
  address space with a fixed coprime stride so the hot set is spread over
  many translation pages (hot data in real OLTP traces is not spatially
  contiguous);
* **spatial locality** — a configurable fraction of requests belong to
  sequential streams that advance through the address space, interspersed
  with random accesses exactly as §3.2/Fig 2(a) observes ("sequential
  accesses are often interspersed with random accesses").  Stream choice
  is sticky, so bursts of consecutive requests continue the same run;
* **request-size structure** — geometric page counts matching a target
  mean request size, so multi-page requests exercise request-level
  prefetching.

Generation is fully deterministic for a given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from ..errors import WorkloadError
from ..types import Op, Request, Trace


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic workload."""

    name: str
    logical_pages: int
    num_requests: int
    write_ratio: float
    #: fraction of requests that are TRIMs (extension; drawn first,
    #: the remainder split read/write by ``write_ratio``)
    trim_fraction: float = 0.0
    #: fraction of read / write requests issued from sequential streams
    seq_read_fraction: float = 0.0
    seq_write_fraction: float = 0.0
    #: mean request length in pages (geometric distribution)
    mean_read_pages: float = 1.0
    mean_write_pages: float = 1.0
    #: temporal-locality skew for random accesses: the page *rank* is
    #: drawn as floor(N * u**zipf_alpha); 1.0 is uniform, larger values
    #: concentrate accesses onto a smaller hot set (e.g. with alpha=12
    #: the hottest 1% of pages receives ~68% of random accesses)
    zipf_alpha: float = 1.0
    #: number of concurrent sequential streams and their mean run length
    streams: int = 4
    mean_stream_pages: int = 128
    #: sequential runs start at multiples of this many pages; >1 makes
    #: re-visited runs overlap exactly (server workloads rewrite the same
    #: extents), which drives GC victims toward fully-invalid blocks
    stream_align: int = 1
    #: temporal-locality skew of run *start* positions: 1.0 scatters runs
    #: uniformly; larger values keep re-using the same few extents
    stream_start_alpha: float = 1.0
    #: mean inter-arrival time in microseconds (exponential)
    mean_interarrival_us: float = 500.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.logical_pages <= 0:
            raise WorkloadError("logical_pages must be positive")
        if self.num_requests < 0:
            raise WorkloadError("num_requests must be non-negative")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise WorkloadError("write_ratio must be in [0, 1]")
        if not 0.0 <= self.trim_fraction <= 1.0:
            raise WorkloadError("trim_fraction must be in [0, 1]")
        for frac in (self.seq_read_fraction, self.seq_write_fraction):
            if not 0.0 <= frac <= 1.0:
                raise WorkloadError("fractions must be in [0, 1]")
        if self.zipf_alpha < 1.0:
            raise WorkloadError("zipf_alpha must be >= 1.0")
        if self.mean_read_pages < 1.0 or self.mean_write_pages < 1.0:
            raise WorkloadError("mean request length must be >= 1 page")
        if self.streams < 1 or self.mean_stream_pages < 1:
            raise WorkloadError("stream parameters must be >= 1")
        if self.stream_align < 1 or self.stream_align > self.logical_pages:
            raise WorkloadError(
                "stream_align must be in [1, logical_pages]")
        if self.stream_start_alpha < 1.0:
            raise WorkloadError("stream_start_alpha must be >= 1.0")
        if self.mean_interarrival_us < 0:
            raise WorkloadError("mean_interarrival_us must be >= 0")


@dataclass
class _Stream:
    """One sequential stream's cursor and remaining run length."""

    position: int = 0
    remaining: int = 0


def _geometric_pages(rng: random.Random, mean: float, cap: int) -> int:
    """Draw a request length >= 1 with the given mean, capped."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    # inverse-CDF geometric on (0, 1]
    u = 1.0 - rng.random()
    k = int(math.log(u) / math.log(1.0 - p)) + 1
    return max(1, min(k, cap))


def _scatter_stride(pages: int, rng: random.Random) -> int:
    """An odd stride coprime with ``pages``, near the golden ratio.

    Multiplying ranks by this stride spreads the hot head of the rank
    distribution across the whole address space.
    """
    stride = int(pages * 0.6180339887) | 1
    stride = max(stride, 1)
    while math.gcd(stride, pages) != 1:
        stride += 2
    return stride


def generate(spec: SyntheticSpec) -> Trace:
    """Generate a deterministic trace from ``spec``."""
    rng = random.Random(spec.seed)
    pages = spec.logical_pages
    stride = _scatter_stride(pages, rng)
    base = rng.randrange(pages)
    # separate stream sets per direction so read- and write-sequentiality
    # are independently controllable (Table 4 reports them separately)
    streams = {
        Op.READ: [_Stream() for _ in range(spec.streams)],
        Op.WRITE: [_Stream() for _ in range(spec.streams)],
    }
    current = {Op.READ: 0, Op.WRITE: 0}
    requests: List[Request] = []
    clock = 0.0

    def random_lpn() -> int:
        u = rng.random()
        rank = int(pages * (u ** spec.zipf_alpha))
        if rank >= pages:
            rank = pages - 1
        return (rank * stride + base) % pages

    slots = max(1, pages // spec.stream_align)
    slot_stride = _scatter_stride(slots, rng)
    slot_base = rng.randrange(slots)

    def stream_start() -> int:
        u = rng.random()
        rank = int(slots * (u ** spec.stream_start_alpha))
        if rank >= slots:
            rank = slots - 1
        slot = (rank * slot_stride + slot_base) % slots
        return slot * spec.stream_align

    for _ in range(spec.num_requests):
        if spec.trim_fraction and rng.random() < spec.trim_fraction:
            op = Op.TRIM
            is_write = True  # trims follow the write placement model
        else:
            is_write = rng.random() < spec.write_ratio
            op = Op.WRITE if is_write else Op.READ
        seq_fraction = (spec.seq_write_fraction if is_write
                        else spec.seq_read_fraction)
        mean_pages = (spec.mean_write_pages if is_write
                      else spec.mean_read_pages)
        npages = _geometric_pages(rng, mean_pages, cap=pages)
        direction = Op.WRITE if is_write else Op.READ
        if seq_fraction and rng.random() < seq_fraction:
            pool = streams[direction]
            stream = pool[current[direction]]
            if stream.remaining < npages:
                # Rotate to another stream, preferring one whose live
                # run can absorb this request; a stream is only
                # restarted (position/remaining reset) when it cannot —
                # an unconditional reset here would clobber the other
                # streams' in-progress runs and collapse the documented
                # concurrent sticky streams into one effective stream.
                eligible = [i for i, s in enumerate(pool)
                            if s.remaining >= npages]
                if eligible:
                    current[direction] = eligible[
                        rng.randrange(len(eligible))]
                else:
                    current[direction] = rng.randrange(len(pool))
                stream = pool[current[direction]]
                if stream.remaining < npages:
                    stream.position = stream_start()
                    run = max(npages, int(rng.expovariate(
                        1.0 / spec.mean_stream_pages)) + 1)
                    stream.remaining = run
            lpn = stream.position
            if lpn + npages > pages:
                lpn = 0
                stream.position = 0
            stream.position = lpn + npages
            stream.remaining -= npages
        else:
            lpn = random_lpn()
            if lpn + npages > pages:
                lpn = pages - npages
        if spec.mean_interarrival_us > 0:
            clock += rng.expovariate(1.0 / spec.mean_interarrival_us)
        requests.append(Request(arrival=clock, op=op, lpn=lpn,
                                npages=npages))
    return Trace(requests=requests, logical_pages=pages, name=spec.name)
