"""Parser for MSR Cambridge block traces (MSR-ts / MSR-src).

Format: one request per line, comma-separated::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

``Timestamp`` is a Windows filetime (100ns ticks), ``Type`` is ``Read``
or ``Write``, ``Offset``/``Size`` are in bytes.  Lines are 4KB-aligned
into page requests; an optional disk filter selects one volume from
multi-disk servers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..errors import WorkloadError
from ..types import Op, Request, Trace

#: Windows filetime ticks per microsecond
_TICKS_PER_US = 10


def parse_msr_lines(lines: Iterable[str], page_size: int = 4096,
                    wrap_pages: Optional[int] = None,
                    disk_filter: Optional[int] = None,
                    name: str = "msr") -> Trace:
    """Parse MSR Cambridge trace lines into a Trace."""
    requests: List[Request] = []
    max_page = 0
    start_ts: Optional[int] = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 6:
            raise WorkloadError(
                f"MSR line {lineno}: expected >=6 fields, got "
                f"{len(parts)}: {line!r}")
        try:
            timestamp = int(parts[0])
            disk = int(parts[2])
            kind = parts[3].strip().lower()
            offset = int(parts[4])
            size = int(parts[5])
        except ValueError as exc:
            raise WorkloadError(f"MSR line {lineno}: {exc}") from exc
        if disk_filter is not None and disk != disk_filter:
            continue
        if kind not in ("read", "write"):
            raise WorkloadError(
                f"MSR line {lineno}: unknown type {parts[3]!r}")
        if size <= 0:
            continue
        op = Op.READ if kind == "read" else Op.WRITE
        first = offset // page_size
        last = (offset + size - 1) // page_size
        npages = last - first + 1
        if wrap_pages is not None:
            first %= wrap_pages
            if first + npages > wrap_pages:
                npages = wrap_pages - first
        if start_ts is None:
            start_ts = timestamp
        arrival_us = (timestamp - start_ts) / _TICKS_PER_US
        requests.append(Request(arrival=arrival_us, op=op, lpn=first,
                                npages=npages))
        max_page = max(max_page, first + npages)
    requests.sort(key=lambda r: r.arrival)
    logical = wrap_pages if wrap_pages is not None else max_page
    return Trace(requests=requests, logical_pages=max(logical, 1),
                 name=name)


def load_msr_trace(path: Union[str, Path], page_size: int = 4096,
                   wrap_pages: Optional[int] = None,
                   disk_filter: Optional[int] = None) -> Trace:
    """Load an MSR Cambridge CSV trace file."""
    path = Path(path)
    with path.open("r", encoding="ascii", errors="replace") as handle:
        return parse_msr_lines(handle, page_size=page_size,
                               wrap_pages=wrap_pages,
                               disk_filter=disk_filter, name=path.stem)
