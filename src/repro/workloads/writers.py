"""Trace writers: export canonical traces to the on-disk formats.

The inverse of the parsers: any :class:`~repro.types.Trace` — synthetic
or parsed — can be written out as an SPC file or an MSR Cambridge CSV,
so workloads generated here can drive other simulators (FlashSim,
SSDSim, ...) and round-trip through the parsers for validation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

from ..errors import WorkloadError
from ..types import Op, Trace
from .msr import _TICKS_PER_US
from .spc import SECTOR_BYTES


def _reject_trims(trace: Trace, fmt: str) -> None:
    if any(r.op is Op.TRIM for r in trace):
        raise WorkloadError(
            f"the {fmt} trace format has no TRIM opcode; filter trims "
            "before exporting")


def spc_lines(trace: Trace, page_size: int = 4096,
              asu: int = 0) -> Iterator[str]:
    """Render a trace as SPC lines (ASU,LBA,Size,Opcode,Timestamp)."""
    _reject_trims(trace, "SPC")
    sectors_per_page = page_size // SECTOR_BYTES
    for request in trace:
        lba = request.lpn * sectors_per_page
        size = request.npages * page_size
        opcode = "w" if request.is_write else "r"
        timestamp = request.arrival / 1e6  # us -> seconds
        yield f"{asu},{lba},{size},{opcode},{timestamp:.6f}"


def msr_lines(trace: Trace, page_size: int = 4096,
              hostname: str = "repro", disk: int = 0) -> Iterator[str]:
    """Render a trace as MSR CSV lines.

    Timestamps are Windows-filetime ticks (100ns); the response-time
    column is written as 0 (it is an output of the original collection,
    not an input to replay).
    """
    _reject_trims(trace, "MSR")
    for request in trace:
        ticks = int(round(request.arrival * _TICKS_PER_US))
        kind = "Write" if request.is_write else "Read"
        offset = request.lpn * page_size
        size = request.npages * page_size
        yield (f"{ticks},{hostname},{disk},{kind},{offset},{size},0")


def write_spc_trace(trace: Trace, path: Union[str, Path],
                    page_size: int = 4096, asu: int = 0) -> None:
    """Write a trace to ``path`` in SPC format."""
    Path(path).write_text(
        "\n".join(spc_lines(trace, page_size=page_size, asu=asu)) + "\n",
        encoding="ascii")


def write_msr_trace(trace: Trace, path: Union[str, Path],
                    page_size: int = 4096, hostname: str = "repro",
                    disk: int = 0) -> None:
    """Write a trace to ``path`` in MSR Cambridge CSV format."""
    Path(path).write_text(
        "\n".join(msr_lines(trace, page_size=page_size,
                            hostname=hostname, disk=disk)) + "\n",
        encoding="ascii")
