"""The paper's analytical models of address-translation overhead (§3.1).

Closed-form implementations of the performance model (Eq. 1, 4, 6, 10,
11) and the write-amplification model (Eq. 12, 13), plus a helper that
extracts the model's input parameters from a simulation run so model and
measurement can be cross-validated (the repository's tests do exactly
that).
"""

from .params import ModelParams, params_from_run
from .performance import (avg_translation_time, gc_data_time_per_access,
                          gc_translation_time_per_access)
from .write_amp import write_amplification, write_amplification_counts

__all__ = [
    "ModelParams", "params_from_run",
    "avg_translation_time", "gc_data_time_per_access",
    "gc_translation_time_per_access",
    "write_amplification", "write_amplification_counts",
]
