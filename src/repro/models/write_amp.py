"""The write-amplification model: Equations 12 and 13 of the paper."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .params import ModelParams


def write_amplification(p: ModelParams) -> float:
    """Eq. 13 — closed-form write amplification.

    A = 1 + (1-Hr)*Prd * Np / ((Np-Vt)*Rw)
          + [1 + (1-Hgcr)*Np/(Np-Vt)] * Vd / (Np-Vd)
    """
    if p.rw <= 0.0:
        raise ConfigError(
            "the WA model assumes a non-read-only workload (Rw > 0)")
    return (1.0
            + (1.0 - p.hr) * p.prd * p.np / ((p.np - p.vt) * p.rw)
            + (1.0 + (1.0 - p.hgcr) * p.np / (p.np - p.vt))
            * p.vd / (p.np - p.vd))


@dataclass(frozen=True)
class WriteCounts:
    """The Eq. 12 numerator terms, per user page access."""

    user_writes: float   # Rw
    ntw: float           # translation writes at translation time (Eq. 8)
    nmd: float           # migrated data pages (Eq. 2/7)
    ndt: float           # GC mapping-update writes (Eq. 3/7)
    nmt: float           # migrated translation pages (Eq. 5/9)

    @property
    def amplification(self) -> float:
        """Eq. 12 assembled from the counts."""
        extra = self.ntw + self.nmd + self.ndt + self.nmt
        return (self.user_writes + extra) / self.user_writes


def write_amplification_counts(p: ModelParams) -> WriteCounts:
    """The per-access counts of Eq. 12, from Eqs. 2, 3, 5, 7, 8, 9.

    ``WriteCounts.amplification`` equals :func:`write_amplification`
    exactly (the tests assert the algebraic identity).
    """
    if p.rw <= 0.0:
        raise ConfigError(
            "the WA model assumes a non-read-only workload (Rw > 0)")
    ngcd = p.rw / (p.np - p.vd)                  # Eq. 7, per access
    nmd = ngcd * p.vd                            # Eq. 2
    ndt = nmd * (1.0 - p.hgcr)                   # Eq. 3
    ntw = (1.0 - p.hr) * p.prd                   # Eq. 8
    ngct = (ntw + ndt) / (p.np - p.vt)           # Eq. 9
    nmt = ngct * p.vt                            # Eq. 5
    return WriteCounts(user_writes=p.rw, ntw=ntw, nmd=nmd, ndt=ndt,
                       nmt=nmt)
