"""Input parameters of the §3.1 models (the symbols of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SSDConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class ModelParams:
    """The Table 1 symbols the two models take as inputs.

    Time units are microseconds, matching :class:`~repro.config.SSDConfig`.
    """

    hr: float           # Hr   — address-translation hit ratio
    prd: float          # Prd  — P(replaced entry is dirty)
    rw: float           # Rw   — write ratio of user page accesses
    hgcr: float         # Hgcr — GC mapping-update hit ratio
    vd: float           # Vd   — mean valid pages in data victims
    vt: float           # Vt   — mean valid pages in translation victims
    np: int             # Np   — pages per block
    tfr: float = 25.0   # Tfr  — page read time
    tfw: float = 200.0  # Tfw  — page write time
    tfe: float = 1500.0  # Tfe — block erase time

    def __post_init__(self) -> None:
        for label, value in (("hr", self.hr), ("prd", self.prd),
                             ("rw", self.rw), ("hgcr", self.hgcr)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{label} must be in [0, 1], got {value}")
        if self.np <= 0:
            raise ConfigError("np must be positive")
        if not 0.0 <= self.vd < self.np:
            raise ConfigError("vd must be in [0, np)")
        if not 0.0 <= self.vt < self.np:
            raise ConfigError("vt must be in [0, np)")
        if min(self.tfr, self.tfw, self.tfe) < 0:
            raise ConfigError("latencies must be non-negative")


def params_from_run(run, config: SSDConfig) -> ModelParams:
    """Extract :class:`ModelParams` from a finished simulation run.

    ``run`` is a :class:`~repro.ssd.device.RunResult`.  GC means (Vd/Vt)
    default to 0 when no GC of that kind occurred, which zeroes the
    corresponding model terms — consistent with the simulation.
    """
    metrics = run.metrics
    return ModelParams(
        hr=metrics.hit_ratio,
        prd=metrics.p_replace_dirty,
        rw=metrics.write_ratio,
        hgcr=metrics.gc_hit_ratio,
        vd=min(metrics.mean_valid_in_data_victims,
               config.pages_per_block - 1e-9),
        vt=min(metrics.mean_valid_in_trans_victims,
               config.pages_per_block - 1e-9),
        np=config.pages_per_block,
        tfr=config.read_us,
        tfw=config.write_us,
        tfe=config.erase_us,
    )
