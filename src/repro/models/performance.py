"""The performance model: Equations 1, 4, 6, 10 and 11 of the paper.

All functions return microseconds (per LPN translation or per user page
access).  They are direct transcriptions; the test suite checks both the
algebra (Eq. 10/11 equal Eq. 4/6 after substituting Eq. 7/9) and the
agreement with simulation-measured counts.
"""

from __future__ import annotations

from .params import ModelParams


def avg_translation_time(p: ModelParams) -> float:
    """Eq. 1 — mean time of one LPN-to-PPN translation.

    Tat = (1 - Hr) * [ Tfr + Prd * (Tfr + Tfw) ]
    """
    return (1.0 - p.hr) * (p.tfr + p.prd * (p.tfr + p.tfw))


def gc_data_time_per_access(p: ModelParams) -> float:
    """Eq. 10 — mean time collecting data blocks per user page access.

    Tgcd = Rw * [ Vd*(2-Hgcr)*(Tfr+Tfw) + Tfe ] / (Np - Vd)
    """
    return (p.rw * (p.vd * (2.0 - p.hgcr) * (p.tfr + p.tfw) + p.tfe)
            / (p.np - p.vd))


def ngct_per_access(p: ModelParams) -> float:
    """GC operations on translation blocks per user page access.

    From Eq. 9 with Eq. 7/8 substituted: (Ntw + Ndt) / (Np - Vt) / Npa.
    """
    ntw_per_access = (1.0 - p.hr) * p.prd                       # Eq. 8
    ndt_per_access = p.rw * p.vd * (1.0 - p.hgcr) / (p.np - p.vd)  # Eq. 3/7
    return (ntw_per_access + ndt_per_access) / (p.np - p.vt)    # Eq. 9


def gc_translation_time_per_access(p: ModelParams) -> float:
    """Eq. 11 — mean time collecting translation blocks per access.

    Tgct = [ (1-Hr)*Prd + Rw*Vd*(1-Hgcr)/(Np-Vd) ]
           * [ Vt*(Tfr+Tfw) + Tfe ] / (Np - Vt)
    """
    front = ((1.0 - p.hr) * p.prd
             + p.rw * p.vd * (1.0 - p.hgcr) / (p.np - p.vd))
    return front * (p.vt * (p.tfr + p.tfw) + p.tfe) / (p.np - p.vt)


def service_time_per_access(p: ModelParams) -> float:
    """Full per-access service time: translation + user access + GC.

    Combines Eq. 1, 10 and 11 with the mean user page access time
    (Rw*Tfw + (1-Rw)*Tfr); useful for end-to-end model checks.
    """
    user = p.rw * p.tfw + (1.0 - p.rw) * p.tfr
    return (avg_translation_time(p) + user
            + gc_data_time_per_access(p)
            + gc_translation_time_per_access(p))
