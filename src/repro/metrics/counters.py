"""FTL-level counters and the derived quantities of the paper's §3/§5.

The naming follows Table 1 of the paper where a symbol exists:

* ``Hr``   — cache hit ratio of address translation
* ``Hgcr`` — hit ratio of mapping updates during GC
* ``Prd``  — probability that a replaced mapping entry was dirty
* ``Ntw``  — translation-page writes during address translation
* ``Ndt``  — translation-page writes for GC mapping updates
* ``Nmt``  — translation-page writes migrating valid translation pages
* ``Nmd``  — data-page writes migrating valid data pages
* ``Ngcd``/``Ngct`` — GC operations on data/translation blocks
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FTLMetrics:
    """Counter block attached to every FTL instance."""

    # -- user traffic -------------------------------------------------
    user_page_reads: int = 0
    user_page_writes: int = 0
    #: TRIM page operations (extension; not part of the paper's model)
    user_page_trims: int = 0
    #: reads of trimmed/never-written pages, served as zeroes
    unmapped_reads: int = 0

    # -- address-translation cache behaviour ---------------------------
    lookups: int = 0
    hits: int = 0
    #: entries admitted by prefetching beyond the demanded entry
    prefetched_entries: int = 0
    #: prefetched entries that later served a hit before eviction
    prefetch_hits: int = 0

    # -- replacements ---------------------------------------------------
    replacements: int = 0
    dirty_replacements: int = 0
    #: dirty entries turned clean via batch updates (TPFTL 'b', DFTL GC)
    batch_cleaned_entries: int = 0

    # -- GC-time mapping updates ----------------------------------------
    gc_update_lookups: int = 0
    gc_update_hits: int = 0

    # -- translation-page flash traffic, by cause -----------------------
    trans_reads_load: int = 0       # cache-miss fills (and prefetch reads)
    trans_reads_writeback: int = 0  # read-modify-write before a writeback
    trans_reads_gc: int = 0         # GC-miss mapping updates
    trans_reads_migration: int = 0  # moving valid translation pages
    trans_writes_writeback: int = 0   # Ntw
    trans_writes_gc_update: int = 0   # Ndt
    trans_writes_migration: int = 0   # Nmt

    # -- data-page flash traffic beyond user writes ---------------------
    data_reads_migration: int = 0
    data_writes_migration: int = 0    # Nmd

    # -- GC structure ----------------------------------------------------
    gc_data_collections: int = 0      # Ngcd
    gc_translation_collections: int = 0  # Ngct
    gc_data_valid_migrated: int = 0   # sum of valid pages in data victims
    gc_trans_valid_migrated: int = 0  # sum of valid pages in trans victims
    erases_data: int = 0
    erases_translation: int = 0

    # ------------------------------------------------------------------
    # Derived quantities (Table 1 symbols)
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        """Hr — fraction of address translations served from the cache."""
        return self.hits / self.lookups if self.lookups else 1.0

    @property
    def gc_hit_ratio(self) -> float:
        """Hgcr — fraction of GC mapping updates served from the cache."""
        if not self.gc_update_lookups:
            return 1.0
        return self.gc_update_hits / self.gc_update_lookups

    @property
    def p_replace_dirty(self) -> float:
        """Prd — dirty replacements over all replacements."""
        if not self.replacements:
            return 0.0
        return self.dirty_replacements / self.replacements

    @property
    def translation_page_reads(self) -> int:
        """All translation-page reads (address translation + GC)."""
        return (self.trans_reads_load + self.trans_reads_writeback
                + self.trans_reads_gc + self.trans_reads_migration)

    @property
    def translation_page_writes(self) -> int:
        """All translation-page writes: Ntw + Ndt + Nmt."""
        return (self.trans_writes_writeback + self.trans_writes_gc_update
                + self.trans_writes_migration)

    @property
    def extra_writes(self) -> int:
        """Writes beyond user page writes: Ntw + Ndt + Nmt + Nmd."""
        return self.translation_page_writes + self.data_writes_migration

    @property
    def write_amplification(self) -> float:
        """A — Eq. 12: (user writes + extra writes) / user writes."""
        if not self.user_page_writes:
            return 1.0
        return ((self.user_page_writes + self.extra_writes)
                / self.user_page_writes)

    @property
    def total_erases(self) -> int:
        """All block erases, across kinds."""
        return self.erases_data + self.erases_translation

    @property
    def mean_valid_in_data_victims(self) -> float:
        """Vd — mean valid pages per collected data block."""
        if not self.gc_data_collections:
            return 0.0
        return self.gc_data_valid_migrated / self.gc_data_collections

    @property
    def mean_valid_in_trans_victims(self) -> float:
        """Vt — mean valid pages per collected translation block."""
        if not self.gc_translation_collections:
            return 0.0
        return self.gc_trans_valid_migrated / self.gc_translation_collections

    @property
    def user_page_accesses(self) -> int:
        """Npa — total user page accesses."""
        return self.user_page_reads + self.user_page_writes

    @property
    def write_ratio(self) -> float:
        """Rw — fraction of user page accesses that are writes."""
        if not self.user_page_accesses:
            return 0.0
        return self.user_page_writes / self.user_page_accesses

    def summary(self) -> dict:
        """Flat dict of the headline numbers, for reports and tests."""
        return {
            "user_page_reads": self.user_page_reads,
            "user_page_writes": self.user_page_writes,
            "hit_ratio": self.hit_ratio,
            "gc_hit_ratio": self.gc_hit_ratio,
            "p_replace_dirty": self.p_replace_dirty,
            "translation_page_reads": self.translation_page_reads,
            "translation_page_writes": self.translation_page_writes,
            "write_amplification": self.write_amplification,
            "erases": self.total_erases,
            "gc_data_collections": self.gc_data_collections,
            "gc_translation_collections": self.gc_translation_collections,
        }
