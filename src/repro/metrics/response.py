"""Aggregated response-time statistics under the FIFO queueing model.

Means what the paper calls "system response time" (Fig 6e): queueing delay
plus service time per request.  Aggregation is streaming (Welford) so long
traces do not hold per-request lists unless the caller asks for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import MetricsError
from ..types import RequestTiming


@dataclass
class ResponseStats:
    """Streaming mean/variance/max of request response times (us)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    max: float = 0.0
    total_queue_delay: float = 0.0
    #: summed wall time requests spent in service (first dispatch to
    #: completion); under a multi-channel device this counts elapsed
    #: time, not flash-busy time, so overlapped operations shrink it
    total_service_time: float = 0.0
    keep_samples: bool = False
    samples: List[float] = field(default_factory=list)
    #: sorted view of ``samples``, rebuilt lazily when dirty
    _sorted: Optional[List[float]] = field(default=None, repr=False,
                                           compare=False)
    #: explicit invalidation flag for ``_sorted``: set by *every*
    #: mutation (``record``/``record_timing``/``merge``), so the cache
    #: can never serve stale percentiles after a same-length
    #: replacement of ``samples`` — a length comparison would miss it
    _sorted_dirty: bool = field(default=True, repr=False, compare=False)

    def record(self, timing: RequestTiming) -> None:
        """Fold one request timing into the running statistics."""
        self.record_timing(timing.arrival, timing.start, timing.finish)

    def record_timing(self, arrival: float, start: float,
                      finish: float) -> None:
        """:meth:`record` without the :class:`RequestTiming` wrapper.

        Identical arithmetic (``response = finish - arrival`` etc.), so
        hot loops folding many timings can skip the per-request object.
        """
        value = finish - arrival
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value > self.max:
            self.max = value
        self.total_queue_delay += start - arrival
        self.total_service_time += finish - start
        if self.keep_samples:
            self.samples.append(value)
            self._sorted_dirty = True

    @property
    def variance(self) -> float:
        """Sample variance of response times."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation of response times."""
        return math.sqrt(self.variance)

    @property
    def mean_queue_delay(self) -> float:
        """Mean time spent waiting for the device."""
        return self.total_queue_delay / self.count if self.count else 0.0

    @property
    def mean_service_time(self) -> float:
        """Mean wall time in service (response minus queueing delay)."""
        return (self.total_service_time / self.count if self.count
                else 0.0)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile; requires ``keep_samples=True``.

        Raises :class:`~repro.errors.MetricsError` when samples were
        never collected (a caller asking would otherwise silently read
        "no data" where the truth is "not measured").  Returns ``None``
        only for the legitimately empty case: sampling was on but no
        request was recorded.  The sorted order is cached and only
        rebuilt after new samples arrive, so sweeping many percentiles
        costs one sort instead of one per call.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.keep_samples and not self.samples:
            raise MetricsError(
                "percentiles need per-request samples; this run was "
                "aggregated with keep_samples=False (pass "
                "keep_response_samples=True to the device)")
        if not self.samples:
            return None
        if self._sorted_dirty or self._sorted is None:
            self._sorted = sorted(self.samples)
            self._sorted_dirty = False
        rank = max(1, math.ceil(p / 100.0 * len(self._sorted)))
        return self._sorted[rank - 1]

    def invalidate(self) -> None:
        """Mark the sorted-percentile cache dirty.

        Callers that mutate :attr:`samples` directly (in-place edits,
        same-length replacement) must call this; the class's own
        mutators do it automatically.
        """
        self._sorted_dirty = True

    def merge(self, other: "ResponseStats") -> None:
        """Fold another instance's statistics into this one, in place.

        Combines the streaming moments with the pairwise (Chan et al.)
        update, so merging per-tenant statistics reproduces the numbers
        a single instance recording every request would hold (mean and
        max exactly; variance up to floating-point reassociation).
        Samples are concatenated when both sides kept them; a merge
        that mixes a sampled side with an unsampled-but-populated side
        drops ``keep_samples`` so percentiles fail loudly instead of
        silently reporting a subset.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.max = other.max
            self.total_queue_delay = other.total_queue_delay
            self.total_service_time = other.total_service_time
            self.keep_samples = other.keep_samples
            self.samples = list(other.samples)
            self._sorted_dirty = True
            return
        merged = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = (self._m2 + other._m2
                    + delta * delta * self.count * other.count / merged)
        self.mean += delta * other.count / merged
        self.count = merged
        if other.max > self.max:
            self.max = other.max
        self.total_queue_delay += other.total_queue_delay
        self.total_service_time += other.total_service_time
        if self.keep_samples and other.keep_samples:
            self.samples.extend(other.samples)
        elif self.keep_samples or other.keep_samples:
            # one side aggregated without samples: a percentile over
            # the surviving subset would be silently wrong
            self.keep_samples = False
            self.samples = []
        self._sorted_dirty = True
