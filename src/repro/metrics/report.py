"""Plain-text table formatting for experiment output.

The experiment runners print the same rows/series the paper's figures
plot; this module renders them as aligned monospace tables so the bench
output is directly comparable with the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _render(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 precision: int = 4, title: str = "") -> str:
    """Render an aligned text table.

    Floats are fixed to ``precision`` digits; None renders as ``-``.
    """
    body: List[List[str]] = [
        [_render(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in body:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)


def format_percent(value: float, precision: int = 1) -> str:
    """Render a ratio as a percentage string (0.235 -> '23.5%')."""
    return f"{value * 100.0:.{precision}f}%"
