"""Periodic sampling of the mapping-cache distribution.

Figure 1 of the paper samples DFTL's cache every 10,000 user page accesses
and reports (a) the average number of cached entries per cached translation
page and (b) the CDF of dirty entries per cached translation page; Figure
2(b) tracks the number of cached translation pages over time.  The sampler
here captures exactly those series for any FTL that can describe its cache
as a set of (entries, dirty-entries) pairs, one per cached translation
page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CacheSample:
    """One observation of the cache's translation-page-level shape."""

    access_number: int
    #: number of translation pages with >= 1 cached entry
    cached_pages: int
    #: total cached entries across those pages
    cached_entries: int
    #: total dirty cached entries
    dirty_entries: int

    @property
    def mean_entries_per_page(self) -> float:
        """Cached entries per cached page."""
        if not self.cached_pages:
            return 0.0
        return self.cached_entries / self.cached_pages

    @property
    def mean_dirty_per_page(self) -> float:
        """Dirty entries per cached page."""
        if not self.cached_pages:
            return 0.0
        return self.dirty_entries / self.cached_pages


@dataclass
class CacheSampler:
    """Collects :class:`CacheSample` records and a dirty-count histogram.

    ``interval`` is in user page accesses; 0 disables sampling.  The dirty
    histogram aggregates, across all samples, how many cached translation
    pages held exactly ``k`` dirty entries — the raw data behind the
    paper's Fig 1(b) CDF.
    """

    interval: int = 10_000
    samples: List[CacheSample] = field(default_factory=list)
    dirty_histogram: Dict[int, int] = field(default_factory=dict)
    _next_at: int = 0

    def __post_init__(self) -> None:
        self._next_at = self.interval

    @property
    def enabled(self) -> bool:
        """True when a positive sampling interval is set."""
        return self.interval > 0

    def due(self, access_number: int) -> bool:
        """True when :meth:`maybe_sample` would record at this count.

        Lets hot loops skip building the cache snapshot argument on the
        (vast majority of) requests that will not sample.
        """
        return self.enabled and access_number >= self._next_at

    def maybe_sample(self, access_number: int,
                     snapshot: Sequence[Tuple[int, int]]) -> bool:
        """Record a sample if ``access_number`` crossed the next boundary.

        ``snapshot`` is a sequence of ``(entries, dirty_entries)`` pairs,
        one per cached translation page.  Returns True if sampled.
        """
        if not self.enabled or access_number < self._next_at:
            return False
        self._next_at += self.interval
        if access_number >= self._next_at:
            # A multi-page request can jump ``access_number`` past
            # several boundaries at once; advance past it in one step,
            # otherwise the sampler fires on every subsequent request
            # until it catches up, oversampling the Fig 1/2 series.
            missed = (access_number - self._next_at) // self.interval + 1
            self._next_at += missed * self.interval
        self.record(access_number, snapshot)
        return True

    def record(self, access_number: int,
               snapshot: Sequence[Tuple[int, int]]) -> None:
        """Fold one request timing into the running statistics."""
        total_entries = sum(entries for entries, _ in snapshot)
        total_dirty = sum(dirty for _, dirty in snapshot)
        self.samples.append(CacheSample(
            access_number=access_number,
            cached_pages=len(snapshot),
            cached_entries=total_entries,
            dirty_entries=total_dirty,
        ))
        for _, dirty in snapshot:
            self.dirty_histogram[dirty] = self.dirty_histogram.get(
                dirty, 0) + 1

    # ------------------------------------------------------------------
    # Figure-ready series
    # ------------------------------------------------------------------
    def entries_per_page_series(self) -> List[Tuple[int, float]]:
        """Fig 1(a): (access number, mean entries per cached page)."""
        return [(s.access_number, s.mean_entries_per_page)
                for s in self.samples]

    def cached_pages_series(self) -> List[Tuple[int, int]]:
        """Fig 2(b): (access number, number of cached translation pages)."""
        return [(s.access_number, s.cached_pages) for s in self.samples]

    def dirty_cdf(self) -> List[Tuple[int, float]]:
        """Fig 1(b): CDF over pages of dirty entries per page.

        Returns (k, fraction of page observations with dirty <= k).
        """
        total = sum(self.dirty_histogram.values())
        if not total:
            return []
        cdf: List[Tuple[int, float]] = []
        running = 0
        for k in sorted(self.dirty_histogram):
            running += self.dirty_histogram[k]
            cdf.append((k, running / total))
        return cdf

    def mean_dirty_per_page(self) -> float:
        """Average dirty entries per cached page across all observations."""
        total_pages = sum(self.dirty_histogram.values())
        if not total_pages:
            return 0.0
        weighted = sum(k * n for k, n in self.dirty_histogram.items())
        return weighted / total_pages

    def fraction_pages_with_dirty_above(self, k: int) -> float:
        """Fraction of page observations with more than ``k`` dirty."""
        total = sum(self.dirty_histogram.values())
        if not total:
            return 0.0
        above = sum(n for dirty, n in self.dirty_histogram.items()
                    if dirty > k)
        return above / total
