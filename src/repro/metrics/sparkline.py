"""Unicode sparklines for terminal-rendered series figures.

The paper's time-series figures (Fig 1a, Fig 2b) and sweep figures
(Fig 8c/9) are line charts; in a terminal harness the closest faithful
rendering is a sparkline — one block character per sample, scaled to
the series' range.  Used by the experiment runners' notes so a bench
run shows the *shape* of each series, not just its endpoints.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: eight block heights, lowest to highest
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render a numeric series as a one-line sparkline.

    ``width`` (optional) downsamples the series to that many buckets by
    averaging.  ``lo``/``hi`` pin the scale (default: the series' own
    min/max); a flat series renders as mid-height blocks.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        series = _downsample(series, width)
    low = min(series) if lo is None else lo
    high = max(series) if hi is None else hi
    span = high - low
    if span <= 0:
        return _BLOCKS[3] * len(series)
    chars = []
    top = len(_BLOCKS) - 1
    for value in series:
        position = (value - low) / span
        chars.append(_BLOCKS[max(0, min(top, round(position * top)))])
    return "".join(chars)


def _downsample(series: List[float], width: int) -> List[float]:
    """Average the series into ``width`` buckets."""
    buckets: List[float] = []
    n = len(series)
    for index in range(width):
        start = index * n // width
        end = max(start + 1, (index + 1) * n // width)
        chunk = series[start:end]
        buckets.append(sum(chunk) / len(chunk))
    return buckets


def labelled_sparkline(label: str, values: Sequence[float],
                       width: int = 48, unit: str = "") -> str:
    """A sparkline with its range annotated, e.g. for experiment notes."""
    if not values:
        return f"{label}: (no data)"
    line = sparkline(values, width=width)
    lo, hi = min(values), max(values)
    return f"{label}: {line} [{lo:.4g}..{hi:.4g}{unit}]"
