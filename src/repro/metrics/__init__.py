"""Measurement layer: FTL counters, cache sampling, response-time stats.

Everything §5 of the paper reports is derived from the counters here:
cache hit ratio (Hr), probability of replacing a dirty entry (Prd),
translation-page reads/writes split by cause, GC hit ratio (Hgcr),
write amplification, erase counts and system response time.
"""

from .counters import FTLMetrics
from .response import ResponseStats
from .sampling import CacheSample, CacheSampler
from .report import format_table
from .sparkline import labelled_sparkline, sparkline

__all__ = ["FTLMetrics", "ResponseStats", "CacheSample", "CacheSampler",
           "format_table", "sparkline", "labelled_sparkline"]
