"""Trace-driven SSD device model.

Wraps an FTL and turns flash-operation counts into time using the Table 3
latencies.  :class:`DeviceModel` owns everything that is *not* a queueing
decision — trace validation, per-run queue reset, warmup, GC-time and
service-time accounting, background GC, response statistics and cache
sampling — and delegates only the dispatch policy to its subclasses:

* :class:`SSDevice` is the paper-faithful single-server FIFO queue: a
  request's service starts at ``max(arrival, device free)`` and the
  *system response time* (Fig 6e) is queueing delay plus service time.
  GC is charged to the request that triggered it, as in FlashSim.
* :class:`~repro.ssd.parallel.ChannelSSDevice` (extension) dispatches
  individual flash operations over N independently-queued channels.

Unified timing semantics (identical in every device model):

* A request that touches no flash at all (e.g. a TRIM whose mapping is
  cached — invalidation is out-of-band bookkeeping) completes at its
  arrival time: it never joins a queue and is charged no queueing delay.
* ``RequestTiming.start`` is the instant the device *first dispatches*
  work for the request, so ``queue_delay = start - arrival`` measures
  real contention.
* Warmup requests age the FTL but are not timed; queue state is reset at
  the start of every ``run()`` so a reused device never inherits the
  previous replay's makespan.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..errors import ConfigError, WorkloadError
from ..ftl.base import BaseFTL
from ..metrics import CacheSampler, FTLMetrics, ResponseStats
from ..types import AccessResult, RequestTiming, Trace

#: dispatch policies understood by :class:`DeviceModel`
QOS_POLICIES = ("fifo", "fair")


class FairShare:
    """Weighted fair-share dispatch state (the ``qos="fair"`` policy).

    A quasi-stationary approximation of generalized processor sharing:
    every tenant owns a FIFO *lane*, and a request's service is
    stretched by the reciprocal of its tenant's weight share among the
    tenants backlogged at its arrival instant.  A lone backlogged
    tenant therefore receives the full device (share 1 — the arithmetic
    degenerates to the single-server FIFO recurrence exactly), while
    under contention each tenant's queue grows only with its *own*
    offered load: one tenant driven into overload cannot starve the
    others, which is the isolation property the ``traffic`` experiment
    measures.  Unattributed requests (``tenant=None``) share one
    default lane with weight 1.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None
                 ) -> None:
        self.weights: Dict[str, float] = dict(weights or {})
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ConfigError(
                    f"tenant weight must be positive: {tenant}={weight}")
        #: per-tenant lane horizon (simulated us); reset per run
        self.lanes: Dict[Optional[str], float] = {}

    def reset(self) -> None:
        """Forget all lane state (start of a run)."""
        self.lanes = {}

    def weight(self, tenant: Optional[str]) -> float:
        """A tenant's fair-share weight (default 1)."""
        if tenant is None:
            return 1.0
        return self.weights.get(tenant, 1.0)

    def dispatch(self, arrival: float, service_us: float,
                 tenant: Optional[str]) -> Tuple[float, float]:
        """Place one request on its tenant's lane; ``(start, finish)``.

        The effective share is evaluated once, at the arrival instant
        (quasi-stationary): tenants whose lane horizon extends past
        ``arrival`` are backlogged and dilute each other's shares in
        weight proportion.
        """
        lanes = self.lanes
        lane = lanes.get(tenant, 0.0)
        total = self.weight(tenant)
        for other, busy in lanes.items():
            if other != tenant and busy > arrival:
                total += self.weight(other)
        share = self.weight(tenant) / total
        start = arrival if arrival > lane else lane
        finish = start + service_us / share
        lanes[tenant] = finish
        return start, finish

    def earliest_free(self) -> float:
        """When every lane has drained (0.0 before any dispatch)."""
        return max(self.lanes.values(), default=0.0)


@dataclasses.dataclass
class RunResult:
    """Everything measured over one trace replay."""

    ftl_name: str
    trace_name: str
    requests: int
    metrics: FTLMetrics
    response: ResponseStats
    sampler: Optional[CacheSampler]
    #: simulated time at which the last request finished (us)
    makespan: float
    #: flash time spent on GC operations (us), foreground + background
    gc_time_us: float = 0.0
    #: total flash service time (us) across measured requests
    service_time_us: float = 0.0
    #: flash time spent on background (idle-time) GC (us); disjoint from
    #: ``service_time_us``, which only covers request-triggered work
    background_gc_time_us: float = 0.0
    #: victim blocks collected during host idle time
    background_collections: int = 0
    #: flash channels of the device model that produced this result
    channels: int = 1
    #: reliability counters from FlashStats.fault_summary() (injected
    #: faults, ECC retries, retired blocks); all zero on a healthy run
    faults: dict = dataclasses.field(default_factory=dict)
    #: per-tenant response statistics, keyed by tenant name; empty for
    #: single-stream (unattributed) traces
    tenants: Dict[str, ResponseStats] = dataclasses.field(
        default_factory=dict)
    #: dispatch policy that produced this result ("fifo" = paper model)
    qos: str = "fifo"

    @property
    def gc_time_fraction(self) -> float:
        """GC's share of total flash service time.

        The denominator covers everything the flash actually served:
        request-triggered work plus background (idle-time) GC.
        ``gc_time_us`` counts foreground GC (a subset of
        ``service_time_us``) plus background GC (all of
        ``background_gc_time_us``), so the fraction is always <= 1.
        """
        total = self.service_time_us + self.background_gc_time_us
        if not total:
            return 0.0
        return self.gc_time_us / total

    def summary(self) -> dict:
        """Headline numbers as a flat dict (handy in tests/benches)."""
        data = self.metrics.summary()
        data.update({
            "ftl": self.ftl_name,
            "trace": self.trace_name,
            "requests": self.requests,
            "mean_response_us": self.response.mean,
            "mean_queue_delay_us": self.response.mean_queue_delay,
            "makespan_us": self.makespan,
            "gc_time_fraction": self.gc_time_fraction,
            "channels": self.channels,
            "qos": self.qos,
        })
        if self.tenants:
            data["tenants"] = {
                name: {"requests": stats.count,
                       "mean_response_us": stats.mean,
                       "mean_queue_delay_us": stats.mean_queue_delay}
                for name, stats in sorted(self.tenants.items())}
        data.update(self.faults)
        return data


class DeviceModel:
    """Shared timing machinery over an FTL; subclasses pick the queueing.

    Subclasses implement four small hooks:

    * :meth:`_reset_queues` — forget all queue state (start of ``run``);
    * :meth:`_earliest_free` — when the least-busy queue frees up
      (drives the background-GC idle detector);
    * :meth:`_absorb_idle` — charge idle-time (background GC) service to
      the least-busy queue;
    * :meth:`_dispatch` — place one request's flash work on the
      queue(s), returning ``(start, finish)`` where ``start`` is the
      first dispatch time.
    """

    #: channel count reported in RunResult (subclasses override)
    channels: int = 1

    def __init__(self, ftl: BaseFTL, sample_interval: int = 0,
                 keep_response_samples: bool = False,
                 background_gc: bool = False,
                 background_gc_min_idle_us: float = 2_000.0,
                 qos: str = "fifo",
                 tenant_weights: Optional[Dict[str, float]] = None
                 ) -> None:
        self.ftl = ftl
        self.sample_interval = sample_interval
        self.keep_response_samples = keep_response_samples
        #: collect victims during idle gaps (extension; off = paper model)
        self.background_gc = background_gc
        self.background_gc_min_idle_us = background_gc_min_idle_us
        if qos not in QOS_POLICIES:
            raise ConfigError(
                f"unknown qos policy {qos!r}; choose from "
                f"{', '.join(QOS_POLICIES)}")
        #: dispatch policy; "fifo" (the default) is the paper's model
        #: and leaves every timing untouched, "fair" routes requests
        #: through weighted per-tenant lanes (:class:`FairShare`)
        self.qos = qos
        self._fair = (FairShare(tenant_weights) if qos == "fair"
                      else None)
        if self._fair is not None and background_gc:
            raise ConfigError(
                "background_gc is only modelled under the FIFO "
                "dispatch policy (fair-share lanes have no single "
                "idle-gap notion to absorb idle-time GC into)")
        self._reset_state()

    # ------------------------------------------------------------------
    # Queueing hooks
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        """Forget queue *and* QoS lane state (start of every run)."""
        self._reset_queues()
        if self._fair is not None:
            self._fair.reset()

    def _reset_queues(self) -> None:
        """Forget all queue state (called at the start of every run)."""
        raise NotImplementedError

    def _earliest_free(self) -> float:
        """Simulated time at which the least-busy queue frees up."""
        raise NotImplementedError

    def _absorb_idle(self, service_us: float) -> None:
        """Charge idle-time service to the least-busy queue."""
        raise NotImplementedError

    def _dispatch(self, arrival: float, cost: AccessResult,
                  service_us: float) -> Tuple[float, float]:
        """Queue one request's flash work; return ``(start, finish)``."""
        raise NotImplementedError

    def _dispatch_fast(self, arrival: float, reads: int, writes: int,
                       erases: int,
                       service_us: float) -> Tuple[float, float]:
        """:meth:`_dispatch` from bare op counts (fast-path hook).

        Same queue arithmetic without the per-request ``AccessResult``;
        subclasses override with an equivalent count-based placement.
        """
        return self._dispatch(
            arrival,
            AccessResult(data_reads=reads, data_writes=writes,
                         erases=erases),
            service_us)

    def _parallel_service_us(self, reads: int, writes: int, erases: int,
                             service_us: float) -> float:
        """A request's service time with all its ops overlapped.

        The fair-share policy dispatches at *request* granularity, so
        devices with internal parallelism report here how long the
        request occupies them when it has the device to itself
        (single-server models: the plain op-sum ``service_us``).
        """
        return service_us

    def _place(self, arrival: float, cost: AccessResult,
               service_us: float, tenant: Optional[str]
               ) -> Tuple[float, float]:
        """Route one request through the active dispatch policy."""
        if self._fair is not None:
            return self._fair.dispatch(
                arrival,
                self._parallel_service_us(cost.total_reads,
                                          cost.total_writes, cost.erases,
                                          service_us),
                tenant)
        return self._dispatch(arrival, cost, service_us)

    def _place_fast(self, arrival: float, reads: int, writes: int,
                    erases: int, service_us: float,
                    tenant: Optional[str]) -> Tuple[float, float]:
        """:meth:`_place` from bare op counts (fast-path hook)."""
        if self._fair is not None:
            return self._fair.dispatch(
                arrival,
                self._parallel_service_us(reads, writes, erases,
                                          service_us),
                tenant)
        return self._dispatch_fast(arrival, reads, writes, erases,
                                   service_us)

    # ------------------------------------------------------------------
    # Trace validation
    # ------------------------------------------------------------------
    def _validate_trace(self, trace: Trace) -> None:
        """Reject traces the queue math cannot time truthfully.

        Beyond the address-space bound, arrivals must be non-decreasing:
        the FIFO recurrence charges ``start - arrival`` as queueing
        delay, so an out-of-order arrival would silently *under-report*
        delay for every request it jumped ahead of.  The trace parsers
        sort defensively and the synthetic/traffic generators emit
        ordered schedules, so an unordered trace here is a caller bug.
        """
        max_lpn = trace.max_lpn()
        if max_lpn is not None and max_lpn >= self.ftl.ssd.logical_pages:
            raise WorkloadError(
                f"trace touches LPN {max_lpn} but the device has only "
                f"{self.ftl.ssd.logical_pages} logical pages")
        previous = 0.0
        for index, request in enumerate(trace.requests):
            if request.arrival < previous:
                raise WorkloadError(
                    f"trace arrivals are not non-decreasing: request "
                    f"{index} arrives at {request.arrival} after "
                    f"{previous}; sort the trace (the parsers do) or "
                    f"fix the generator")
            previous = request.arrival

    # ------------------------------------------------------------------
    # The replay loop
    # ------------------------------------------------------------------
    def run(self, trace: Trace, warmup_requests: int = 0) -> RunResult:
        """Replay a trace and return the measured results.

        ``warmup_requests`` leading requests are served first to age the
        device (fragment the physical mapping, populate the cache, reach
        GC steady state) and then every statistic is reset, so the
        measurement reflects steady-state behaviour — the regime the
        paper's multi-million-request traces operate in.  Warmup service
        is not timed and queue state is reset per run, so neither a
        warmup phase nor a previous replay ever leaks into the measured
        timings.
        """
        self._validate_trace(trace)
        self._reset_state()
        ssd = self.ftl.ssd
        measured = trace.requests
        if warmup_requests > 0:
            for request in trace.requests[:warmup_requests]:
                self.ftl.serve_request(request)
            self.ftl.metrics = FTLMetrics()
            self.ftl.flash.stats.reset()
            measured = trace.requests[warmup_requests:]
        response = ResponseStats(keep_samples=self.keep_response_samples)
        tenants: Dict[str, ResponseStats] = {}
        sampler = (CacheSampler(interval=self.sample_interval)
                   if self.sample_interval > 0 else None)
        gc_time = 0.0
        service_total = 0.0
        background_gc_us = 0.0
        background_collections = 0
        makespan = 0.0
        for request in measured:
            if self.background_gc:
                idle = request.arrival - self._earliest_free()
                while idle >= self.background_gc_min_idle_us:
                    bg = self.ftl.background_collect(max_blocks=1)
                    bg_service = bg.service_time(
                        ssd.read_us, ssd.write_us, ssd.erase_us)
                    if bg_service == 0.0:
                        break
                    background_collections += bg.erases
                    self._absorb_idle(bg_service)
                    gc_time += bg_service
                    background_gc_us += bg_service
                    idle = request.arrival - self._earliest_free()
            cost = self.ftl.serve_request(request)
            service = cost.service_time(ssd.read_us, ssd.write_us,
                                        ssd.erase_us)
            gc_ops = type(cost)(
                data_reads=cost.gc_data_reads,
                data_writes=cost.gc_data_writes,
                translation_reads=cost.gc_translation_reads,
                translation_writes=cost.gc_translation_writes,
                erases=cost.erases)
            gc_time += gc_ops.service_time(ssd.read_us, ssd.write_us,
                                           ssd.erase_us)
            service_total += service
            if cost.total_reads or cost.total_writes or cost.erases:
                start, finish = self._place(request.arrival, cost,
                                            service, request.tenant)
            else:
                # No flash touched (pure cache hit / cached TRIM): the
                # request completes at arrival and is charged no
                # queueing delay for flash work it never issued.
                start = finish = request.arrival
            if finish > makespan:
                makespan = finish
            response.record(RequestTiming(arrival=request.arrival,
                                          start=start, finish=finish,
                                          tenant=request.tenant))
            if request.tenant is not None:
                per_tenant = tenants.get(request.tenant)
                if per_tenant is None:
                    per_tenant = tenants[request.tenant] = ResponseStats(
                        keep_samples=self.keep_response_samples)
                per_tenant.record_timing(request.arrival, start, finish)
            if sampler is not None:
                sampler.maybe_sample(self.ftl.metrics.user_page_accesses,
                                     self.ftl.cache_snapshot())
        return RunResult(
            ftl_name=self.ftl.name,
            trace_name=trace.name,
            requests=len(measured),
            metrics=self.ftl.metrics,
            response=response,
            sampler=sampler,
            makespan=makespan,
            gc_time_us=gc_time,
            service_time_us=service_total,
            background_gc_time_us=background_gc_us,
            background_collections=background_collections,
            channels=self.channels,
            faults=self.ftl.flash.stats.fault_summary(),
            tenants=tenants,
            qos=self.qos,
        )


class SSDevice(DeviceModel):
    """A simulated SSD: one FTL under a single-server FIFO queue."""

    channels = 1

    def _reset_queues(self) -> None:
        self._busy_until = 0.0

    def _earliest_free(self) -> float:
        return self._busy_until

    def _absorb_idle(self, service_us: float) -> None:
        self._busy_until += service_us

    def _dispatch(self, arrival: float, cost: AccessResult,
                  service_us: float) -> Tuple[float, float]:
        start = max(arrival, self._busy_until)
        finish = start + service_us
        self._busy_until = finish
        return start, finish

    def _dispatch_fast(self, arrival: float, reads: int, writes: int,
                       erases: int,
                       service_us: float) -> Tuple[float, float]:
        # single-server placement ignores the op mix entirely
        start = max(arrival, self._busy_until)
        finish = start + service_us
        self._busy_until = finish
        return start, finish


def simulate(ftl: BaseFTL, trace: Trace, sample_interval: int = 0,
             keep_response_samples: bool = False,
             warmup_requests: int = 0, channels: int = 1,
             fast: bool = False, qos: str = "fifo",
             tenant_weights: Optional[Dict[str, float]] = None
             ) -> RunResult:
    """One-shot convenience: build a device around ``ftl`` and replay.

    ``channels=1`` (the default) uses the paper-faithful
    :class:`SSDevice`; larger counts build a
    :class:`~repro.ssd.parallel.ChannelSSDevice`.  ``fast=True`` routes
    the replay through the batched execution core
    (:func:`~repro.ssd.fastpath.run_fast`), which produces a
    field-for-field identical :class:`RunResult` several times faster;
    the default stays on the reference path.  ``qos="fair"`` switches
    dispatch to weighted per-tenant fair-share lanes (the paper-default
    ``"fifo"`` leaves every timing untouched).
    """
    from .parallel import make_device
    device = make_device(ftl, channels=channels,
                         sample_interval=sample_interval,
                         keep_response_samples=keep_response_samples,
                         qos=qos, tenant_weights=tenant_weights)
    if fast:
        from .fastpath import run_fast
        return run_fast(device, trace, warmup_requests=warmup_requests)
    return device.run(trace, warmup_requests=warmup_requests)
