"""Multi-channel device model (extension beyond the paper).

The paper's response-time model is a single-server queue — one flash
channel.  Real SSDs stripe blocks across several channels that operate
in parallel (Agrawal et al., the source of Table 3, models up to 8).
``ChannelSSDevice`` refines the timing model: each flash operation is
dispatched to the channel owning its physical block, channels serve
their own FIFO queues, and a request completes when its last operation
does.

Because the FTL layer is timing-agnostic (it reports operation *counts*
and the flash records *which* blocks were touched), the channel model
only needs the per-request operation trace; we approximate it by
spreading each request's operations round-robin over the channels,
which matches block-striped allocation in the limit.  The single-channel
``SSDevice`` remains the paper-faithful default.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from ..ftl.base import BaseFTL
from ..metrics import ResponseStats
from ..types import RequestTiming, Trace
from .device import RunResult


class ChannelSSDevice:
    """An SSD with ``channels`` independently-queued flash channels."""

    def __init__(self, ftl: BaseFTL, channels: int = 4) -> None:
        if channels < 1:
            raise ConfigError("channels must be >= 1")
        self.ftl = ftl
        self.channels = channels
        self._busy: List[float] = [0.0] * channels

    def run(self, trace: Trace, warmup_requests: int = 0) -> RunResult:
        """Replay a trace and return the measured results."""
        ssd = self.ftl.ssd
        measured = trace.requests
        if warmup_requests > 0:
            for request in trace.requests[:warmup_requests]:
                self.ftl.serve_request(request)
            from ..metrics import FTLMetrics
            self.ftl.metrics = FTLMetrics()
            self.ftl.flash.stats.reset()
            measured = trace.requests[warmup_requests:]
        response = ResponseStats()
        makespan = 0.0
        for request in measured:
            cost = self.ftl.serve_request(request)
            # expand the cost into individual operation latencies
            ops: List[float] = []
            ops.extend([ssd.read_us] * cost.total_reads)
            ops.extend([ssd.write_us] * cost.total_writes)
            ops.extend([ssd.erase_us] * cost.erases)
            if not ops:
                finish = max(request.arrival,
                             min(self._busy))  # pure cache hit
            else:
                finish = request.arrival
                for index, latency in enumerate(ops):
                    channel = index % self.channels
                    start = max(request.arrival, self._busy[channel])
                    self._busy[channel] = start + latency
                    finish = max(finish, self._busy[channel])
            makespan = max(makespan, finish)
            response.record(RequestTiming(arrival=request.arrival,
                                          start=request.arrival,
                                          finish=finish))
        return RunResult(
            ftl_name=self.ftl.name,
            trace_name=trace.name,
            requests=len(measured),
            metrics=self.ftl.metrics,
            response=response,
            sampler=None,
            makespan=makespan,
            faults=self.ftl.flash.stats.fault_summary(),
        )
