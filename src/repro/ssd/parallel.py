"""Multi-channel device model (extension beyond the paper).

The paper's response-time model is a single-server queue — one flash
channel.  Real SSDs stripe blocks across several channels that operate
in parallel (Agrawal et al., the source of Table 3, models up to 8;
LFTL drives a parallel-IO flash card the same way).
:class:`ChannelSSDevice` refines the timing model: each flash operation
is dispatched to a channel, channels serve their own FIFO queues, and a
request completes when its last operation does.

Because the FTL layer is timing-agnostic (it reports operation *counts*
and the flash records *which* blocks were touched), the channel model
only needs the per-request operation trace; we approximate it by
striping operations over the channels with a round-robin cursor that
persists across requests — the limit behaviour of block-striped
allocation, under which consecutive single-page requests land on
different channels.  Intra-request ordering constraints (a translation
read preceding the data read it resolves) are ignored, so the model is
an optimistic bound on channel overlap.  The single-channel
:class:`~repro.ssd.device.SSDevice` remains the paper-faithful default,
and ``ChannelSSDevice(channels=1)`` reproduces it exactly — same
arithmetic, same per-request finish times, bit for bit.

All non-queueing behaviour (trace validation, warmup, GC-time and
service-time accounting, background GC, response sampling, per-run
queue reset) lives in the shared :class:`~repro.ssd.device.DeviceModel`
base and is therefore identical across device models.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigError
from ..ftl.base import BaseFTL
from ..types import AccessResult
from .device import DeviceModel, SSDevice


class ChannelSSDevice(DeviceModel):
    """An SSD with ``channels`` independently-queued flash channels."""

    def __init__(self, ftl: BaseFTL, channels: int = 4,
                 **kwargs) -> None:
        if channels < 1:
            raise ConfigError("channels must be >= 1")
        self.channels = channels
        super().__init__(ftl, **kwargs)

    # ------------------------------------------------------------------
    # Queueing hooks
    # ------------------------------------------------------------------
    def _reset_queues(self) -> None:
        self._busy: List[float] = [0.0] * self.channels
        #: round-robin striping cursor; persists across requests so
        #: consecutive small requests spread over all channels
        self._cursor = 0

    def _earliest_free(self) -> float:
        return min(self._busy)

    def _absorb_idle(self, service_us: float) -> None:
        # background GC occupies one channel; use the least busy one
        index = self._busy.index(min(self._busy))
        self._busy[index] += service_us

    def _dispatch(self, arrival: float, cost: AccessResult,
                  service_us: float) -> Tuple[float, float]:
        if self.channels == 1:
            # Exact SSDevice arithmetic (one multiply-accumulated
            # service time, not a per-op sum), so channels=1 replays
            # are bit-for-bit identical to the single-server model.
            start = max(arrival, self._busy[0])
            finish = start + service_us
            self._busy[0] = finish
            return start, finish
        ssd = self.ftl.ssd
        return self._dispatch_counts(
            arrival, cost.total_reads, cost.total_writes, cost.erases,
            ssd.read_us, ssd.write_us, ssd.erase_us)

    def _dispatch_fast(self, arrival: float, reads: int, writes: int,
                       erases: int,
                       service_us: float) -> Tuple[float, float]:
        if self.channels == 1:
            start = max(arrival, self._busy[0])
            finish = start + service_us
            self._busy[0] = finish
            return start, finish
        ssd = self.ftl.ssd
        return self._dispatch_counts(arrival, reads, writes, erases,
                                     ssd.read_us, ssd.write_us,
                                     ssd.erase_us)

    def _parallel_service_us(self, reads: int, writes: int, erases: int,
                             service_us: float) -> float:
        """Striped makespan of the request on an otherwise-idle device.

        Fair-share dispatch places whole requests, so the channel
        model's contribution is the length of the request's own op
        schedule: ops round-robined from channel 0 (the striping
        pattern :meth:`_dispatch_counts` uses), makespan = the busiest
        channel's op-latency sum.  ``channels=1`` degenerates to the
        single-server op sum exactly.
        """
        if self.channels == 1:
            return service_us
        ssd = self.ftl.ssd
        per_channel = [0.0] * self.channels
        cursor = 0
        for latency, count in ((ssd.read_us, reads),
                               (ssd.write_us, writes),
                               (ssd.erase_us, erases)):
            for _ in range(count):
                per_channel[cursor] += latency
                cursor = (cursor + 1) % self.channels
        return max(per_channel)

    def _dispatch_counts(self, arrival: float, reads: int, writes: int,
                         erases: int, read_us: float, write_us: float,
                         erase_us: float) -> Tuple[float, float]:
        """Round-robin ``reads`` + ``writes`` + ``erases`` ops.

        Counted iteration over (latency, count) pairs — no per-request
        op-list materialization — with the same dispatch order (reads,
        then writes, then erases) and the same per-op float arithmetic
        as before, so replays stay bit-for-bit identical.
        """
        busy = self._busy
        cursor = self._cursor
        channels = self.channels
        start = None
        finish = arrival
        for latency, count in ((read_us, reads), (write_us, writes),
                               (erase_us, erases)):
            for _ in range(count):
                channel = cursor
                cursor = (cursor + 1) % channels
                op_start = max(arrival, busy[channel])
                busy[channel] = op_start + latency
                if start is None or op_start < start:
                    start = op_start
                if busy[channel] > finish:
                    finish = busy[channel]
        self._cursor = cursor
        return start, finish


def make_device(ftl: BaseFTL, channels: int = 1,
                **kwargs) -> DeviceModel:
    """Build the device model for a channel count.

    ``channels=1`` returns the paper-faithful :class:`SSDevice`; larger
    counts return a :class:`ChannelSSDevice`.  ``kwargs`` (sampling,
    response samples, background GC) are shared by both models.
    """
    if channels < 1:
        raise ConfigError("channels must be >= 1")
    if channels == 1:
        return SSDevice(ftl, **kwargs)
    return ChannelSSDevice(ftl, channels=channels, **kwargs)
