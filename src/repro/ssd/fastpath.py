"""The batched execution core: the fast path over a device model.

:func:`run_fast` replays a trace with the same semantics as
:meth:`~repro.ssd.device.DeviceModel.run` but restructured around the
policy/mechanical split:

* the **policy slice** — cache hit/miss decisions, evictions, GC victim
  selection, mapping updates — still runs exact per-operation Python
  inside ``serve_request`` (with the flash array in fast mode, so the
  mechanical flash work under it is batched: see
  :meth:`~repro.flash.FlashMemory.enter_fast_mode`);
* the **mechanical slice** of the run loop — service-time arithmetic,
  GC-time accounting, queue dispatch and response statistics — is
  deferred into one post-loop fold over numpy operation-count streams.

Bit-for-bit parity with the reference path is a hard invariant, so the
fold is careful about floating point:

* per-request service times are computed *elementwise*
  (``reads * read_us + writes * write_us + erases * erase_us``), which
  performs exactly the reference's multiplications and additions per
  element — no reassociation, identical bits;
* the accumulators (``gc_time``, ``service_total``), the FIFO queue
  recurrence (``busy = max(arrival, busy) + service``) and the Welford
  response statistics are *order-dependent* folds, so they stay scalar
  loops over the arrays — ``numpy.sum``/``cummax`` would reassociate
  and drift in the last ulp;
* queue placement calls the device's own ``_dispatch`` hook, so every
  device model (single-server, multi-channel round-robin) times
  requests through the very code the reference path uses.

When background GC is enabled the queue state feeds back into the serve
loop (idle-gap detection), so the timing fold cannot be deferred; the
loop then mirrors the reference inline, still with the flash fast mode
on.  Runs with a live fault plan fall back to the reference path
entirely — fault injection is consulted per operation by design.

The fault injector's ``ops_seen`` counter is not advanced in fast mode
(nothing can fire, and ``RunResult`` never exposes it); everything else
observable — metrics, flash statistics after the fold, sampler series,
response statistics, makespan — is field-for-field identical, which the
parity suite (``tests/test_fastpath.py``) asserts through the run
cache's digest layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics import CacheSampler, FTLMetrics, ResponseStats
from ..types import Trace
from .device import DeviceModel, RunResult, SSDevice

try:  # numpy accelerates the mechanical fold but is not required
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


def _service_times(reads: List[int], writes: List[int],
                   erases: List[int], read_us: float, write_us: float,
                   erase_us: float) -> List[float]:
    """Elementwise ``r*read + w*write + e*erase`` per request.

    The numpy expression multiplies and adds in the same order as
    :meth:`~repro.types.AccessResult.service_time` does per request, so
    each element is bit-identical to the reference computation; the
    pure-Python fallback is the same expression spelled out.
    """
    if _np is not None:
        service = (_np.asarray(reads, dtype=_np.float64) * read_us
                   + _np.asarray(writes, dtype=_np.float64) * write_us
                   + _np.asarray(erases, dtype=_np.float64) * erase_us)
        return service.tolist()
    return [r * read_us + w * write_us + e * erase_us
            for r, w, e in zip(reads, writes, erases)]


def run_fast(device: DeviceModel, trace: Trace,
             warmup_requests: int = 0) -> RunResult:
    """Replay ``trace`` on ``device`` through the batched core.

    Produces a :class:`RunResult` field-for-field identical to
    ``device.run(trace, warmup_requests)``; falls back to that
    reference path when the device's fault plan can inject (fast mode
    would skip the injector the plan needs to consult).
    """
    ftl = device.ftl
    flash = ftl.flash
    if not flash.injector.plan.is_noop:
        return device.run(trace, warmup_requests=warmup_requests)
    device._validate_trace(trace)
    device._reset_state()
    measured = trace.requests
    flash.enter_fast_mode()
    try:
        if warmup_requests > 0:
            for request in trace.requests[:warmup_requests]:
                ftl.serve_request(request)
            ftl.metrics = FTLMetrics()
            flash.fold_stats()
            flash.stats.reset()
            measured = trace.requests[warmup_requests:]
        response = ResponseStats(
            keep_samples=device.keep_response_samples)
        tenants: Dict[str, ResponseStats] = {}
        sampler = (CacheSampler(interval=device.sample_interval)
                   if device.sample_interval > 0 else None)
        if device.background_gc:
            result = _run_inline(device, measured, response, tenants,
                                 sampler)
        else:
            result = _run_deferred(device, measured, response, tenants,
                                   sampler)
    finally:
        flash.exit_fast_mode()
    gc_time, service_total, background_gc_us, collections, makespan = result
    return RunResult(
        ftl_name=ftl.name,
        trace_name=trace.name,
        requests=len(measured),
        metrics=ftl.metrics,
        response=response,
        sampler=sampler,
        makespan=makespan,
        gc_time_us=gc_time,
        service_time_us=service_total,
        background_gc_time_us=background_gc_us,
        background_collections=collections,
        channels=device.channels,
        faults=flash.stats.fault_summary(),
        tenants=tenants,
        qos=device.qos,
    )


def _tenant_recorder(device: DeviceModel,
                     tenants: Dict[str, ResponseStats]):
    """A fold step attributing one timing to its tenant's statistics.

    Mirrors the reference loop's per-tenant block exactly (same
    ``ResponseStats`` construction, same ``record_timing`` arithmetic),
    so per-tenant moments stay bit-for-bit across paths.
    """
    keep = device.keep_response_samples

    def record(tenant: Optional[str], arrival: float, start: float,
               finish: float) -> None:
        if tenant is None:
            return
        stats = tenants.get(tenant)
        if stats is None:
            stats = tenants[tenant] = ResponseStats(keep_samples=keep)
        stats.record_timing(arrival, start, finish)

    return record


def _run_deferred(device: DeviceModel, measured, response: ResponseStats,
                  tenants: Dict[str, ResponseStats],
                  sampler: Optional[CacheSampler]):
    """Serve every request, then fold timing in one batched pass."""
    ftl = device.ftl
    ssd = ftl.ssd
    metrics = ftl.metrics
    arrivals: List[float] = []
    owners: List[Optional[str]] = []
    total_reads: List[int] = []
    total_writes: List[int] = []
    erases: List[int] = []
    gc_reads: List[int] = []
    gc_writes: List[int] = []
    for request in measured:
        cost = ftl.serve_request(request)
        arrivals.append(request.arrival)
        owners.append(request.tenant)
        total_reads.append(cost.data_reads + cost.translation_reads)
        total_writes.append(cost.data_writes + cost.translation_writes)
        erases.append(cost.erases)
        gc_reads.append(cost.gc_data_reads + cost.gc_translation_reads)
        gc_writes.append(cost.gc_data_writes + cost.gc_translation_writes)
        if sampler is not None and sampler.due(metrics.user_page_accesses):
            sampler.maybe_sample(metrics.user_page_accesses,
                                 ftl.cache_snapshot())
    service = _service_times(total_reads, total_writes, erases,
                             ssd.read_us, ssd.write_us, ssd.erase_us)
    gc_service = _service_times(gc_reads, gc_writes, erases,
                                ssd.read_us, ssd.write_us, ssd.erase_us)
    gc_time = 0.0
    service_total = 0.0
    makespan = 0.0
    record = response.record_timing
    attribute = _tenant_recorder(device, tenants)
    if type(device) is SSDevice and device._fair is None:
        # Single-server FIFO: the queue recurrence is one running
        # scalar, so inline it (same arithmetic as SSDevice._dispatch:
        # ``start = max(arrival, busy); busy = start + service``)
        # instead of a method call per request.  Fair-share dispatch
        # carries per-tenant lane state, so it takes the hook branch.
        busy = device._busy_until
        for arrival, owner, reads, writes, erased, svc, gc_us in zip(
                arrivals, owners, total_reads, total_writes, erases,
                service, gc_service):
            gc_time += gc_us
            service_total += svc
            if reads or writes or erased:
                start = arrival if arrival > busy else busy
                busy = finish = start + svc
            else:
                start = finish = arrival
            if finish > makespan:
                makespan = finish
            record(arrival, start, finish)
            attribute(owner, arrival, start, finish)
        device._busy_until = busy
    else:
        dispatch = device._place_fast
        for arrival, owner, reads, writes, erased, svc, gc_us in zip(
                arrivals, owners, total_reads, total_writes, erases,
                service, gc_service):
            gc_time += gc_us
            service_total += svc
            if reads or writes or erased:
                start, finish = dispatch(arrival, reads, writes, erased,
                                         svc, owner)
            else:
                start = finish = arrival
            if finish > makespan:
                makespan = finish
            record(arrival, start, finish)
            attribute(owner, arrival, start, finish)
    return gc_time, service_total, 0.0, 0, makespan


def _run_inline(device: DeviceModel, measured, response: ResponseStats,
                tenants: Dict[str, ResponseStats],
                sampler: Optional[CacheSampler]):
    """Reference-shaped loop (background GC feeds queue state back into
    the serve loop) with the flash fast mode still active."""
    ftl = device.ftl
    ssd = ftl.ssd
    metrics = ftl.metrics
    attribute = _tenant_recorder(device, tenants)
    gc_time = 0.0
    service_total = 0.0
    background_gc_us = 0.0
    background_collections = 0
    makespan = 0.0
    for request in measured:
        idle = request.arrival - device._earliest_free()
        while idle >= device.background_gc_min_idle_us:
            bg = ftl.background_collect(max_blocks=1)
            bg_service = bg.service_time(ssd.read_us, ssd.write_us,
                                         ssd.erase_us)
            if bg_service == 0.0:
                break
            background_collections += bg.erases
            device._absorb_idle(bg_service)
            gc_time += bg_service
            background_gc_us += bg_service
            idle = request.arrival - device._earliest_free()
        cost = ftl.serve_request(request)
        service = cost.service_time(ssd.read_us, ssd.write_us,
                                    ssd.erase_us)
        gc_ops = type(cost)(
            data_reads=cost.gc_data_reads,
            data_writes=cost.gc_data_writes,
            translation_reads=cost.gc_translation_reads,
            translation_writes=cost.gc_translation_writes,
            erases=cost.erases)
        gc_time += gc_ops.service_time(ssd.read_us, ssd.write_us,
                                       ssd.erase_us)
        service_total += service
        if cost.total_reads or cost.total_writes or cost.erases:
            start, finish = device._place(request.arrival, cost,
                                          service, request.tenant)
        else:
            start = finish = request.arrival
        if finish > makespan:
            makespan = finish
        response.record_timing(request.arrival, start, finish)
        attribute(request.tenant, request.arrival, start, finish)
        if sampler is not None and sampler.due(metrics.user_page_accesses):
            sampler.maybe_sample(metrics.user_page_accesses,
                                 ftl.cache_snapshot())
    return (gc_time, service_total, background_gc_us,
            background_collections, makespan)
