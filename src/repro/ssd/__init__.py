"""The device model: an FTL plus FIFO queueing and response times.

``SSDevice`` is the paper-faithful single-channel model;
``ChannelSSDevice`` (extension) overlaps operations across several flash
channels.
"""

from .device import RunResult, SSDevice, simulate
from .parallel import ChannelSSDevice

__all__ = ["SSDevice", "ChannelSSDevice", "RunResult", "simulate"]
