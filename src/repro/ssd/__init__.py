"""The device model: an FTL plus FIFO queueing and response times.

:class:`DeviceModel` is the shared timing subsystem (validation, warmup,
GC accounting, background GC, per-run queue reset); :class:`SSDevice` is
the paper-faithful single-channel queue and :class:`ChannelSSDevice`
(extension) overlaps operations across several flash channels.  Use
:func:`make_device` to pick a model by channel count.
:func:`run_fast` replays a trace through the batched execution core —
same results, several times faster.
"""

from .device import (QOS_POLICIES, DeviceModel, FairShare, RunResult,
                     SSDevice, simulate)
from .fastpath import run_fast
from .parallel import ChannelSSDevice, make_device

__all__ = ["DeviceModel", "SSDevice", "ChannelSSDevice", "RunResult",
           "simulate", "make_device", "run_fast", "FairShare",
           "QOS_POLICIES"]
