"""Endurance accounting: turn erase counts into lifetime estimates.

The paper argues (§1, §5.2-4) that extra translation writes shorten an
SSD's lifetime because every block sustains only a limited number of
erasures (~3,000 for the MLC flash of its era).  This module converts a
simulation run's erase behaviour into the standard endurance metrics:

* erases per byte of user writes,
* projected total user writes until the erase budget is exhausted
  (assuming perfect wear leveling, i.e. an upper bound),
* the wear-imbalance penalty: how much sooner the device dies if the
  observed erase skew persists (the most-worn block hits the limit
  first).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigError

#: typical MLC program/erase cycle budget of the paper's era
DEFAULT_PE_CYCLES = 3_000


@dataclass(frozen=True)
class LifetimeEstimate:
    """Endurance projection from one simulation run."""

    #: bytes of host data written during the measured window
    user_bytes_written: int
    #: block erases during the window
    erases: int
    #: total erase budget of the device (blocks * P/E cycles)
    erase_budget: int
    #: max observed per-block erase count / mean (1.0 = perfectly level)
    wear_imbalance: float

    @property
    def erases_per_gb(self) -> float:
        """Block erases consumed per GiB of user writes."""
        if not self.user_bytes_written:
            return 0.0
        return self.erases / (self.user_bytes_written / 2**30)

    @property
    def projected_user_bytes(self) -> float:
        """User bytes writable before the erase budget runs out,
        assuming perfect leveling (upper bound)."""
        if not self.erases:
            return float("inf")
        return self.user_bytes_written * (self.erase_budget / self.erases)

    @property
    def projected_user_bytes_skewed(self) -> float:
        """Projection if the observed wear imbalance persists: the
        most-worn block exhausts its cycles first."""
        if self.wear_imbalance <= 0:
            return self.projected_user_bytes
        return self.projected_user_bytes / self.wear_imbalance

    def relative_lifetime(self, other: "LifetimeEstimate") -> float:
        """This run's projected lifetime as a multiple of ``other``'s.

        > 1 means this FTL/configuration lets the device absorb more
        user writes before wearing out.
        """
        theirs = other.projected_user_bytes
        ours = self.projected_user_bytes
        if theirs == float("inf"):
            return 1.0 if ours == float("inf") else 0.0
        if theirs == 0:
            raise ConfigError("cannot compare against a zero lifetime")
        return ours / theirs


def estimate_lifetime(run, config, pe_cycles: int = DEFAULT_PE_CYCLES,
                      flash=None) -> LifetimeEstimate:
    """Build a :class:`LifetimeEstimate` from a finished run.

    ``run`` is a :class:`~repro.ssd.device.RunResult`; ``config`` the
    :class:`~repro.config.SSDConfig` it ran with.  Pass the FTL's
    ``flash`` to include the observed wear imbalance; otherwise perfect
    leveling is assumed.
    """
    if pe_cycles <= 0:
        raise ConfigError("pe_cycles must be positive")
    metrics = run.metrics
    user_bytes = metrics.user_page_writes * config.page_size
    imbalance = 1.0
    if flash is not None:
        counts = [block.erase_count for block in flash.blocks]
        mean = sum(counts) / len(counts) if counts else 0.0
        if mean > 0:
            imbalance = max(counts) / mean
    return LifetimeEstimate(
        user_bytes_written=user_bytes,
        erases=metrics.total_erases,
        erase_budget=config.physical_blocks * pe_cycles,
        wear_imbalance=imbalance,
    )
