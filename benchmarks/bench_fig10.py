"""Figure 10 — cache space-utilisation improvement of TPFTL over DFTL.

Paper shape: TPFTL keeps up to 33% more mapping entries resident in the
same byte budget (the 8B/6B compression bound), with larger gains at
larger caches and on the sequential MSR workloads (entries cluster into
few TP nodes, amortising the node headers).
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="fig10")
def test_fig10_cache_space_utilisation(benchmark, scale):
    result = regenerate(benchmark, "fig10", scale)
    for workload, series in result.data.items():
        for fraction, improvement in series.items():
            # bounded by the 8B/6B compression limit
            assert improvement <= 1 / 3 + 0.01, (workload, fraction)
    # MSR clustering beats Financial dispersion at the largest size
    fractions = sorted(next(iter(result.data.values())))
    largest = fractions[-1]
    msr_best = max(result.data["msr-ts"][largest],
                   result.data["msr-src"][largest])
    fin_best = max(result.data["financial1"][largest],
                   result.data["financial2"][largest])
    assert msr_best >= fin_best - 0.05
