"""Figure 1 — distribution of entries in DFTL's mapping cache.

Paper observations: (a) no more than ~150 entries (usually <90) of each
cached translation page are resident — under 15% of a 1024-entry page;
(b) 53%-71% of cached pages hold more than one dirty entry, with mean
dirty counts above 15 on write-dominant workloads.
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="fig1")
def test_fig1a_entries_per_cached_translation_page(benchmark, scale):
    result = regenerate(benchmark, "fig1a", scale)
    for row in result.rows:
        workload, _, mean, _, samples = row
        assert samples > 0, workload
        # the motivating observation: far below a whole page
        assert mean < 0.2 * 1024, workload


@pytest.mark.benchmark(group="fig1")
def test_fig1b_dirty_entries_cdf(benchmark, scale):
    result = regenerate(benchmark, "fig1b", scale)
    for workload, payload in result.data.items():
        # a meaningful share of cached pages co-locate dirty entries —
        # the batching opportunity TPFTL exploits
        assert payload["fraction_pages_multi_dirty"] > 0.15, workload
        assert payload["mean_dirty_per_page"] > 0.5, workload
