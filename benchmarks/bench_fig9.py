"""Figure 9 — impact of cache size on TPFTL.

Paper shape: hit ratio rises and response time / write amplification
fall monotonically-ish as the cache grows from 1/128 of the mapping
table to the whole table; MSR workloads saturate early, Financial keeps
benefiting.
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="fig9")
def test_fig9a_hit_ratio_vs_cache_size(benchmark, scale):
    result = regenerate(benchmark, "fig9a", scale)
    for workload, series in result.data.items():
        fractions = sorted(series)
        smallest, largest = series[fractions[0]], series[fractions[-1]]
        assert largest >= smallest - 1e-9, workload
        assert largest > 0.8, workload


@pytest.mark.benchmark(group="fig9")
def test_fig9b_response_time_vs_cache_size(benchmark, scale):
    result = regenerate(benchmark, "fig9b", scale)
    for workload, series in result.data.items():
        fractions = sorted(series)
        # normalised to the full-table config: smaller caches >= 1
        assert series[fractions[0]] >= series[fractions[-1]] - 0.02, \
            workload


@pytest.mark.benchmark(group="fig9")
def test_fig9c_write_amplification_vs_cache_size(benchmark, scale):
    result = regenerate(benchmark, "fig9c", scale)
    for workload, series in result.data.items():
        fractions = sorted(series)
        assert (series[fractions[0]]
                >= series[fractions[-1]] - 0.05), workload
