"""Figure 2 — spatial locality analysis of Financial1.

Paper observations: sequential runs (diagonals in the scatter) are
interspersed with random accesses, and they make DFTL's cached
translation-page count dip sharply and recover.
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="fig2")
def test_fig2a_access_scatter(benchmark, scale):
    result = regenerate(benchmark, "fig2a", scale)
    assert result.data["sequential_extensions"] > 0
    assert len(result.data["density_map"]) > 0


@pytest.mark.benchmark(group="fig2")
def test_fig2b_cached_translation_pages_over_time(benchmark, scale):
    result = regenerate(benchmark, "fig2b", scale)
    series = result.data["series"]
    assert len(series) >= 5
    counts = [count for _, count in series]
    # the count must actually move (sequential dips + recovery)
    assert max(counts) > min(counts)
