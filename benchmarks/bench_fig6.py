"""Figure 6 — the headline comparison across four workloads.

Paper shape (per sub-figure):
(a) TPFTL's dirty-replacement probability is far below DFTL/S-FTL;
(b) TPFTL's hit ratio beats DFTL everywhere; S-FTL ~ DFTL on Financial
    and ~ TPFTL on MSR;
(c,d) TPFTL cuts translation reads and (especially) writes vs DFTL;
(e) TPFTL's response time beats DFTL everywhere, most on random writes;
(f) write amplification: optimal <= TPFTL <= S-FTL <= DFTL (Financial
    WAs well above 1, MSR WAs near 1).

All six sub-figures share one memoised 4x4 run matrix, so the first
benchmark pays for all of them.
"""

import pytest

from conftest import regenerate

FIN = ("financial1", "financial2")
MSR = ("msr-ts", "msr-src")


@pytest.mark.benchmark(group="fig6")
def test_fig6a_probability_of_replacing_dirty(benchmark, scale):
    result = regenerate(benchmark, "fig6a", scale)
    for workload, row in result.data.items():
        assert row["tpftl"] < 0.10, workload          # paper: < 4%
        assert row["tpftl"] < row["dftl"], workload
        assert row["tpftl"] < row["sftl"] + 0.02, workload
        assert row["optimal"] == 0.0, workload


@pytest.mark.benchmark(group="fig6")
def test_fig6b_cache_hit_ratio(benchmark, scale):
    result = regenerate(benchmark, "fig6b", scale)
    for workload, row in result.data.items():
        assert row["tpftl"] > row["dftl"], workload
    for workload in MSR:
        row = result.data[workload]
        # MSR: TPFTL and S-FTL both far above DFTL
        assert row["tpftl"] > row["dftl"] + 0.10, workload
        assert row["sftl"] > row["dftl"] + 0.10, workload


@pytest.mark.benchmark(group="fig6")
def test_fig6c_translation_page_reads(benchmark, scale):
    result = regenerate(benchmark, "fig6c", scale)
    for workload, row in result.data.items():
        assert row["tpftl"] < row["dftl"], workload


@pytest.mark.benchmark(group="fig6")
def test_fig6d_translation_page_writes(benchmark, scale):
    result = regenerate(benchmark, "fig6d", scale)
    for workload, row in result.data.items():
        # paper: -50.5% (Financial) / -98.8% (MSR) vs DFTL, on average
        assert row["tpftl"] < 0.7 * row["dftl"], workload
    # data holds raw counts; normalise to DFTL per workload
    fin_avg = sum(result.data[w]["tpftl"] / result.data[w]["dftl"]
                  for w in FIN) / len(FIN)
    msr_avg = sum(result.data[w]["tpftl"] / result.data[w]["dftl"]
                  for w in MSR) / len(MSR)
    assert fin_avg < 0.55
    assert msr_avg < 0.25


@pytest.mark.benchmark(group="fig6")
def test_fig6e_system_response_time(benchmark, scale):
    result = regenerate(benchmark, "fig6e", scale)
    for workload, row in result.data.items():
        assert row["optimal"] <= row["tpftl"] + 1e-6, workload
        assert row["tpftl"] < row["dftl"], workload


@pytest.mark.benchmark(group="fig6")
def test_fig6f_write_amplification(benchmark, scale):
    result = regenerate(benchmark, "fig6f", scale)
    for workload, row in result.data.items():
        assert row["optimal"] <= row["tpftl"] + 0.02, workload
        assert row["tpftl"] <= row["dftl"] + 0.02, workload
    for workload in MSR:
        # paper: MSR write amplification close to 1
        assert result.data[workload]["tpftl"] < 1.6, workload
