"""Table 2 — deviations of DFTL from the optimal FTL.

Paper values: performance loss 52.6%-63.4% (avg 58.4%), erasure
increase 30.4%-56.2% (avg 42.3%) across the four workloads.
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="table2")
def test_table2_dftl_deviation_from_optimal(benchmark, scale):
    result = regenerate(benchmark, "table2", scale)
    # the translation overhead must cost DFTL real performance
    for workload, row in result.data.items():
        assert row["performance"] > 0.05, workload
        assert row["erasure"] >= 0.0, workload
