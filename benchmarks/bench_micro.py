"""Microbenchmarks of the simulator's hot paths.

Unlike the figure benches (which regenerate paper artifacts once),
these measure per-operation throughput with real pytest-benchmark
statistics: cache operations, the translate path of each FTL, and the
flash program/GC machinery.  Useful for catching performance
regressions in the simulator itself.
"""

import random

import pytest

from repro.cache import LRUDict
from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.ftl import make_ftl

SSD = SSDConfig(logical_pages=4096, page_size=1024, pages_per_block=16)


def build(name: str):
    cache = (CacheConfig(budget_bytes=SSD.gtd_bytes + 4096)
             if name in ("sftl", "cdftl")
             else CacheConfig(budget_bytes=SSD.gtd_bytes + 1024))
    return make_ftl(name, SimulationConfig(ssd=SSD, cache=cache))


@pytest.mark.benchmark(group="micro-cache")
def test_lru_dict_put_get(benchmark):
    cache = LRUDict()
    keys = list(range(512))

    def work():
        for key in keys:
            cache.put(key, key)
        for key in keys:
            cache.get(key)

    benchmark(work)


@pytest.mark.benchmark(group="micro-flash")
def test_flash_program_invalidate_erase_cycle(benchmark):
    from repro.flash import FlashMemory
    from repro.types import PageKind

    def work():
        flash = FlashMemory(SSD)
        ppns = [flash.program(PageKind.DATA, meta=i) for i in range(256)]
        for ppn in ppns:
            flash.invalidate(ppn)
        for block_id in {flash.block_id_of(p) for p in ppns}:
            flash.erase(block_id)

    benchmark(work)


@pytest.mark.parametrize("name", ["optimal", "dftl", "tpftl", "sftl"])
@pytest.mark.benchmark(group="micro-translate")
def test_ftl_page_access_throughput(benchmark, name):
    ftl = build(name)
    rng = random.Random(17)
    lpns = [rng.randrange(SSD.logical_pages) for _ in range(512)]
    writes = [rng.random() < 0.7 for _ in range(512)]

    def work():
        for lpn, is_write in zip(lpns, writes):
            if is_write:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)

    benchmark(work)


@pytest.mark.benchmark(group="micro-workload")
def test_synthetic_generation_throughput(benchmark):
    from repro.workloads import SyntheticSpec, generate
    spec = SyntheticSpec(name="bench", logical_pages=65_536,
                         num_requests=5_000, write_ratio=0.7,
                         seq_read_fraction=0.3, seq_write_fraction=0.3,
                         zipf_alpha=12.0)
    benchmark(lambda: generate(spec))
