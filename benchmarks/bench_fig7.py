"""Figure 7 — erase counts and the first half of the ablations.

Paper shape: (a) TPFTL erases ~34.5% fewer blocks than DFTL on average;
(b) batch-update ('b') collapses the dirty-replacement probability and
clean-first ('c') compounds it; (c) the prefetchers ('r','s') lift the
hit ratio while the replacement techniques barely move it.
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="fig7")
def test_fig7a_block_erase_count(benchmark, scale):
    result = regenerate(benchmark, "fig7a", scale)
    for workload, row in result.data.items():
        assert row["tpftl"] < 1.0, workload        # fewer than DFTL
        assert row["optimal"] <= row["tpftl"] + 0.02, workload


@pytest.mark.benchmark(group="fig7")
def test_fig7b_ablation_dirty_probability(benchmark, scale):
    result = regenerate(benchmark, "fig7b", scale)
    data = result.data
    # 'b' is the big lever on Prd; 'bc' at least as good
    assert data["b"] < 0.3 * data["-"]
    assert data["bc"] <= data["b"] + 0.02
    # '-' tracks DFTL (same per-entry replacement cost)
    assert abs(data["-"] - data["dftl"]) < 0.15
    # prefetching alone does not fix Prd
    assert data["rs"] > data["bc"]


@pytest.mark.benchmark(group="fig7")
def test_fig7c_ablation_hit_ratio(benchmark, scale):
    result = regenerate(benchmark, "fig7c", scale)
    data = result.data
    # prefetchers lift the hit ratio over the bare two-level variant
    assert data["r"] > data["-"]
    assert data["s"] > data["-"]
    assert data["rs"] >= max(data["r"], data["s"]) - 0.01
    # the bare two-level variant does not lose to DFTL
    assert data["-"] >= data["dftl"] - 0.02
    # replacement techniques barely move the hit ratio
    assert abs(data["bc"] - data["-"]) < 0.05
