"""Extension ablations beyond the paper's figures.

The paper fixes greedy GC and the Table 3 geometry; these benches probe
the design decisions DESIGN.md calls out:

* GC victim policy (greedy vs cost-benefit) under the Financial1-like
  workload — how much do the model's Vd/Vt terms move?
* Wear leveling — the erase-count spread with and without the leveler.
* The coarse-grained comparators (block-level / hybrid FTL) against
  page-level mapping on a random-write workload — the §2.1 motivation.
"""

import pytest

from repro.config import SimulationConfig, SSDConfig
from repro.ftl import make_ftl
from repro.gc import CostBenefitPolicy, GreedyPolicy, WearLeveler
from repro.metrics import format_table
from repro.ssd import simulate
from repro.workloads import financial1

PAGES = 16_384


def _trace(scale):
    requests = max(10_000, scale.num_requests // 3)
    return financial1(logical_pages=PAGES, num_requests=requests)


@pytest.mark.benchmark(group="ext-gc")
def test_gc_policy_ablation(benchmark, scale):
    trace = _trace(scale)
    config = SimulationConfig(ssd=SSDConfig(logical_pages=PAGES))

    def run():
        rows = {}
        for label, policy in (("greedy", GreedyPolicy()),
                              ("cost-benefit", CostBenefitPolicy())):
            ftl = make_ftl("tpftl", config, victim_policy=policy)
            result = simulate(ftl, trace,
                              warmup_requests=len(trace) // 4)
            rows[label] = result
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1,
                              warmup_rounds=0)
    table = [[label,
              r.metrics.mean_valid_in_data_victims,
              r.metrics.write_amplification,
              r.metrics.total_erases,
              r.response.mean]
             for label, r in rows.items()]
    print("\n" + format_table(
        ["GC policy", "Vd", "WA", "Erases", "Resp(us)"], table,
        precision=3, title="[ext] GC victim policy ablation (TPFTL, "
                           "Financial1-like)"))
    for r in rows.values():
        assert r.metrics.gc_data_collections > 0


@pytest.mark.benchmark(group="ext-wear")
def test_wear_leveling_ablation(benchmark, scale):
    trace = _trace(scale)
    config = SimulationConfig(ssd=SSDConfig(logical_pages=PAGES))

    def run():
        out = {}
        for label, leveler in (("off", None),
                               ("on", WearLeveler(threshold=8))):
            ftl = make_ftl("tpftl", config, wear_leveler=leveler)
            simulate(ftl, trace, warmup_requests=len(trace) // 4)
            counts = [b.erase_count for b in ftl.flash.blocks]
            out[label] = (max(counts) - min(counts),
                          sum(counts),
                          leveler.forced_collections if leveler else 0)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1,
                             warmup_rounds=0)
    table = [[label, spread, total, forced]
             for label, (spread, total, forced) in out.items()]
    print("\n" + format_table(
        ["Wear leveling", "Erase spread", "Total erases", "Forced GCs"],
        table, title="[ext] wear-leveling ablation (TPFTL, "
                     "Financial1-like)"))
    # leveling narrows the spread, at some forced-collection cost
    assert out["on"][0] <= out["off"][0]


@pytest.mark.benchmark(group="ext-mapping")
def test_mapping_granularity_comparison(benchmark, scale):
    """§2.1 in numbers: block-level mapping collapses under random
    writes, hybrids help, page-level mapping wins."""
    import random
    rng = random.Random(99)
    pages = 4_096
    lpns = [rng.randrange(pages) for _ in range(2_000)]
    config = SimulationConfig(ssd=SSDConfig(logical_pages=pages))

    def run():
        out = {}
        for name in ("block", "hybrid", "optimal"):
            ftl = make_ftl(name, config)
            for lpn in lpns:
                ftl.write_page(lpn)
            out[name] = (ftl.flash.stats.total_writes,
                         ftl.flash.stats.total_erases)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1,
                             warmup_rounds=0)
    table = [[name, writes, erases]
             for name, (writes, erases) in out.items()]
    print("\n" + format_table(
        ["Mapping", "Flash writes", "Erases"], table,
        title="[ext] mapping granularity under random writes "
              "(2000 page updates)"))
    assert out["optimal"][0] < out["hybrid"][0] < out["block"][0]


@pytest.mark.benchmark(group="ext-lifetime")
def test_lifetime_projection(benchmark, scale):
    """Fig 7(a) continued: erase savings as projected device lifetime."""
    from repro.lifetime import estimate_lifetime
    trace = _trace(scale)
    config = SimulationConfig(ssd=SSDConfig(logical_pages=PAGES))

    def run():
        estimates = {}
        for name in ("dftl", "tpftl", "optimal"):
            ftl = make_ftl(name, config)
            result = simulate(ftl, trace,
                              warmup_requests=len(trace) // 4)
            estimates[name] = estimate_lifetime(
                result, config.ssd, flash=ftl.flash)
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1,
                                   warmup_rounds=0)
    base = estimates["dftl"]
    table = [[name, e.erases_per_gb,
              e.relative_lifetime(base), e.wear_imbalance]
             for name, e in estimates.items()]
    print("\n" + format_table(
        ["FTL", "Erases/GiB", "Lifetime vs DFTL", "Wear imbalance"],
        table, precision=3,
        title="[ext] projected lifetime (Financial1-like)"))
    assert estimates["tpftl"].relative_lifetime(base) > 1.0


@pytest.mark.benchmark(group="ext-channels")
def test_channel_scaling(benchmark, scale):
    """Multi-channel device extension: response vs channel count."""
    from repro.ssd.parallel import ChannelSSDevice
    trace = _trace(scale)
    config = SimulationConfig(ssd=SSDConfig(logical_pages=PAGES))

    def run():
        out = {}
        for channels in (1, 2, 4, 8):
            ftl = make_ftl("tpftl", config)
            device = ChannelSSDevice(ftl, channels=channels)
            result = device.run(trace,
                                warmup_requests=len(trace) // 4)
            out[channels] = result.response.mean
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1,
                             warmup_rounds=0)
    table = [[channels, mean, out[1] / mean if mean else 0.0]
             for channels, mean in out.items()]
    print("\n" + format_table(
        ["Channels", "Mean response (us)", "Speedup vs 1"],
        table, precision=2,
        title="[ext] channel-parallelism scaling (TPFTL, "
              "Financial1-like)"))
    assert out[8] <= out[1]


@pytest.mark.benchmark(group="ext-threshold")
def test_selective_threshold_sweep(benchmark, scale):
    """§4.3 sensitivity: the paper's empirically-chosen threshold 3."""
    from conftest import regenerate
    result = regenerate(benchmark, "threshold-sweep", scale)
    cells = result.data["cells"]
    # sequential workload: prefetching fires at every threshold tested
    assert cells[("msr-ts", 3)]["prefetched"] > 0
    # prefetch accuracy on the sequential workload is decent at 3
    assert cells[("msr-ts", 3)]["accuracy"] > 0.5


@pytest.mark.benchmark(group="ext-background-gc")
def test_background_gc_ablation(benchmark, scale):
    """Idle-time GC extension: foreground stalls with and without."""
    from repro.ssd import SSDevice
    trace = _trace(scale)
    config = SimulationConfig(ssd=SSDConfig(logical_pages=PAGES))

    def run():
        out = {}
        for label, enabled in (("off", False), ("on", True)):
            ftl = make_ftl("tpftl", config)
            device = SSDevice(ftl, background_gc=enabled)
            result = device.run(trace,
                                warmup_requests=len(trace) // 4)
            out[label] = result
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1,
                             warmup_rounds=0)
    table = [[label, r.response.mean, r.gc_time_fraction,
              r.background_collections]
             for label, r in out.items()]
    print("\n" + format_table(
        ["Background GC", "Resp(us)", "GC time share", "Idle GCs"],
        table, precision=3,
        title="[ext] idle-time GC (TPFTL, Financial1-like)"))
    assert out["on"].response.mean <= out["off"].response.mean * 1.05


@pytest.mark.benchmark(group="ext-nand")
def test_nand_generation_sensitivity(benchmark, scale):
    """§3.3 quantified: TPFTL's advantage grows as writes get slower.

    The paper motivates TPFTL with MLC's expensive writes; sweeping
    SLC -> MLC -> TLC latencies shows the response-time gap between
    DFTL and TPFTL widening with the program time.
    """
    trace = _trace(scale)

    def run():
        out = {}
        for label, ssd in (("slc", SSDConfig.slc(logical_pages=PAGES)),
                           ("mlc", SSDConfig.mlc(logical_pages=PAGES)),
                           ("tlc", SSDConfig.tlc(logical_pages=PAGES))):
            config = SimulationConfig(ssd=ssd)
            results = {}
            for name in ("dftl", "tpftl"):
                ftl = make_ftl(name, config)
                results[name] = simulate(
                    ftl, trace, warmup_requests=len(trace) // 4)
            out[label] = results
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1,
                             warmup_rounds=0)
    table = []
    gaps = {}
    for label, results in out.items():
        dftl = results["dftl"].response.mean
        tpftl = results["tpftl"].response.mean
        gaps[label] = 1.0 - tpftl / dftl if dftl else 0.0
        table.append([label, dftl, tpftl, f"{gaps[label] * 100:.1f}%"])
    print("\n" + format_table(
        ["NAND", "DFTL resp(us)", "TPFTL resp(us)", "TPFTL gain"],
        table, precision=1,
        title="[ext] NAND-generation sensitivity (Financial1-like)"))
    # slower programs -> extra translation writes cost more -> bigger gain
    assert gaps["tlc"] >= gaps["slc"] - 0.03
