"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper via the
experiment runners, prints it, and saves the rendered text under
``results/`` so a full ``pytest benchmarks/ --benchmark-only`` run
leaves the complete paper-vs-measured record on disk (EXPERIMENTS.md is
written from those files).

Benchmarks run each experiment exactly once (``pedantic`` with one
round): the interesting output is the experiment's table, not its
wall-clock variance, and the headline runs are memoised across
sub-figures so the whole of Fig 6 costs one matrix.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentScale, run_experiment
from repro.experiments.common import ExperimentResult

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: scale used by the whole benchmark suite (override via --bench-scale)
_SCALES = {
    "small": ExperimentScale.small(),
    "full": ExperimentScale.full(),
}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale", choices=sorted(_SCALES), default="small",
        help="experiment scale for the benchmark suite")


@pytest.fixture(scope="session")
def scale(request) -> ExperimentScale:
    return _SCALES[request.config.getoption("--bench-scale")]


def regenerate(benchmark, experiment_id: str,
               scale: ExperimentScale) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist it."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, scale),
        rounds=1, iterations=1, warmup_rounds=0)
    text = result.render()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}_{scale.name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return result
