"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper via the
experiment runners, prints it, and saves the rendered text under
``results/`` so a full ``pytest benchmarks/ --benchmark-only`` run
leaves the complete paper-vs-measured record on disk (EXPERIMENTS.md is
written from those files).

Benchmarks run each experiment exactly once (``pedantic`` with one
round): the interesting output is the experiment's table, not its
wall-clock variance, and the headline runs are shared across
sub-figures through the persistent run cache so the whole of Fig 6
costs one matrix — and a warm re-run costs no simulations at all.
``--bench-jobs N`` fans independent cells out over N processes;
``--bench-fresh`` wipes the cache first for a cold-start measurement.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentScale, run_experiment
from repro.experiments.common import ExperimentResult

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: scale used by the whole benchmark suite (override via --bench-scale)
_SCALES = {
    "small": ExperimentScale.small(),
    "full": ExperimentScale.full(),
}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale", choices=sorted(_SCALES), default="small",
        help="experiment scale for the benchmark suite")
    parser.addoption(
        "--bench-jobs", type=int, default=None,
        help="worker processes for simulation cells "
             "(default: $REPRO_JOBS or 1)")
    parser.addoption(
        "--bench-fresh", action="store_true",
        help="wipe the persistent run cache before benchmarking")


@pytest.fixture(scope="session")
def scale(request) -> ExperimentScale:
    return _SCALES[request.config.getoption("--bench-scale")]


@pytest.fixture(scope="session", autouse=True)
def _experiment_runner(request):
    """Configure the shared runner and leave the bench trajectory on disk.

    Cells fan out over ``--bench-jobs`` processes and persist in the run
    cache, so a second benchmark invocation regenerates every table
    without re-simulating; ``results/BENCH_runner.json`` records
    per-cell wall-clock, cache hit counts and the speedup vs serial.
    """
    from repro.experiments.runner import configure_runner, reset_runner

    runner = configure_runner(jobs=request.config.getoption("--bench-jobs"))
    if request.config.getoption("--bench-fresh") and runner.cache is not None:
        runner.cache.wipe()
    yield runner
    if runner.outcomes:
        RESULTS_DIR.mkdir(exist_ok=True)
        runner.write_bench(RESULTS_DIR / "BENCH_runner.json")
    reset_runner()


def regenerate(benchmark, experiment_id: str,
               scale: ExperimentScale) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist it."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, scale),
        rounds=1, iterations=1, warmup_rounds=0)
    text = result.render()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}_{scale.name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return result
