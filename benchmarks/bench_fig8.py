"""Figure 8 — ablations on response time/WA and the Prd cache sweep.

Paper shape: (a) 'bc' cuts response time ~24.9% vs '-' and 'rs' ~10.4%;
on Financial1 'bc' can even beat the complete 'rsbc' (Prd beats hit
ratio under random writes); (b) the same ordering for write
amplification; (c) TPFTL's Prd falls with cache size and reaches 0 with
the table fully cached.
"""

import pytest

from conftest import regenerate


@pytest.mark.benchmark(group="fig8")
def test_fig8a_ablation_response_time(benchmark, scale):
    result = regenerate(benchmark, "fig8a", scale)
    data = result.data
    assert data["bc"] < data["-"]          # replacement techniques help
    assert data["rsbc"] < data["dftl"]     # complete TPFTL beats DFTL


@pytest.mark.benchmark(group="fig8")
def test_fig8b_ablation_write_amplification(benchmark, scale):
    result = regenerate(benchmark, "fig8b", scale)
    data = result.data
    assert data["bc"] < data["-"]
    assert data["rsbc"] < data["-"]


@pytest.mark.benchmark(group="fig8")
def test_fig8c_dirty_probability_vs_cache_size(benchmark, scale):
    result = regenerate(benchmark, "fig8c", scale)
    for workload, series in result.data.items():
        fractions = sorted(series)
        # fully cached table -> no replacements -> Prd 0
        assert series[fractions[-1]] == pytest.approx(0.0), workload
        # smaller caches never beat the full table
        assert series[fractions[0]] >= series[fractions[-1]], workload
