"""Unit tests for the LRU list and keyed LRU map primitives."""

import pytest

from repro.cache import LRUDict, LRUList, LRUNode


class Node(LRUNode):
    __slots__ = ("tag",)

    def __init__(self, tag):
        super().__init__()
        self.tag = tag


def tags(lst):
    return [node.tag for node in lst]


class TestLRUList:
    def test_empty(self):
        lst = LRUList()
        assert len(lst) == 0
        assert not lst
        assert lst.mru is None
        assert lst.lru is None
        assert lst.pop_lru() is None

    def test_push_mru_order(self):
        lst = LRUList()
        for tag in "abc":
            lst.push_mru(Node(tag))
        assert tags(lst) == ["c", "b", "a"]
        assert lst.mru.tag == "c"
        assert lst.lru.tag == "a"

    def test_push_lru(self):
        lst = LRUList()
        lst.push_mru(Node("a"))
        lst.push_lru(Node("z"))
        assert tags(lst) == ["a", "z"]

    def test_move_to_mru(self):
        lst = LRUList()
        nodes = {tag: Node(tag) for tag in "abc"}
        for tag in "abc":
            lst.push_mru(nodes[tag])
        lst.move_to_mru(nodes["a"])
        assert tags(lst) == ["a", "c", "b"]

    def test_remove_middle(self):
        lst = LRUList()
        nodes = [Node(i) for i in range(3)]
        for node in nodes:
            lst.push_mru(node)
        lst.remove(nodes[1])
        assert tags(lst) == [2, 0]
        assert not nodes[1].linked

    def test_pop_lru_returns_oldest(self):
        lst = LRUList()
        for tag in "abc":
            lst.push_mru(Node(tag))
        assert lst.pop_lru().tag == "a"
        assert len(lst) == 2

    def test_insert_before(self):
        lst = LRUList()
        a, c = Node("a"), Node("c")
        lst.push_mru(a)
        lst.push_lru(c)
        lst.insert_before(c, Node("b"))
        assert tags(lst) == ["a", "b", "c"]

    def test_neighbours(self):
        lst = LRUList()
        a, b = Node("a"), Node("b")
        lst.push_mru(a)
        lst.push_lru(b)
        assert lst.prev_of(a) is None
        assert lst.next_of(a) is b
        assert lst.prev_of(b) is a
        assert lst.next_of(b) is None

    def test_iter_lru_reversed(self):
        lst = LRUList()
        for tag in "abc":
            lst.push_mru(Node(tag))
        assert [n.tag for n in lst.iter_lru()] == ["a", "b", "c"]


class TestLRUDict:
    def test_put_get(self):
        cache = LRUDict()
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert "k" in cache
        assert len(cache) == 1

    def test_get_missing_returns_none(self):
        assert LRUDict().get("nope") is None

    def test_get_touch_promotes(self):
        cache = LRUDict()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.lru_key() == "b"

    def test_get_without_touch_keeps_order(self):
        cache = LRUDict()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a", touch=False)
        assert cache.lru_key() == "a"

    def test_put_existing_updates_and_promotes(self):
        cache = LRUDict()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a", touch=False) == 10
        assert cache.lru_key() == "b"

    def test_pop_lru_order(self):
        cache = LRUDict()
        for i in range(3):
            cache.put(i, i * 10)
        assert cache.pop_lru() == (0, 0)
        assert cache.pop_lru() == (1, 10)
        assert len(cache) == 1

    def test_pop_lru_empty(self):
        assert LRUDict().pop_lru() is None

    def test_remove(self):
        cache = LRUDict()
        cache.put("a", 1)
        assert cache.remove("a") == 1
        assert "a" not in cache
        with pytest.raises(KeyError):
            cache.remove("a")

    def test_key_iteration_orders(self):
        cache = LRUDict()
        for i in range(4):
            cache.put(i, i)
        cache.get(0)  # promote
        assert list(cache.keys_mru_to_lru()) == [0, 3, 2, 1]
        assert list(cache.keys_lru_to_mru()) == [1, 2, 3, 0]

    def test_touch(self):
        cache = LRUDict()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.touch("a")
        assert list(cache.keys_mru_to_lru()) == ["a", "b"]
