"""The experiments CLI: argument parsing and scale resolution."""

import pytest

from repro.experiments.cli import build_parser, main, resolve_scale
from repro.experiments.runner import reset_runner


@pytest.fixture(autouse=True)
def _forget_cli_runner():
    """main() installs a global default runner; don't leak it."""
    yield
    reset_runner()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig6a"])
        assert args.experiments == ["fig6a"]
        assert args.scale == "small"
        assert args.requests is None

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["fig6a", "table2"])
        assert args.experiments == ["fig6a", "table2"]

    def test_scale_choices(self):
        args = build_parser().parse_args(["all", "--scale", "full"])
        assert args.scale == "full"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["all", "--scale", "huge"])

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig6a", "--requests", "100", "--warmup", "10"])
        assert args.requests == 100
        assert args.warmup == 10

    def test_runner_flags(self):
        args = build_parser().parse_args(
            ["fig6a", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/rc", "--bench", "BENCH_runner.json"])
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/rc"
        assert args.bench == "BENCH_runner.json"

    def test_runner_flag_defaults(self):
        args = build_parser().parse_args(["fig6a"])
        assert args.jobs is None
        assert args.no_cache is False
        assert args.cache_dir is None
        assert args.bench is None

    def test_supervision_flags(self):
        args = build_parser().parse_args(
            ["fig6a", "--timeout", "30.5", "--retries", "5",
             "--resume", "--fail-fast"])
        assert args.timeout == 30.5
        assert args.retries == 5
        assert args.resume is True
        assert args.fail_fast is True

    def test_supervision_flag_defaults(self):
        args = build_parser().parse_args(["fig6a"])
        assert args.timeout is None
        assert args.retries is None
        assert args.resume is False
        assert args.fail_fast is False

    def test_retries_rejects_non_positive_budget(self, capsys):
        # a friendly argparse error (exit 2), not a raw ExperimentError
        # traceback from RetryPolicy deep inside configure_runner
        for bad in ("0", "-1", "two"):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(["fig6a", "--retries", bad])
            assert excinfo.value.code == 2
        assert "--retries" in capsys.readouterr().err


class TestScaleResolution:
    def test_small_default(self):
        args = build_parser().parse_args(["fig6a"])
        scale = resolve_scale(args)
        assert scale.name == "small"

    def test_full(self):
        args = build_parser().parse_args(["fig6a", "--scale", "full"])
        assert resolve_scale(args).name == "full"

    def test_request_override(self):
        args = build_parser().parse_args(["fig6a", "--requests", "123"])
        scale = resolve_scale(args)
        assert scale.num_requests == 123

    def test_warmup_override(self):
        args = build_parser().parse_args(["fig6a", "--warmup", "7"])
        assert resolve_scale(args).warmup_requests == 7

    def test_channels_override(self):
        args = build_parser().parse_args(["fig6e", "--channels", "4"])
        assert resolve_scale(args).channels == 4

    def test_channels_default_is_paper_model(self):
        args = build_parser().parse_args(["fig6e"])
        assert resolve_scale(args).channels == 1


class TestMain:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["not-a-figure"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        code = main(["fig2a", "--requests", "500", "--warmup", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[fig2a]" in out

    def test_parallel_cached_run_emits_bench(self, tmp_path, capsys):
        import json
        argv = ["fig2b", "--requests", "400", "--warmup", "100",
                "--jobs", "2", "--cache-dir", str(tmp_path / "rc"),
                "--bench", str(tmp_path / "BENCH_runner.json")]
        assert main(argv) == 0
        cold = json.loads((tmp_path / "BENCH_runner.json").read_text())
        assert cold["totals"]["cache_misses"] >= 1
        assert main(argv) == 0  # warm: same matrix, zero simulations
        warm = json.loads((tmp_path / "BENCH_runner.json").read_text())
        assert warm["totals"]["cache_misses"] == 0
        assert warm["totals"]["cache_hits"] == cold["totals"]["cells"]
        assert "bench:" in capsys.readouterr().err

    def test_supervision_flags_reach_the_runner(self, tmp_path, capsys):
        from repro.experiments.runner import get_runner
        argv = ["fig2a", "--requests", "500", "--warmup", "100",
                "--cache-dir", str(tmp_path / "rc"),
                "--timeout", "120", "--retries", "5"]
        assert main(argv) == 0
        runner = get_runner()
        assert runner.timeout_s == 120
        assert runner.retry.max_attempts == 5

    def test_resume_reports_prior_session(self, tmp_path, capsys):
        argv = ["fig2a", "--requests", "500", "--warmup", "100",
                "--cache-dir", str(tmp_path / "rc")]
        assert main(argv) == 0
        assert main(argv + ["--resume"]) == 0
        assert "resuming:" in capsys.readouterr().err

    def test_wipe_cache(self, tmp_path, capsys):
        argv = ["fig2b", "--requests", "400", "--warmup", "100",
                "--cache-dir", str(tmp_path / "rc")]
        assert main(argv) == 0
        assert len(list((tmp_path / "rc").glob("*.json"))) >= 1
        assert main(argv + ["--wipe-cache"]) == 0
        err = capsys.readouterr().err
        assert "wiped" in err


class TestDensityMap:
    def test_density_map_geometry(self):
        from repro.experiments.fig2 import MAP_COLS, MAP_ROWS, \
            _density_map
        from repro.workloads import financial1
        trace = financial1(logical_pages=4096, num_requests=500)
        lines = _density_map(trace)
        assert len(lines) == MAP_ROWS
        assert all(len(line) == MAP_COLS for line in lines)

    def test_density_map_empty_trace(self):
        from repro.experiments.fig2 import _density_map
        from repro.types import Trace
        assert _density_map(Trace(logical_pages=16)) == []
