"""The experiment runners produce well-formed, paper-shaped results.

Runs at a micro scale (a few thousand requests) so the whole module
stays fast; the shape assertions here are deliberately loose — the
benchmarks run the real scales and EXPERIMENTS.md records the numbers.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (EXPERIMENTS, ExperimentScale,
                               run_experiment)
from repro.experiments.common import (ABLATION_CONFIGS, WORKLOADS,
                                      build_workload, clear_matrix_cache,
                                      run_ablation_cell, run_one,
                                      simulation_config, tpftl_variant)

MICRO = ExperimentScale(
    name="micro", num_requests=2500, warmup_requests=500,
    financial_pages=4096, msr_pages=8192,
    cache_fractions=(1 / 32, 1.0), sample_interval=500)


@pytest.fixture(scope="module", autouse=True)
def _clean_cache():
    clear_matrix_cache()
    yield
    clear_matrix_cache()


class TestCommon:
    def test_build_workload_sizes(self):
        fin = build_workload("financial1", MICRO)
        msr = build_workload("msr-ts", MICRO)
        assert fin.logical_pages == 4096
        assert msr.logical_pages == 8192

    def test_simulation_config_cache_rule(self):
        trace = build_workload("financial1", MICRO)
        config = simulation_config(trace)
        assert (config.resolved_cache().budget_bytes
                == config.ssd.paper_cache_bytes())

    def test_simulation_config_fraction(self):
        trace = build_workload("financial1", MICRO)
        config = simulation_config(trace, cache_fraction=0.5)
        assert (config.resolved_cache().budget_bytes
                == config.ssd.full_table_bytes // 2)

    def test_run_one_produces_metrics(self):
        result = run_one("financial1", "dftl", MICRO)
        assert result.metrics.user_page_accesses > 0
        assert result.response.count > 0

    def test_ablation_cell_variants(self):
        assert tpftl_variant("bc").monogram == "bc"
        result = run_ablation_cell("dftl", MICRO)
        assert result.ftl_name == "dftl"
        with pytest.raises(ExperimentError):
            run_ablation_cell("zz", MICRO)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table2", "fig1a", "fig1b", "fig2a", "fig2b",
                    "fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
                    "fig6f", "fig7a", "fig7b", "fig7c", "fig8a",
                    "fig8b", "fig8c", "fig9a", "fig9b", "fig9c",
                    "fig10"}
        assert expected <= set(EXPERIMENTS)
        assert "modelcheck" in EXPERIMENTS  # extension
        assert "faults" in EXPERIMENTS  # extension

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", MICRO)


class TestHeadlineShapes:
    """The paper's directional claims at micro scale."""

    def test_fig6a_tpftl_prd_lowest_demand_based(self):
        result = run_experiment("fig6a", MICRO)
        for workload in WORKLOADS:
            row = result.data[workload]
            assert row["tpftl"] < row["dftl"]
            assert row["tpftl"] <= row["sftl"] + 0.02
            assert row["optimal"] == 0.0

    def test_fig6b_tpftl_beats_dftl(self):
        result = run_experiment("fig6b", MICRO)
        for workload in WORKLOADS:
            row = result.data[workload]
            assert row["tpftl"] > row["dftl"] - 0.02
            assert row["optimal"] == 1.0

    def test_fig6d_tpftl_reduces_translation_writes(self):
        result = run_experiment("fig6d", MICRO)
        for workload in WORKLOADS:
            row = result.data[workload]
            assert row["tpftl"] < row["dftl"]

    def test_fig6e_tpftl_not_slower_than_dftl(self):
        result = run_experiment("fig6e", MICRO)
        for workload in WORKLOADS:
            row = result.data[workload]
            assert row["tpftl"] <= row["dftl"] * 1.02

    def test_fig6f_wa_ordering(self):
        result = run_experiment("fig6f", MICRO)
        for workload in WORKLOADS:
            row = result.data[workload]
            assert row["optimal"] <= row["tpftl"] + 0.05
            assert row["tpftl"] <= row["dftl"] + 0.05

    def test_table2_deviations_positive(self):
        result = run_experiment("table2", MICRO)
        for workload in WORKLOADS:
            assert result.data[workload]["performance"] > 0.0
            # erasure deviation can be ~0 at micro scale on read-heavy
            # workloads (barely any GC in 2.5k requests)
            assert result.data[workload]["erasure"] >= 0.0

    def test_fig7a_tpftl_erases_fewer_blocks(self):
        result = run_experiment("fig7a", MICRO)
        for workload in WORKLOADS:
            assert result.data[workload]["tpftl"] < 1.0  # vs DFTL


class TestObservationFigures:
    def test_fig1a_entries_well_below_page_capacity(self):
        result = run_experiment("fig1a", MICRO)
        # paper observation: a small fraction of each page is cached
        for row in result.rows:
            mean = row[2]
            assert mean < 1024

    def test_fig1b_multi_dirty_pages_exist(self):
        result = run_experiment("fig1b", MICRO)
        for workload, payload in result.data.items():
            assert payload["fraction_pages_multi_dirty"] > 0.0
            assert payload["cdf"]  # non-empty CDF

    def test_fig2a_density_map_rendered(self):
        result = run_experiment("fig2a", MICRO)
        assert result.data["density_map"]
        assert result.data["requests"] == MICRO.num_requests

    def test_fig2b_series_collected(self):
        result = run_experiment("fig2b", MICRO)
        assert len(result.data["series"]) > 0


class TestAblationAndSweeps:
    def test_fig7b_batch_update_cuts_prd(self):
        result = run_experiment("fig7b", MICRO)
        data = result.data
        assert set(data) == set(ABLATION_CONFIGS)
        assert data["b"] < data["-"]
        assert data["rsbc"] < data["dftl"]

    def test_fig7c_prefetching_helps_hit_ratio(self):
        result = run_experiment("fig7c", MICRO)
        data = result.data
        assert data["rs"] >= data["-"] - 0.02

    def test_fig8a_complete_tpftl_beats_dftl(self):
        result = run_experiment("fig8a", MICRO)
        assert result.data["rsbc"] < result.data["dftl"]

    def test_fig8c_prd_vanishes_with_full_cache(self):
        result = run_experiment("fig8c", MICRO)
        for workload in WORKLOADS:
            assert result.data[workload][1.0] == pytest.approx(0.0)

    def test_fig9a_hit_ratio_improves_with_cache(self):
        result = run_experiment("fig9a", MICRO)
        for workload in WORKLOADS:
            series = result.data[workload]
            # at micro scale compulsory (cold) misses keep the full-table
            # cache below the paper's asymptotic 100%
            assert series[1.0] >= 0.7
            assert series[1.0] >= series[1 / 32] - 1e-9

    def test_fig9c_wa_shrinks_with_cache(self):
        result = run_experiment("fig9c", MICRO)
        for workload in WORKLOADS:
            series = result.data[workload]
            assert series[1.0] <= series[1 / 32] + 0.05

    def test_fig10_improvement_bounded(self):
        result = run_experiment("fig10", MICRO)
        for workload in WORKLOADS:
            for improvement in result.data[workload].values():
                assert improvement <= 0.34  # the 8B/6B bound


class TestRendering:
    def test_render_includes_title_and_rows(self):
        result = run_experiment("table2", MICRO)
        text = result.render()
        assert "[table2]" in text
        assert "financial1" in text
        assert "paper:" in text


class TestExtensionExperiments:
    def test_modelcheck_runs(self):
        result = run_experiment("modelcheck", MICRO)
        assert result.rows
        for row in result.rows:
            modeled_wa, measured_wa = row[2], row[3]
            assert modeled_wa >= 1.0
            assert measured_wa >= 1.0

    def test_threshold_sweep_runs(self):
        result = run_experiment("threshold-sweep", MICRO)
        cells = result.data["cells"]
        assert ("msr-ts", 3) in cells
        for payload in cells.values():
            assert 0.0 <= payload["hit_ratio"] <= 1.0
            assert 0.0 <= payload["accuracy"] <= 1.0

    def test_channels_sweep_runs(self):
        result = run_experiment("channels", MICRO)
        assert len(result.rows) == 8  # 2 FTLs x 4 channel counts
        trajectory = result.data["trajectory"]
        assert [t["channels"] for t in trajectory] == [1, 2, 4, 8] * 2
        for record in trajectory:
            assert record["mean_response_us"] > 0.0
            assert 0.0 <= record["gc_time_fraction"] < 1.0
            assert (record["mean_queue_delay_us"]
                    + record["mean_service_us"]
                    == pytest.approx(record["mean_response_us"]))
        # more channels never slow the mean response down
        for ftl_rows in (trajectory[:4], trajectory[4:]):
            means = [t["mean_response_us"] for t in ftl_rows]
            assert means == sorted(means, reverse=True) or \
                all(m <= means[0] for m in means)
        # the 1-channel cell is the paper's model: same digest space as
        # the Fig 6 matrix, so speedups anchor at exactly 1.0
        assert trajectory[0]["speedup_vs_1ch"] == 1.0

    def test_channels_sweep_is_bench_shaped(self):
        result = run_experiment("channels", MICRO)
        assert result.data["bench"] == "channels"
        assert result.data["channel_sweep"] == [1, 2, 4, 8]
        assert result.data["workload"] == "financial1"

    def test_faults_runs(self):
        from repro.ftl import FTL_NAMES
        result = run_experiment("faults", MICRO)
        assert len(result.rows) == len(FTL_NAMES)
        for row in result.rows:
            assert row[-1] in ("healthy", "worn out")
        power = result.data["powerloss"]
        assert set(power) == set(FTL_NAMES)
        for payload in power.values():
            # every cut point in the sweep fired and was verified
            assert payload["cut_points"] >= 50
            assert payload["cuts_fired"] == payload["cut_points"]
