"""The device model: FIFO queueing, response times, warmup."""

import pytest

from repro.errors import WorkloadError
from repro.ftl import OptimalFTL
from repro.ssd import simulate
from repro.types import Op, Request, Trace

from conftest import make_trace


class TestQueueing:
    def test_idle_device_response_equals_service(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        trace = make_trace([(Op.READ, 0, 1)], spacing_us=10_000)
        result = simulate(ftl, trace)
        # one page read: 25us service, no queueing
        assert result.response.mean == pytest.approx(25.0)
        assert result.response.mean_queue_delay == 0.0

    def test_back_to_back_requests_queue(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        trace = Trace(requests=[
            Request(arrival=0.0, op=Op.READ, lpn=0, npages=1),
            Request(arrival=0.0, op=Op.READ, lpn=1, npages=1),
            Request(arrival=0.0, op=Op.READ, lpn=2, npages=1),
        ], logical_pages=512)
        result = simulate(ftl, trace)
        # services serialize: responses 25, 50, 75 -> mean 50
        assert result.response.mean == pytest.approx(50.0)
        assert result.response.max == pytest.approx(75.0)
        assert result.makespan == pytest.approx(75.0)

    def test_write_service_time(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        trace = make_trace([(Op.WRITE, 0, 1)], spacing_us=10_000)
        result = simulate(ftl, trace)
        assert result.response.mean == pytest.approx(200.0)

    def test_multi_page_request_sums_service(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        trace = make_trace([(Op.READ, 0, 4)])
        result = simulate(ftl, trace)
        assert result.response.mean == pytest.approx(100.0)


class TestValidation:
    def test_trace_bigger_than_device_rejected(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        trace = make_trace([(Op.READ, 511, 2)])  # touches LPN 512
        with pytest.raises(WorkloadError):
            simulate(ftl, trace)


class TestWarmup:
    def test_warmup_excluded_from_metrics(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        ops = [(Op.WRITE, i % 64, 1) for i in range(20)]
        result = simulate(ftl, make_trace(ops), warmup_requests=15)
        assert result.requests == 5
        assert result.metrics.user_page_writes == 5
        assert result.response.count == 5

    def test_warmup_state_persists(self, tiny_config):
        """Warmup must age the device even though stats reset."""
        ftl = OptimalFTL(tiny_config)
        ops = [(Op.WRITE, i % 16, 1) for i in range(600)]
        result = simulate(ftl, make_trace(ops), warmup_requests=500)
        # GC steady state reached during warmup: erase counts nonzero
        assert ftl.flash.total_erase_count() > 0
        # measured stats cover only the tail
        assert result.metrics.user_page_writes == 100


class TestRunResult:
    def test_summary_fields(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        result = simulate(ftl, make_trace([(Op.READ, 0, 1)],
                                          name="wl"))
        summary = result.summary()
        assert summary["ftl"] == "optimal"
        assert summary["trace"] == "wl"
        assert summary["requests"] == 1
        assert "hit_ratio" in summary
        assert "write_amplification" in summary

    def test_sampler_attached_when_interval_set(self, tiny_config):
        from repro.ftl import DFTL
        ftl = DFTL(tiny_config)
        ops = [(Op.READ, i, 1) for i in range(30)]
        result = simulate(ftl, make_trace(ops), sample_interval=10)
        assert result.sampler is not None
        assert len(result.sampler.samples) == 3

    def test_response_samples_kept_on_request(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        ops = [(Op.READ, i, 1) for i in range(10)]
        result = simulate(ftl, make_trace(ops),
                          keep_response_samples=True)
        assert len(result.response.samples) == 10
        assert result.response.percentile(50) is not None
