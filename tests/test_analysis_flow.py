"""The interprocedural flow pass: call graph, state inventory, TP1xx.

The two acceptance-critical mutation tests live here: the PR-4
channel-queue leak fixture must be flagged by TP101 while the fixed
``src/repro/ssd/parallel.py`` stays clean, and the PR-2 hybrid
``_invalidate_remaining`` bypass fixture must be flagged by TP102
through one level of helper indirection.
"""

import pathlib

from repro.analysis.flow import (DOMAIN_RULES, FLOW_RULES,
                                 PROTOCOL_RULES, FlowEngine, Project,
                                 analyze_paths, analyze_source,
                                 fixed_point)

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FLOW_FIXTURES = ROOT / "tests" / "fixtures" / "flow"


def _codes(source):
    return {finding.rule for finding in analyze_source(source)}


# ----------------------------------------------------------------------
# Acceptance gates
# ----------------------------------------------------------------------
def test_src_tree_is_flow_clean():
    """Every true TP1xx finding in src/ is fixed, not grandfathered."""
    assert analyze_paths([str(SRC)]) == []


def test_each_fixture_triggers_exactly_its_rule():
    for code in (sorted(FLOW_RULES) + sorted(DOMAIN_RULES)
                 + sorted(PROTOCOL_RULES)):
        fixture = FLOW_FIXTURES / f"flow_{code.lower()}.py"
        findings = analyze_paths([str(fixture)])
        assert {f.rule for f in findings} == {code}, (code, findings)
        assert len(findings) == 1, (code, findings)


# ----------------------------------------------------------------------
# TP101: the PR-4 bug class (mutation test)
# ----------------------------------------------------------------------
def test_tp101_flags_the_pr4_queue_leak():
    """Per-channel queues init'd in __init__, mutated in dispatch,
    absent from the reset path -> flagged, naming the attribute."""
    findings = analyze_paths([str(FLOW_FIXTURES / "flow_tp101.py")])
    assert [f.rule for f in findings] == ["TP101"]
    assert "_cursor" in findings[0].message
    assert "_reset_queues" in findings[0].message


def test_tp101_accepts_the_fixed_parallel_device():
    """The repaired ChannelSSDevice resets everything: no findings."""
    findings = analyze_paths([str(SRC / "repro" / "ssd")])
    assert [f for f in findings if f.rule == "TP101"] == []


def test_tp101_mutation_without_any_reset_of_attr():
    source = (
        "class Dev:\n"
        "    def __init__(self):\n"
        "        self.q = []\n"
        "    def _reset_queues(self):\n"
        "        pass\n"
        "    def run(self, trace):\n"
        "        self.q.append(trace)\n"
    )
    assert "TP101" in _codes(source)


def test_tp101_reset_through_inherited_helper():
    """Reset-path attribute stores are found through self-call closure
    and through the class hierarchy."""
    source = (
        "class Base:\n"
        "    def _reset_queues(self):\n"
        "        self._clear()\n"
        "    def run(self, trace):\n"
        "        self.q.append(trace)\n"
        "class Dev(Base):\n"
        "    def _clear(self):\n"
        "        self.q = []\n"
    )
    assert "TP101" not in _codes(source)


def test_tp101_fresh_rebind_on_run_path_is_initialization():
    """``self.x = []`` inside run() is a per-run init, not a leak."""
    source = (
        "class Dev:\n"
        "    def _reset_queues(self):\n"
        "        pass\n"
        "    def run(self, trace):\n"
        "        self.seen = []\n"
        "        self.seen.append(trace)\n"
    )
    assert "TP101" not in _codes(source)


def test_tp101_self_referential_rebind_is_a_leak():
    source = (
        "class Dev:\n"
        "    def _reset_queues(self):\n"
        "        pass\n"
        "    def run(self, trace):\n"
        "        self.total = self.total + 1\n"
    )
    assert "TP101" in _codes(source)


def test_tp101_ignores_classes_without_reset_protocol():
    """FTLs age across requests by design; no reset method, no rule."""
    source = (
        "class AgingFTL:\n"
        "    def serve_request(self, request):\n"
        "        self.cache.append(request)\n"
    )
    assert "TP101" not in _codes(source)


# ----------------------------------------------------------------------
# TP102: the PR-2 bug class (mutation test)
# ----------------------------------------------------------------------
def test_tp102_flags_bypass_through_helper_indirection():
    findings = analyze_paths([str(FLOW_FIXTURES / "flow_tp102.py")])
    assert [f.rule for f in findings] == ["TP102"]
    assert "_invalidate_remaining" in findings[0].message
    assert "_switch_merge" in findings[0].snippet or (
        "_invalidate_remaining" in findings[0].snippet)


def test_tp102_two_levels_of_indirection():
    source = (
        "class FTL:\n"
        "    def serve(self):\n"
        "        self.merge()\n"
        "    def merge(self):\n"
        "        self.wipe()\n"
        "    def wipe(self):\n"
        "        self.block.erase()\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP102"]
    # both the serve->merge and merge->wipe call sites are tainted
    assert len(findings) == 2


def test_tp102_routed_through_flash_is_clean():
    source = (
        "class FTL:\n"
        "    def merge(self):\n"
        "        self.drop()\n"
        "    def drop(self):\n"
        "        self.flash.invalidate(3)\n"
    )
    assert "TP102" not in _codes(source)


def test_tp102_suppressing_the_source_clears_the_chain():
    """A justified TP006 pragma on the direct op un-taints callers."""
    source = (
        "class FTL:\n"
        "    def merge(self):\n"
        "        self.wipe()\n"
        "    def wipe(self):\n"
        "        self.block.erase()  # tp: allow=TP006 - scan rebuild\n"
    )
    assert "TP102" not in _codes(source)


def test_hybrid_ftl_merge_paths_are_tp102_clean():
    """The fixed HybridFTL routes every page op through self.flash."""
    findings = analyze_paths([str(SRC / "repro" / "ftl")])
    assert [f for f in findings if f.rule == "TP102"] == []


# ----------------------------------------------------------------------
# TP103 / TP104
# ----------------------------------------------------------------------
def test_tp103_alias_then_mutate_in_subclass():
    source = (
        "class Base:\n"
        "    def __init__(self, config):\n"
        "        self.rules = config.rules\n"
        "class Sub(Base):\n"
        "    def mute(self, code):\n"
        "        self.rules.discard(code)\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP103"]
    assert len(findings) == 1
    assert "config.rules" in findings[0].message


def test_tp103_rebinding_is_not_an_escape():
    source = (
        "class Harness:\n"
        "    def __init__(self, config):\n"
        "        self.rules = config.rules\n"
        "    def mute(self, code):\n"
        "        self.rules = self.rules - {code}\n"
    )
    assert "TP103" not in _codes(source)


def test_tp104_sorted_iteration_is_clean():
    source = (
        "class Dev:\n"
        "    def run(self, trace):\n"
        "        pending = set(trace)\n"
        "        for lpn in sorted(pending):\n"
        "            self.emit(lpn)\n"
    )
    assert "TP104" not in _codes(source)


def test_tp104_set_attr_through_hierarchy():
    source = (
        "class Base:\n"
        "    def __init__(self):\n"
        "        self._dirty = set()\n"
        "class Dev(Base):\n"
        "    def run(self, trace):\n"
        "        for lpn in self._dirty:\n"
        "            self.emit(lpn)\n"
    )
    assert "TP104" in _codes(source)


def test_tp104_off_run_path_is_exempt():
    source = (
        "def report(pages):\n"
        "    for page in {p for p in pages}:\n"
        "        print(page)\n"
    )
    assert "TP104" not in _codes(source)


def test_flow_pragma_suppression():
    source = (
        "class Dev:\n"
        "    def run(self, trace):\n"
        "        pending = set(trace)\n"
        "        for lpn in pending:  # tp: allow=TP104 - commutative\n"
        "            self.emit(lpn)\n"
    )
    assert _codes(source) == set()


# ----------------------------------------------------------------------
# Call graph / engine internals
# ----------------------------------------------------------------------
def test_callgraph_resolves_relative_imports():
    project = Project.from_sources({
        "src/pkg/flash/mem.py": (
            '"""Flash."""\n'
            "class FlashMemory:\n"
            "    def program(self):\n"
            "        pass\n"),
        "src/pkg/ftl/base.py": (
            '"""FTL."""\n'
            "from ..flash.mem import FlashMemory\n"
            "class FTL:\n"
            "    def __init__(self):\n"
            "        self.flash = FlashMemory()\n"
            "    def write(self):\n"
            "        self.flash.program()\n"),
    })
    fn = project.functions["pkg.ftl.base.FTL.write"]
    targets = set()
    for site in fn.calls:
        targets |= project.resolve_call(fn, site)
    assert "pkg.flash.mem.FlashMemory.program" in targets


def test_callgraph_virtual_dispatch_includes_overrides():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "class Base:\n"
        "    def run(self):\n"
        "        self.step()\n"
        "    def step(self):\n"
        "        pass\n"
        "class Sub(Base):\n"
        "    def step(self):\n"
        "        pass\n")})
    fn = project.functions["m.Base.run"]
    targets = set()
    for site in fn.calls:
        targets |= project.resolve_call(fn, site)
    assert targets == {"m.Base.step", "m.Sub.step"}


def test_effective_methods_nearest_definition_wins():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "class A:\n"
        "    def f(self):\n"
        "        pass\n"
        "class B(A):\n"
        "    def f(self):\n"
        "        pass\n"
        "class C(B):\n"
        "    pass\n")})
    table = project.effective_methods("m.C")
    assert table["f"].qname == "m.B.f"


def test_state_inventory_catches_all_mutation_shapes():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "class S:\n"
        "    def __init__(self):\n"
        "        self.a = []\n"
        "    def f(self):\n"
        "        self.a.append(1)\n"
        "        self.a[0] = 2\n"
        "        self.b += 1\n"
        "        del self.a[0]\n")})
    state = project.classes["m.S"].state
    kinds = {(e.attr, e.kind) for e in state.mutations["f"]}
    assert ("a", "mutcall") in kinds
    assert ("a", "subscript") in kinds
    assert ("b", "augassign") in kinds


def test_fixed_point_reaches_closure_over_cycles():
    edges = {"a": ["b"], "b": ["c", "a"], "c": []}
    engine_facts = fixed_point(edges, {"a": frozenset({"X"})})
    assert engine_facts["c"] == frozenset({"X"})
    assert engine_facts["a"] == frozenset({"X"})


def test_engine_backward_closure():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "def leaf():\n"
        "    pass\n"
        "def mid():\n"
        "    leaf()\n"
        "def top():\n"
        "    mid()\n")})
    engine = FlowEngine(project)
    assert engine.reaching(["m.leaf"]) == {"m.leaf", "m.mid", "m.top"}


def test_flow_findings_share_lint_baseline_keys():
    findings = analyze_paths([str(FLOW_FIXTURES / "flow_tp101.py")])
    rule, path, snippet = findings[0].key
    assert rule == "TP101"
    assert path.endswith("flow_tp101.py")
    assert snippet == findings[0].snippet
