"""The §3.1 analytical models: transcription checks, algebraic
identities, and agreement with the simulator."""

import pytest

from repro.errors import ConfigError
from repro.models import (ModelParams, avg_translation_time,
                          gc_data_time_per_access,
                          gc_translation_time_per_access,
                          params_from_run, write_amplification,
                          write_amplification_counts)
from repro.models.performance import (ngct_per_access,
                                      service_time_per_access)


def params(**overrides) -> ModelParams:
    base = dict(hr=0.8, prd=0.5, rw=0.7, hgcr=0.6, vd=20.0, vt=10.0,
                np=64)
    base.update(overrides)
    return ModelParams(**base)


class TestEquation1:
    def test_perfect_cache_is_free(self):
        assert avg_translation_time(params(hr=1.0)) == 0.0

    def test_all_miss_clean(self):
        p = params(hr=0.0, prd=0.0)
        assert avg_translation_time(p) == pytest.approx(p.tfr)

    def test_all_miss_all_dirty(self):
        p = params(hr=0.0, prd=1.0)
        assert avg_translation_time(p) == pytest.approx(
            p.tfr + (p.tfr + p.tfw))

    def test_linear_in_miss_rate(self):
        half = avg_translation_time(params(hr=0.5))
        full = avg_translation_time(params(hr=0.0))
        assert half == pytest.approx(full / 2)


class TestGCEquations:
    def test_eq10_zero_without_writes(self):
        assert gc_data_time_per_access(params(rw=0.0)) == 0.0

    def test_eq10_grows_with_valid_pages(self):
        light = gc_data_time_per_access(params(vd=5.0))
        heavy = gc_data_time_per_access(params(vd=50.0))
        assert heavy > light

    def test_eq11_zero_when_no_translation_traffic(self):
        p = params(hr=1.0, hgcr=1.0)
        assert gc_translation_time_per_access(p) == 0.0

    def test_eq11_matches_manual_expansion(self):
        p = params()
        ngct = ngct_per_access(p)
        expected = ngct * (p.vt * (p.tfr + p.tfw) + p.tfe)
        assert gc_translation_time_per_access(p) == pytest.approx(
            expected)

    def test_service_time_composes(self):
        p = params()
        total = service_time_per_access(p)
        user = p.rw * p.tfw + (1 - p.rw) * p.tfr
        assert total == pytest.approx(
            avg_translation_time(p) + user + gc_data_time_per_access(p)
            + gc_translation_time_per_access(p))


class TestWriteAmplification:
    def test_eq12_equals_eq13(self):
        """The paper's two formulations are algebraically identical."""
        for hr in (0.0, 0.3, 0.9, 1.0):
            for prd in (0.0, 0.4, 1.0):
                for vd in (0.0, 16.0, 48.0):
                    p = params(hr=hr, prd=prd, vd=vd)
                    counts = write_amplification_counts(p)
                    assert counts.amplification == pytest.approx(
                        write_amplification(p), rel=1e-9)

    def test_ideal_case_is_one(self):
        p = params(hr=1.0, prd=0.0, vd=0.0, vt=0.0, hgcr=1.0)
        assert write_amplification(p) == pytest.approx(1.0)

    def test_monotone_in_hit_ratio(self):
        low = write_amplification(params(hr=0.2))
        high = write_amplification(params(hr=0.9))
        assert low > high

    def test_monotone_in_prd(self):
        dirty = write_amplification(params(prd=0.9))
        clean = write_amplification(params(prd=0.1))
        assert dirty > clean

    def test_read_only_rejected(self):
        with pytest.raises(ConfigError):
            write_amplification(params(rw=0.0))
        with pytest.raises(ConfigError):
            write_amplification_counts(params(rw=0.0))


class TestParamsValidation:
    @pytest.mark.parametrize("overrides", [
        {"hr": 1.2}, {"prd": -0.1}, {"rw": 2.0}, {"hgcr": -1.0},
        {"vd": 64.0}, {"vt": -1.0}, {"np": 0}, {"tfr": -1.0},
    ])
    def test_rejects_bad_params(self, overrides):
        with pytest.raises(ConfigError):
            params(**overrides)


class TestModelVsSimulation:
    def test_wa_model_tracks_simulated_dftl(self, tiny_config):
        """Eq. 13 fed with measured Hr/Prd/Vd/Vt/Hgcr should land near
        the simulator's measured WA (same accounting, batching aside)."""
        import random
        from repro.ftl import DFTL
        from repro.ssd import simulate
        from repro.types import Op, Request, Trace
        rng = random.Random(21)
        requests = [
            Request(arrival=i * 50.0,
                    op=Op.WRITE if rng.random() < 0.8 else Op.READ,
                    lpn=rng.randrange(512), npages=1)
            for i in range(4000)
        ]
        trace = Trace(requests=requests, logical_pages=512)
        run = simulate(DFTL(tiny_config), trace)
        p = params_from_run(run, tiny_config.ssd)
        modeled = write_amplification(p)
        measured = run.metrics.write_amplification
        # the model ignores DFTL's GC-time batching of same-page
        # updates, so it overestimates slightly; shapes must agree
        assert modeled == pytest.approx(measured, rel=0.35)

    def test_params_from_run_ranges(self, tiny_config):
        from repro.ftl import DFTL
        from repro.ssd import simulate
        from conftest import make_trace, random_ops
        trace = make_trace(random_ops(2000, 512, seed=5))
        run = simulate(DFTL(tiny_config), trace)
        p = params_from_run(run, tiny_config.ssd)
        assert 0.0 <= p.hr <= 1.0
        assert 0.0 <= p.prd <= 1.0
        assert 0.0 <= p.vd < p.np
