"""The synthetic workload generator: determinism, bounds, knobs."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import SyntheticSpec, characterize, generate


def spec(**overrides) -> SyntheticSpec:
    base = dict(name="t", logical_pages=4096, num_requests=2000,
                write_ratio=0.5, seed=7)
    base.update(overrides)
    return SyntheticSpec(**base)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate(spec())
        b = generate(spec())
        assert [(r.op, r.lpn, r.npages, r.arrival) for r in a] == \
               [(r.op, r.lpn, r.npages, r.arrival) for r in b]

    def test_different_seed_different_trace(self):
        a = generate(spec(seed=1))
        b = generate(spec(seed=2))
        assert [(r.lpn) for r in a] != [(r.lpn) for r in b]


class TestBounds:
    def test_all_requests_in_address_space(self):
        trace = generate(spec(seq_read_fraction=0.5,
                              seq_write_fraction=0.5,
                              mean_read_pages=3.0, mean_write_pages=3.0))
        for request in trace:
            assert 0 <= request.lpn
            assert request.end_lpn <= trace.logical_pages

    def test_request_count(self):
        assert len(generate(spec(num_requests=123))) == 123

    def test_arrivals_monotonic(self):
        trace = generate(spec())
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)

    def test_zero_interarrival_allowed(self):
        trace = generate(spec(mean_interarrival_us=0.0))
        assert all(r.arrival == 0.0 for r in trace)


class TestKnobs:
    def test_write_ratio_respected(self):
        trace = generate(spec(write_ratio=0.8, num_requests=5000))
        stats = characterize(trace)
        assert stats.write_ratio == pytest.approx(0.8, abs=0.03)

    def test_mean_request_size(self):
        trace = generate(spec(mean_read_pages=2.5, mean_write_pages=2.5,
                              num_requests=5000))
        stats = characterize(trace)
        assert stats.avg_request_bytes / 4096 == pytest.approx(2.5,
                                                               rel=0.15)

    def test_zipf_concentrates_accesses(self):
        uniform = generate(spec(zipf_alpha=1.0, num_requests=5000))
        skewed = generate(spec(zipf_alpha=16.0, num_requests=5000))
        assert (characterize(skewed).footprint_pages
                < characterize(uniform).footprint_pages / 2)

    def test_sequential_fraction_produces_runs(self):
        seq = generate(spec(seq_read_fraction=0.9, write_ratio=0.0,
                            num_requests=5000, mean_stream_pages=64))
        rand = generate(spec(seq_read_fraction=0.0, write_ratio=0.0,
                             num_requests=5000))
        assert (characterize(seq).seq_read_fraction
                > characterize(rand).seq_read_fraction + 0.2)

    def test_stream_align_quantises_run_starts(self):
        trace = generate(spec(seq_write_fraction=1.0, write_ratio=1.0,
                              stream_align=64, mean_stream_pages=32,
                              num_requests=500))
        starts = set()
        expected = None
        for request in trace:
            if request.lpn != expected:  # a fresh run
                starts.add(request.lpn)
            expected = request.end_lpn
        assert all(start % 64 == 0 for start in starts)


class TestStreamRotation:
    def test_rotation_resumes_paused_runs(self):
        """Rotating streams must not clobber other streams' live runs.

        With several sticky streams and short runs, the generator
        frequently rotates; a rotation that *resets* the stream it
        lands on (the old bug) can never resume a paused run, so every
        post-rotation request would start a fresh aligned run.  Count
        resumptions: requests that continue the expected next LPN of a
        run paused earlier (not the immediately preceding request).
        """
        trace = generate(self._rotation_spec(streams=4))
        # the reset-on-rotation bug scores ~14 here (pure LPN-collision
        # noise — the same level a single stream shows); real
        # resumptions push the count an order of magnitude higher
        assert self._resumptions(trace) > 100

    def test_resumptions_measure_cross_stream_interleaving(self):
        """The counter is specific: one stream has nothing to resume.

        With a single sticky stream every rotation lands back on the
        (exhausted) stream and restarts it, so resumption events can
        only be LPN collisions; multiple streams must score far above
        that noise floor — which is exactly what the old unconditional
        reset made impossible.
        """
        noise = self._resumptions(
            generate(self._rotation_spec(streams=1)))
        multi = self._resumptions(
            generate(self._rotation_spec(streams=4)))
        assert multi > 5 * max(noise, 1)

    @staticmethod
    def _rotation_spec(streams: int) -> SyntheticSpec:
        """Short runs + small requests: rotation on every few requests."""
        return spec(streams=streams, write_ratio=0.0,
                    seq_read_fraction=1.0, mean_read_pages=2.5,
                    mean_stream_pages=8, stream_align=16,
                    num_requests=4000)

    @staticmethod
    def _resumptions(trace) -> int:
        """Requests that continue a run paused before the previous one."""
        paused = set()
        prev_end = None
        count = 0
        for request in trace:
            if request.lpn == prev_end:
                prev_end = request.end_lpn
                continue
            if request.lpn in paused:
                count += 1
                paused.discard(request.lpn)
            if prev_end is not None:
                paused.add(prev_end)
            prev_end = request.end_lpn
        return count


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"logical_pages": 0},
        {"num_requests": -1},
        {"write_ratio": 1.5},
        {"seq_read_fraction": -0.1},
        {"zipf_alpha": 0.5},
        {"mean_read_pages": 0.5},
        {"streams": 0},
        {"mean_stream_pages": 0},
        {"stream_align": 0},
        {"stream_start_alpha": 0.0},
        {"mean_interarrival_us": -1.0},
    ])
    def test_rejects_bad_spec(self, overrides):
        with pytest.raises(WorkloadError):
            spec(**overrides)
