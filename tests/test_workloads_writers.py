"""Trace writers round-trip through the parsers losslessly."""

import pytest

from repro.types import Op, Request, Trace
from repro.workloads import parse_msr_lines, parse_spc_lines
from repro.workloads.writers import (msr_lines, spc_lines,
                                     write_msr_trace, write_spc_trace)


@pytest.fixture
def trace() -> Trace:
    return Trace(requests=[
        Request(arrival=0.0, op=Op.READ, lpn=3, npages=2),
        Request(arrival=250.0, op=Op.WRITE, lpn=0, npages=1),
        Request(arrival=1000.5, op=Op.READ, lpn=100, npages=4),
    ], logical_pages=512, name="rt")


def same_requests(a: Trace, b: Trace, time_tol_us: float) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.op is y.op
        assert x.lpn == y.lpn
        assert x.npages == y.npages
        assert abs(x.arrival - y.arrival) <= time_tol_us


class TestSPCRoundTrip:
    def test_round_trip(self, trace):
        parsed = parse_spc_lines(spc_lines(trace))
        same_requests(trace, parsed, time_tol_us=1.0)

    def test_write_to_file(self, trace, tmp_path):
        path = tmp_path / "out.spc"
        write_spc_trace(trace, path)
        from repro.workloads import load_spc_trace
        parsed = load_spc_trace(path)
        same_requests(trace, parsed, time_tol_us=1.0)

    def test_opcode_direction(self, trace):
        lines = list(spc_lines(trace))
        assert lines[0].split(",")[3] == "r"
        assert lines[1].split(",")[3] == "w"


class TestMSRRoundTrip:
    def test_round_trip(self, trace):
        parsed = parse_msr_lines(msr_lines(trace))
        same_requests(trace, parsed, time_tol_us=0.1)

    def test_write_to_file(self, trace, tmp_path):
        path = tmp_path / "out.csv"
        write_msr_trace(trace, path)
        from repro.workloads import load_msr_trace
        parsed = load_msr_trace(path)
        same_requests(trace, parsed, time_tol_us=0.1)

    def test_field_layout(self, trace):
        first = list(msr_lines(trace, hostname="h", disk=3))[0]
        parts = first.split(",")
        assert parts[1] == "h"
        assert parts[2] == "3"
        assert parts[3] == "Read"


class TestSyntheticRoundTrip:
    def test_preset_survives_spc_round_trip(self):
        from repro.workloads import characterize, financial1
        trace = financial1(logical_pages=4096, num_requests=500)
        parsed = parse_spc_lines(spc_lines(trace))
        original = characterize(trace)
        replayed = characterize(parsed)
        assert replayed.write_ratio == pytest.approx(
            original.write_ratio)
        assert replayed.footprint_pages == original.footprint_pages
