"""Background (idle-time) GC and GC-time accounting extensions."""

import random

import pytest

from repro.ftl import OptimalFTL, make_ftl
from repro.ssd import SSDevice
from repro.types import Op, Request, Trace


def bursty_write_trace(pages=512, bursts=40, burst_len=20,
                       gap_us=50_000.0, seed=3) -> Trace:
    """Write bursts separated by long idle gaps."""
    rng = random.Random(seed)
    requests = []
    clock = 0.0
    for _ in range(bursts):
        for _ in range(burst_len):
            clock += 50.0
            requests.append(Request(arrival=clock, op=Op.WRITE,
                                    lpn=rng.randrange(pages), npages=1))
        clock += gap_us
    return Trace(requests=requests, logical_pages=pages)


class TestGCTimeAccounting:
    def test_gc_time_fraction_in_range(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        result = SSDevice(ftl).run(bursty_write_trace())
        assert 0.0 <= result.gc_time_fraction <= 1.0
        assert result.service_time_us > 0.0

    def test_no_gc_no_gc_time(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        trace = Trace(requests=[Request(arrival=0.0, op=Op.READ, lpn=0,
                                        npages=1)], logical_pages=512)
        result = SSDevice(ftl).run(trace)
        assert result.gc_time_us == 0.0
        assert result.gc_time_fraction == 0.0

    def test_write_heavy_runs_accrue_gc_time(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        result = SSDevice(ftl).run(bursty_write_trace(bursts=80))
        assert result.gc_time_us > 0.0


class TestBackgroundGC:
    def test_disabled_by_default(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        result = SSDevice(ftl).run(bursty_write_trace())
        assert result.background_collections == 0

    def test_idle_gaps_absorb_collections(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = SSDevice(ftl, background_gc=True)
        result = device.run(bursty_write_trace(bursts=80))
        assert result.background_collections > 0

    def test_background_gc_reduces_foreground_stalls(self, tiny_config):
        """With idle gaps available, background GC should cut the mean
        response time of the foreground writes."""
        trace = bursty_write_trace(bursts=100, burst_len=25)
        plain = SSDevice(OptimalFTL(tiny_config)).run(trace)
        ftl = OptimalFTL(tiny_config)
        assisted = SSDevice(ftl, background_gc=True).run(trace)
        assert assisted.response.mean <= plain.response.mean

    def test_background_gc_preserves_consistency(self, tiny_config):
        ftl = make_ftl("tpftl", tiny_config)
        device = SSDevice(ftl, background_gc=True)
        device.run(bursty_write_trace(bursts=60))
        ftl.flush()
        ftl.check_consistency()

    def test_background_collect_respects_pool_headroom(self, tiny_config):
        """Right after prefill the pool is deep: idle GC must not churn."""
        ftl = OptimalFTL(tiny_config)
        cost = ftl.background_collect(max_blocks=4)
        assert cost.erases == 0

    def test_background_collect_zero_budget(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        assert ftl.background_collect(max_blocks=0).erases == 0
