"""Block-level and hybrid FTL extensions: the §2.1 comparators."""

import pytest

from repro.config import SimulationConfig, SSDConfig
from repro.errors import ConfigError
from repro.ftl import BlockFTL, HybridFTL
from repro.types import PageKind


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(ssd=SSDConfig(
        logical_pages=512, page_size=256, pages_per_block=8))


class TestBlockFTL:
    def test_requires_block_aligned_space(self):
        bad = SimulationConfig(ssd=SSDConfig(
            logical_pages=100, page_size=256, pages_per_block=8))
        with pytest.raises(ConfigError):
            BlockFTL(bad)

    def test_read_costs_one_flash_read(self, config):
        ftl = BlockFTL(config)
        result = ftl.read_page(17)
        assert result.data_reads == 1
        assert result.data_writes == 0

    def test_write_copies_whole_block(self, config):
        """The block-mapping penalty: one page write costs Np programs
        plus Np-1 copy reads plus an erase."""
        ftl = BlockFTL(config)
        result = ftl.write_page(17)
        np = config.ssd.pages_per_block
        assert result.data_writes == np
        assert result.data_reads == np - 1
        assert result.erases == 1

    def test_write_preserves_other_pages_of_block(self, config):
        ftl = BlockFTL(config)
        ftl.write_page(17)
        # every page of the logical block still reads back correctly
        base = (17 // 8) * 8
        for lpn in range(base, base + 8):
            ppn = ftl.flash_table[lpn]
            assert ftl.flash.read(ppn, PageKind.DATA) == lpn

    def test_block_map_moves(self, config):
        ftl = BlockFTL(config)
        before = ftl.block_map[2]
        ftl.write_page(17)  # lbn 2
        assert ftl.block_map[2] != before

    def test_rigid_offsets(self, config):
        ftl = BlockFTL(config)
        ftl.write_page(17)
        ppn = ftl.flash_table[17]
        assert ftl.flash.offset_of(ppn) == 17 % 8

    def test_consistency_after_many_writes(self, config):
        import random
        ftl = BlockFTL(config)
        rng = random.Random(3)
        for _ in range(100):
            ftl.write_page(rng.randrange(512))
        ftl.check_consistency()

    def test_always_hits_ram_table(self, config):
        ftl = BlockFTL(config)
        ftl.read_page(0)
        ftl.write_page(1)
        assert ftl.metrics.hit_ratio == 1.0


class TestHybridFTL:
    def test_write_appends_to_log(self, config):
        ftl = HybridFTL(config)
        result = ftl.write_page(17)
        assert result.data_writes == 1   # no copy-merge yet
        assert 17 in ftl.log_map

    def test_read_prefers_log_version(self, config):
        ftl = HybridFTL(config)
        ftl.write_page(17)
        ppn = ftl.log_map[17]
        assert ftl.flash.read(ppn, PageKind.DATA) == 17

    def test_sequential_rewrite_switch_merges(self, config):
        ftl = HybridFTL(config, log_blocks=2)
        # rewrite logical blocks 3, 4 in perfect order, then one more
        # write: the oldest log block holds exactly block 3's newest
        # pages in offset order -> switch merge
        for lpn in range(24, 40):
            ftl.write_page(lpn)
        ftl.write_page(100)
        assert ftl.merges_switch >= 1
        ftl.check_consistency()

    def test_random_writes_full_merge(self, config):
        import random
        ftl = HybridFTL(config, log_blocks=2)
        rng = random.Random(5)
        for _ in range(80):
            ftl.write_page(rng.randrange(512))
        assert ftl.merges_full >= 1
        ftl.check_consistency()

    def test_full_merge_costs_reads_and_writes(self, config):
        import random
        ftl = HybridFTL(config, log_blocks=2)
        rng = random.Random(5)
        for _ in range(80):
            ftl.write_page(rng.randrange(512))
        assert ftl.metrics.data_writes_migration > 0
        assert ftl.metrics.data_reads_migration > 0

    def test_consistency_under_mixed_ops(self, config):
        import random
        ftl = HybridFTL(config)
        rng = random.Random(9)
        for _ in range(300):
            lpn = rng.randrange(512)
            if rng.random() < 0.7:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
        ftl.check_consistency()

    def test_log_blocks_validated(self, config):
        with pytest.raises(ConfigError):
            HybridFTL(config, log_blocks=0)

    def test_unaligned_space_rejected(self):
        bad = SimulationConfig(ssd=SSDConfig(
            logical_pages=100, page_size=256, pages_per_block=8))
        with pytest.raises(ConfigError):
            HybridFTL(bad)


class TestHybridVsBlockEfficiency:
    def test_hybrid_writes_less_than_block_ftl(self, config):
        """The point of log buffering: fewer flash writes per update."""
        import random
        rng = random.Random(13)
        ops = [rng.randrange(512) for _ in range(60)]
        block = BlockFTL(config)
        hybrid = HybridFTL(SimulationConfig(ssd=config.ssd))
        for lpn in ops:
            block.write_page(lpn)
        for lpn in ops:
            hybrid.write_page(lpn)
        assert (hybrid.flash.stats.total_writes
                < block.flash.stats.total_writes)
