"""The open-loop multi-tenant traffic frontend and QoS dispatch.

Covers the composition layer (arrival models, namespace slicing, merge
determinism), tenant threading through the device models (per-tenant
response statistics, fair-share lanes, single-tenant degeneration to
the paper's FIFO arithmetic bit-for-bit), fast-path parity on traffic
workloads, the runner's digest-neutral spec extension, and the
``traffic`` registry experiment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random

import pytest

from repro.config import SimulationConfig, SSDConfig
from repro.errors import ConfigError, WorkloadError
from repro.experiments import ExperimentScale
from repro.experiments.common import clear_matrix_cache
from repro.experiments.runner import (RunSpec, decode_result,
                                      encode_result, execute_spec)
from repro.ftl import make_ftl
from repro.ssd import ChannelSSDevice, SSDevice, run_fast, simulate
from repro.types import Op, Request, Trace
from repro.workloads import (ARRIVAL_KINDS, ArrivalModel, TenantSpec,
                             TrafficSpec, compose, uniform_mix)

TINY = ExperimentScale(
    name="tiny", num_requests=900, warmup_requests=200,
    financial_pages=2048, msr_pages=4096,
    cache_fractions=(1 / 32, 1.0), sample_interval=0)


def tiny_mix(tenants=2, kind="poisson", requests=400, pages=1024,
             weights=None, seed=3, interarrival=500.0) -> TrafficSpec:
    """A small homogeneous mix for device-level tests."""
    return uniform_mix(
        "mix", "financial1", tenants, requests, pages,
        arrival=ArrivalModel(kind=kind,
                             mean_interarrival_us=interarrival),
        weights=weights, seed=seed)


def sim_config(trace: Trace) -> SimulationConfig:
    """A small geometry sized to the composed trace."""
    return SimulationConfig(ssd=SSDConfig(
        logical_pages=trace.logical_pages, page_size=256,
        pages_per_block=8))


def digest(result) -> str:
    """Parity key: sha256 of the run cache's JSON encoding."""
    payload = json.dumps(encode_result(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestArrivalModel:
    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError, match="arrival kind"):
            ArrivalModel(kind="constant")

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            ArrivalModel(mean_interarrival_us=0.0)
        with pytest.raises(WorkloadError):
            ArrivalModel(kind="bursty", burst_factor=1.0)
        with pytest.raises(WorkloadError):
            ArrivalModel(kind="diurnal", amplitude=1.0)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_arrivals_non_decreasing(self, kind):
        model = ArrivalModel(kind=kind, mean_interarrival_us=100.0)
        times = model.arrivals(2_000, random.Random(7))
        assert len(times) == 2_000
        assert all(a <= b for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_long_run_rate_matches_mean(self, kind):
        """Every kind preserves the configured long-run offered rate."""
        model = ArrivalModel(kind=kind, mean_interarrival_us=100.0)
        times = model.arrivals(20_000, random.Random(11))
        mean = times[-1] / len(times)
        assert mean == pytest.approx(100.0, rel=0.15)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_deterministic_for_seeded_rng(self, kind):
        model = ArrivalModel(kind=kind)
        assert (model.arrivals(500, random.Random(3))
                == model.arrivals(500, random.Random(3)))

    def test_bursty_clusters_more_than_poisson(self):
        rng = random.Random(5)
        bursty = ArrivalModel(kind="bursty", mean_interarrival_us=100.0,
                              burst_factor=20.0)
        times = bursty.arrivals(5_000, rng)
        gaps = [b - a for a, b in zip(times, times[1:])]
        short = sum(1 for g in gaps if g < 100.0 / 4)
        # a burst-dominated stream has far more sub-quarter-mean gaps
        # than the memoryless process (which has ~22%)
        assert short / len(gaps) > 0.5


class TestTrafficSpec:
    def test_rejects_duplicate_tenant_names(self):
        tenant = TenantSpec(name="a", workload="financial1",
                            num_requests=10, pages=64)
        with pytest.raises(WorkloadError, match="unique"):
            TrafficSpec(name="dup", tenants=(tenant, tenant))

    def test_rejects_unknown_workload_and_bad_weight(self):
        with pytest.raises(WorkloadError, match="workload"):
            TenantSpec(name="a", workload="nope", num_requests=1,
                       pages=64)
        with pytest.raises(WorkloadError, match="weight"):
            TenantSpec(name="a", workload="financial1", num_requests=1,
                       pages=64, weight=0.0)

    def test_namespaces_are_disjoint_slices_in_order(self):
        spec = tiny_mix(tenants=3, pages=128)
        spaces = spec.namespaces()
        assert spaces["financial1-0"] == (0, 128)
        assert spaces["financial1-1"] == (128, 128)
        assert spaces["financial1-2"] == (256, 128)
        assert spec.logical_pages == 384

    def test_scaled_divides_interarrivals(self):
        spec = tiny_mix(interarrival=1_000.0)
        doubled = spec.scaled(2.0)
        assert all(t.arrival.mean_interarrival_us == 500.0
                   for t in doubled.tenants)
        with pytest.raises(WorkloadError):
            spec.scaled(0.0)

    def test_canonical_round_trip(self):
        spec = tiny_mix(tenants=2, kind="bursty",
                        weights=(3.0, 1.0))
        rebuilt = TrafficSpec.from_payload(
            json.loads(json.dumps(spec.canonical())))
        assert rebuilt == spec


class TestCompose:
    def test_deterministic(self):
        spec = tiny_mix()
        assert compose(spec).requests == compose(spec).requests

    def test_merged_schedule_sorted_and_bounded(self):
        spec = tiny_mix(tenants=3, pages=256, requests=200)
        trace = compose(spec)
        assert len(trace) == 600
        assert trace.logical_pages == spec.logical_pages
        arrivals = [r.arrival for r in trace.requests]
        assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))
        spaces = spec.namespaces()
        for request in trace.requests:
            base, pages = spaces[request.tenant]
            assert base <= request.lpn
            assert request.end_lpn <= base + pages

    def test_every_tenant_contributes_its_budget(self):
        spec = tiny_mix(tenants=2, requests=150)
        trace = compose(spec)
        counts = {}
        for request in trace.requests:
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        assert counts == {"financial1-0": 150, "financial1-1": 150}

    def test_single_tenant_keeps_preset_requests(self):
        """N=1 composition only relabels arrivals/tenant, not the ops."""
        from repro.workloads import make_preset
        spec = tiny_mix(tenants=1, requests=300, pages=1024)
        trace = compose(spec)
        preset = make_preset("financial1", logical_pages=1024,
                             num_requests=300, seed=spec.tenants[0].seed)
        assert [(r.op, r.lpn, r.npages) for r in trace.requests] \
            == [(r.op, r.lpn, r.npages) for r in preset.requests]
        assert all(r.tenant == "financial1-0" for r in trace.requests)


class TestDeviceTenancy:
    def _run(self, trace, qos="fifo", weights=None, fast=False,
             channels=1, keep_samples=False):
        ftl = make_ftl("dftl", sim_config(trace))
        return simulate(ftl, trace, fast=fast, channels=channels,
                        qos=qos, tenant_weights=weights,
                        keep_response_samples=keep_samples)

    def test_per_tenant_stats_partition_the_aggregate(self):
        trace = compose(tiny_mix(tenants=3, requests=150))
        result = self._run(trace)
        assert set(result.tenants) == {"financial1-0", "financial1-1",
                                       "financial1-2"}
        assert sum(s.count for s in result.tenants.values()) \
            == result.response.count

    def test_merged_tenant_stats_reproduce_aggregate(self):
        """ResponseStats.merge over tenants == one whole-trace stream."""
        from repro.metrics import ResponseStats
        trace = compose(tiny_mix(tenants=3, requests=150))
        result = self._run(trace, keep_samples=True)
        merged = ResponseStats(keep_samples=True)
        for name in sorted(result.tenants):
            merged.merge(result.tenants[name])
        aggregate = result.response
        assert merged.count == aggregate.count
        assert merged.max == aggregate.max
        assert merged.mean == pytest.approx(aggregate.mean, rel=1e-12)
        assert merged.variance == pytest.approx(aggregate.variance,
                                                rel=1e-9)
        assert merged.total_queue_delay == pytest.approx(
            aggregate.total_queue_delay, rel=1e-12)
        assert sorted(merged.samples) == sorted(aggregate.samples)
        assert merged.percentile(99.0) == aggregate.percentile(99.0)

    def test_single_tenant_fifo_matches_unattributed_trace(self):
        """Tenant labels must not perturb the paper's timing at all."""
        trace = compose(tiny_mix(tenants=1, requests=400))
        stripped = Trace(
            requests=[dataclasses.replace(r, tenant=None)
                      for r in trace.requests],
            logical_pages=trace.logical_pages, name=trace.name)
        labelled = self._run(trace)
        plain = self._run(stripped)
        assert labelled.response == plain.response
        assert labelled.makespan == plain.makespan
        assert plain.tenants == {}
        assert labelled.tenants["financial1-0"].count \
            == labelled.response.count

    def test_lone_tenant_fair_equals_fifo_bit_for_bit(self):
        """share=1 division must not change a single float."""
        trace = compose(tiny_mix(tenants=1, requests=400))
        fifo = self._run(trace, qos="fifo")
        fair = self._run(trace, qos="fair")
        assert fair.qos == "fair" and fifo.qos == "fifo"
        assert fair.response == fifo.response
        assert fair.makespan == fifo.makespan
        assert fair.tenants == fifo.tenants

    def test_fair_isolates_the_heavier_weight(self):
        trace = compose(tiny_mix(tenants=2, requests=400,
                                 interarrival=120.0,
                                 weights=(8.0, 1.0)))
        result = self._run(trace, qos="fair",
                           weights={"financial1-0": 8.0,
                                    "financial1-1": 1.0})
        heavy = result.tenants["financial1-0"]
        light = result.tenants["financial1-1"]
        assert heavy.mean_queue_delay < light.mean_queue_delay

    def test_fair_rejects_background_gc(self, tiny_config):
        with pytest.raises(ConfigError, match="background_gc"):
            SSDevice(make_ftl("dftl", tiny_config), qos="fair",
                     background_gc=True)

    def test_unknown_qos_rejected(self, tiny_config):
        with pytest.raises(ConfigError, match="qos"):
            SSDevice(make_ftl("dftl", tiny_config), qos="wfq")

    def test_non_positive_weight_rejected(self, tiny_config):
        with pytest.raises(ConfigError, match="weight"):
            SSDevice(make_ftl("dftl", tiny_config), qos="fair",
                     tenant_weights={"a": 0.0})

    def test_out_of_order_arrivals_rejected(self, tiny_config):
        trace = Trace(requests=[
            Request(arrival=100.0, op=Op.READ, lpn=0, npages=1),
            Request(arrival=50.0, op=Op.READ, lpn=1, npages=1),
        ], logical_pages=512)
        device = SSDevice(make_ftl("dftl", tiny_config))
        with pytest.raises(WorkloadError, match="non-decreasing"):
            device.run(trace)
        with pytest.raises(WorkloadError, match="non-decreasing"):
            run_fast(SSDevice(make_ftl("dftl", tiny_config)), trace)

    def test_channel_parallel_service_stripes_from_cursor_zero(
            self, tiny_config):
        device = ChannelSSDevice(make_ftl("dftl", tiny_config),
                                 channels=2)
        ssd = device.ftl.ssd
        # r,r,r,w round-robined over 2 channels: ch0 = 2 reads,
        # ch1 = 1 read + 1 write -> the makespan is ch1
        expected = max(2 * ssd.read_us, ssd.read_us + ssd.write_us)
        assert device._parallel_service_us(3, 1, 0, 0.0) == expected
        single = ChannelSSDevice(make_ftl("dftl", tiny_config),
                                 channels=1)
        assert single._parallel_service_us(3, 1, 0, 123.0) == 123.0


class TestFastpathTrafficParity:
    def _parity(self, qos, channels=1, weights=None, tenants=3):
        spec = tiny_mix(tenants=tenants, requests=200,
                        interarrival=250.0, weights=weights)
        trace = compose(spec)
        results = []
        for fast in (False, True):
            ftl = make_ftl("dftl", sim_config(trace))
            results.append(simulate(
                ftl, trace, fast=fast, channels=channels, qos=qos,
                tenant_weights=(spec.weights() if qos == "fair"
                                else None),
                keep_response_samples=True))
        reference, fast_result = results
        assert reference.tenants and fast_result.tenants
        assert digest(reference) == digest(fast_result)

    def test_fifo_multi_tenant_parity(self):
        self._parity("fifo")

    def test_fair_multi_tenant_parity(self):
        self._parity("fair", weights=(4.0, 2.0, 1.0))

    def test_fair_multi_channel_parity(self):
        self._parity("fair", channels=2, weights=(4.0, 2.0, 1.0))

    def test_fifo_multi_channel_parity(self):
        self._parity("fifo", channels=4)


class TestRunnerTrafficSpecs:
    LEGACY_KEYS = {"workload", "ftl", "scale", "cache_fraction",
                   "tpftl", "seed", "sample_interval", "channels"}

    def base(self, **overrides) -> RunSpec:
        params = dict(workload="financial1", ftl="dftl", scale=TINY)
        params.update(overrides)
        return RunSpec(**params)

    def test_default_spec_canonical_form_unchanged(self):
        """Pre-existing digests (cache addresses) must not move."""
        assert set(self.base().canonical()) == self.LEGACY_KEYS

    def test_new_fields_change_the_digest(self):
        base = self.base()
        variants = [
            self.base(traffic=tiny_mix()),
            self.base(qos="fair"),
            self.base(keep_response_samples=True),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == len(variants) + 1

    def test_label_marks_mix_and_policy(self):
        spec = self.base(traffic=tiny_mix(tenants=3), qos="fair")
        assert "mix=3t" in spec.label()
        assert "fair" in spec.label()
        assert "mix=" not in self.base().label()

    def test_execute_traffic_spec(self):
        spec = self.base(traffic=tiny_mix(tenants=2, requests=300,
                                          interarrival=400.0),
                         qos="fair", keep_response_samples=True)
        result = execute_spec(spec)
        clear_matrix_cache()
        # 600 composed requests minus the tiny scale's 200 warmup
        assert result.requests == 400
        assert result.qos == "fair"
        assert set(result.tenants) == {"financial1-0", "financial1-1"}
        assert result.response.percentile(99.0) is not None

    def test_codec_round_trips_tenants_and_qos(self):
        spec = self.base(traffic=tiny_mix(tenants=2, requests=300),
                         qos="fair", keep_response_samples=True)
        fresh = execute_spec(spec)
        clear_matrix_cache()
        decoded = decode_result(
            json.loads(json.dumps(encode_result(fresh))))
        assert decoded == fresh
        assert decoded.tenants == fresh.tenants
        assert decoded.qos == "fair"
        assert decoded.summary() == fresh.summary()


class TestTrafficExperiment:
    @pytest.fixture(autouse=True)
    def _isolated_runner(self, tmp_path):
        from repro.experiments.runner import (configure_runner,
                                              reset_runner)
        configure_runner(jobs=1, cache_dir=tmp_path / "cache")
        yield
        reset_runner()
        clear_matrix_cache()

    def test_sweep_reports_per_tenant_tails(self):
        from repro.experiments.traffic import (LOAD_SWEEP, QOS_SWEEP,
                                               run)
        result = run(TINY)
        data = result.data
        assert data["bench"] == "traffic"
        assert max(data["load_sweep"]) > 1.0  # crosses into overload
        assert len(data["cells"]) == len(LOAD_SWEEP) * len(QOS_SWEEP)
        for cell in data["cells"]:
            assert cell["qos"] in QOS_SWEEP
            assert cell["aggregate"]["p99_us"] > 0.0
            assert set(cell["tenants"]) == {"oltp", "read", "batch"}
            for stats in cell["tenants"].values():
                assert stats["p99_us"] is not None
                assert stats["p999_us"] >= stats["p99_us"] * 0.999

    def test_fair_share_protects_heavy_tenant_in_overload(self):
        from repro.experiments.traffic import LOAD_SWEEP, run
        data = run(TINY).data
        top = max(LOAD_SWEEP)
        fair = next(c for c in data["cells"]
                    if c["load"] == top and c["qos"] == "fair")
        # weight-4 oltp must see less queueing than weight-1 batch
        assert (fair["tenants"]["oltp"]["mean_queue_delay_us"]
                < fair["tenants"]["batch"]["mean_queue_delay_us"])


class TestToolsTenantFlags:
    def test_cli_composes_tenants_and_reports_them(self, tmp_path,
                                                   capsys):
        from repro.tools import main
        out = tmp_path / "summary.json"
        code = main(["--workload", "financial1", "--tenants", "2",
                     "--qos", "fair", "--requests", "600",
                     "--pages", "2048", "--json", str(out)])
        assert code == 0
        summary = json.loads(out.read_text(encoding="utf-8"))
        assert summary["qos"] == "fair"
        assert set(summary["tenants"]) == {"financial1-0",
                                           "financial1-1"}

    def test_cli_rejects_tenants_with_trace_file(self):
        from repro.tools import main
        with pytest.raises(SystemExit):
            main(["--trace", "whatever.spc", "--tenants", "2"])
