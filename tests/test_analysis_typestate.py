"""The typestate pass: exception-edge CFGs, summaries, TP301-305.

Unit coverage for the tentpole's two new modules.  The CFG tests pin
the exception model (weak calls raise only inside ``try``, strong calls
always, finally bodies duplicated per continuation kind); the summary
tests pin the three interprocedural facts the checker consumes; the
rule tests exercise each TP3xx rule on minimal violating and guarded
snippets.  The acceptance-critical pair lives at the bottom: the
leaky-supervisor fixture must be flagged by TP303 while the fixed
``src/repro/experiments/supervisor.py`` stays protocol-clean.
"""

import ast
import pathlib

from repro.analysis.flow import (PROTOCOL_RULES, FlowEngine, Project,
                                 analyze_paths, analyze_source,
                                 build_cfg, check_protocols)
from repro.analysis.flow.typestate import (_always_raises_summary,
                                           _may_raise_summary,
                                           _release_summary)

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FLOW_FIXTURES = ROOT / "tests" / "fixtures" / "flow"


def _codes(source):
    return {finding.rule for finding in analyze_source(source)}


def _fn(source):
    """The first function definition in ``source``, as an AST node."""
    tree = ast.parse(source)
    return next(node for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef))


def _classify_by_name(strengths):
    """A classifier mapping called names to strengths (default weak)."""
    def classify(call):
        name = getattr(call.func, "id", "")
        return strengths.get(name, "weak")
    return classify


def _stmt_nodes_at_line(cfg, line):
    return [node for node in cfg.nodes.values()
            if node.kind in ("stmt", "noreturn")
            and node.stmt is not None and node.line == line]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
def test_cfg_linear_function_exits_normally():
    cfg = build_cfg(_fn("def f(x):\n    y = x + 1\n    return y\n"))
    assert cfg.exits_normally()


def test_cfg_unconditional_raise_never_exits_normally():
    cfg = build_cfg(_fn("def f(x):\n    raise ValueError(x)\n"))
    assert not cfg.exits_normally()
    assert cfg.raise_exit in cfg.reachable()


def test_cfg_weak_call_outside_try_has_no_exception_edge():
    """Unresolved calls outside a try never raise in the model — the
    quiet half of the two-tier policy."""
    cfg = build_cfg(_fn("def f(x):\n    g(x)\n    return x\n"))
    assert all(not succ for succ in cfg.exc_succ.values())


def test_cfg_weak_call_inside_try_routes_to_the_handler():
    cfg = build_cfg(_fn(
        "def f(x):\n"
        "    try:\n"
        "        g(x)\n"
        "    except ValueError:\n"
        "        return 0\n"
        "    return 1\n"))
    (call_node,) = _stmt_nodes_at_line(cfg, 3)
    kinds = {cfg.nodes[succ].kind for succ in cfg.exc_succ[call_node.nid]}
    assert kinds == {"handler"}


def test_cfg_strong_call_outside_try_routes_to_raise_exit():
    cfg = build_cfg(
        _fn("def f(x):\n    boom(x)\n    return x\n"),
        classify=_classify_by_name({"boom": "strong"}))
    (call_node,) = _stmt_nodes_at_line(cfg, 2)
    assert cfg.exc_succ[call_node.nid] == [cfg.raise_exit]


def test_cfg_always_raising_call_never_falls_through():
    cfg = build_cfg(
        _fn("def f(x):\n    fail(x)\n    return 1\n"),
        classify=_classify_by_name({"fail": "always"}))
    (call_node,) = _stmt_nodes_at_line(cfg, 2)
    assert call_node.kind == "noreturn"
    assert not cfg.exits_normally()


def test_cfg_finally_is_duplicated_per_continuation_kind():
    """Normal fall-through, exception propagation and early return each
    flow through their own copy of the finally body."""
    cfg = build_cfg(_fn(
        "def f(x):\n"
        "    try:\n"
        "        if x:\n"
        "            return g(x)\n"
        "        h(x)\n"
        "    finally:\n"
        "        k(x)\n"
        "    return 2\n"))
    assert len(_stmt_nodes_at_line(cfg, 7)) == 3


def test_cfg_return_through_finally_reaches_exit():
    cfg = build_cfg(_fn(
        "def f(x):\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        k(x)\n"))
    assert cfg.exits_normally()


# ----------------------------------------------------------------------
# Interprocedural summaries
# ----------------------------------------------------------------------
def test_may_raise_propagates_to_transitive_callers():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "def leaf():\n"
        "    raise ValueError()\n"
        "def mid():\n"
        "    leaf()\n"
        "def top():\n"
        "    mid()\n"
        "def bystander():\n"
        "    return 1\n")})
    summary = _may_raise_summary(project, FlowEngine(project))
    assert {"m.leaf", "m.mid", "m.top"} <= summary
    assert "m.bystander" not in summary


def test_always_raises_requires_no_normal_exit():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "def nope():\n"
        "    raise RuntimeError()\n"
        "def maybe(x):\n"
        "    if x:\n"
        "        raise RuntimeError()\n"
        "    return x\n")})
    always = _always_raises_summary(project)
    assert "m.nope" in always
    assert "m.maybe" not in always


def test_release_summary_names_the_released_params():
    project = Project.from_sources({"m.py": (
        '"""M."""\n'
        "def shutdown(conn, tag):\n"
        "    conn.close()\n")})
    out = _release_summary(project, {"close"})
    assert out["m.shutdown"] == {"conn"}


# ----------------------------------------------------------------------
# TP301: acquire without release on every path
# ----------------------------------------------------------------------
def test_tp301_leak_on_the_normal_exit():
    source = (
        "def run(flash, trace):\n"
        "    flash.enter_fast_mode()\n"
        "    flash.serve(trace)\n"
    )
    assert _codes(source) == {"TP301"}


def test_tp301_leak_on_the_exception_edge_only():
    """The release exists on the normal path; a resolved may-raise
    callee opens an exception path that skips it."""
    source = (
        "def boom(trace):\n"
        "    if not trace:\n"
        "        raise ValueError(trace)\n"
        "    return trace\n"
        "def run(flash, trace):\n"
        "    flash.enter_fast_mode()\n"
        "    boom(trace)\n"
        "    flash.exit_fast_mode()\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP301"]
    assert len(findings) == 1
    assert "exception path" in findings[0].message


def test_tp301_try_finally_guard_is_clean():
    source = (
        "def boom(trace):\n"
        "    if not trace:\n"
        "        raise ValueError(trace)\n"
        "    return trace\n"
        "def run(flash, trace):\n"
        "    flash.enter_fast_mode()\n"
        "    try:\n"
        "        boom(trace)\n"
        "    finally:\n"
        "        flash.exit_fast_mode()\n"
    )
    assert _codes(source) == set()


def test_tp301_weak_calls_outside_try_stay_quiet():
    """Unknown callees between acquire and release do not fabricate an
    exception path — only resolved may-raise callees do."""
    source = (
        "def run(flash, trace):\n"
        "    flash.enter_fast_mode()\n"
        "    flash.serve(trace)\n"
        "    flash.exit_fast_mode()\n"
    )
    assert _codes(source) == set()


def test_tp301_pragma_suppression():
    source = (
        "def run(flash, trace):\n"
        "    flash.enter_fast_mode()  # tp: allow=TP301 - caller exits\n"
        "    flash.serve(trace)\n"
    )
    assert _codes(source) == set()


# ----------------------------------------------------------------------
# TP302: release/use without a dominating acquire
# ----------------------------------------------------------------------
def test_tp302_double_release():
    source = (
        "def run(flash):\n"
        "    flash.enter_fast_mode()\n"
        "    flash.exit_fast_mode()\n"
        "    flash.exit_fast_mode()\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP302"]
    assert len(findings) == 1
    assert findings[0].line == 4
    assert "double release" in findings[0].message


def test_tp302_use_after_release():
    source = (
        "def run(flash):\n"
        "    flash.enter_fast_mode()\n"
        "    flash.exit_fast_mode()\n"
        "    flash.fold_stats()\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP302"]
    assert len(findings) == 1
    assert findings[0].line == 4


def test_tp302_interprocedural_release_then_close_again():
    """The "releases what it was passed" summary turns the helper call
    into a release, so the second close is a double release."""
    source = (
        "def shutdown(conn):\n"
        "    conn.close()\n"
        "def run(ctx):\n"
        "    parent, child = ctx.Pipe()\n"
        "    child.close()\n"
        "    shutdown(parent)\n"
        "    parent.close()\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP302"]
    assert len(findings) == 1
    assert findings[0].line == 7


def test_tp302_escaped_resource_is_never_reported():
    """Passing the connection to an unknown sink transfers ownership;
    whatever happens to it afterwards is the sink's problem."""
    source = (
        "def run(ctx, sink):\n"
        "    parent, child = ctx.Pipe()\n"
        "    child.close()\n"
        "    sink.consume(parent)\n"
        "    parent.close()\n"
    )
    assert _codes(source) == set()


# ----------------------------------------------------------------------
# TP303: worker/pipe lifecycle
# ----------------------------------------------------------------------
def test_tp303_started_process_never_joined():
    source = (
        "def launch(ctx, fn):\n"
        "    process = ctx.Process(target=fn)\n"
        "    process.start()\n"
    )
    assert _codes(source) == {"TP303"}


def test_tp303_unstarted_process_is_not_live_yet():
    source = (
        "def prepare(ctx, fn):\n"
        "    process = ctx.Process(target=fn)\n"
        "    return process\n"
    )
    assert _codes(source) == set()


def test_tp303_handoff_into_a_table_is_ownership_transfer():
    source = (
        "def launch(self, ctx, fn):\n"
        "    process = ctx.Process(target=fn)\n"
        "    process.start()\n"
        "    self._running['k'] = process\n"
    )
    assert _codes(source) == set()


def test_tp303_one_pipe_end_left_open():
    source = (
        "def make(ctx):\n"
        "    parent, child = ctx.Pipe(duplex=False)\n"
        "    child.close()\n"
    )
    findings = [f for f in analyze_source(source) if f.rule == "TP303"]
    assert len(findings) == 1
    assert "'parent'" in findings[0].message


# ----------------------------------------------------------------------
# TP304: reset-before-run ordering
# ----------------------------------------------------------------------
_TP304_CLASS = (
    "class Dev:\n"
    "    def _reset_state(self):\n"
    "        self.total = 0\n"
    "    def serve_request(self, request):\n"
    "        self.total += 1\n"
    "    def run(self, trace):\n"
    "{run_body}"
)


def test_tp304_run_without_reset_is_flagged():
    source = _TP304_CLASS.format(run_body=(
        "        for request in trace:\n"
        "            self.serve_request(request)\n"))
    assert "TP304" in _codes(source)


def test_tp304_reset_dominating_the_dispatch_is_clean():
    source = _TP304_CLASS.format(run_body=(
        "        self._reset_state()\n"
        "        for request in trace:\n"
        "            self.serve_request(request)\n"))
    assert "TP304" not in _codes(source)


def test_tp304_classes_without_a_reset_method_are_out_of_scope():
    source = (
        "class Pump:\n"
        "    def serve_request(self, request):\n"
        "        return request\n"
        "    def run(self, trace):\n"
        "        for request in trace:\n"
        "            self.serve_request(request)\n"
    )
    assert "TP304" not in _codes(source)


# ----------------------------------------------------------------------
# TP305: with-able resources outside with/try-finally
# ----------------------------------------------------------------------
def test_tp305_manual_open_close_pair():
    source = (
        "def load(path):\n"
        "    handle = open(path)\n"
        "    data = handle.read()\n"
        "    handle.close()\n"
        "    return data\n"
    )
    assert _codes(source) == {"TP305"}


def test_tp305_with_block_is_clean():
    source = (
        "def load(path):\n"
        "    with open(path) as handle:\n"
        "        return handle.read()\n"
    )
    assert _codes(source) == set()


def test_tp305_try_finally_close_is_clean():
    source = (
        "def load(path):\n"
        "    handle = open(path)\n"
        "    try:\n"
        "        return handle.read()\n"
        "    finally:\n"
        "        handle.close()\n"
    )
    assert _codes(source) == set()


# ----------------------------------------------------------------------
# Pragma-declared specs
# ----------------------------------------------------------------------
def test_protocol_pragma_declares_a_module_scoped_spec():
    project = Project.from_sources({
        "a.py": (
            '"""A."""\n'
            "# tp: protocol(name=gate, acquire=grab, release=drop)\n"
            "def hold(dev):\n"
            "    dev.grab()\n"),
        "b.py": (
            '"""B."""\n'
            "def hold(dev):\n"
            "    dev.grab()\n"),
    })
    findings = check_protocols(project)
    assert [(f.path, f.rule) for f in findings] == [("a.py", "TP301")]


def test_protocol_pragma_balanced_pair_is_clean():
    project = Project.from_sources({"a.py": (
        '"""A."""\n'
        "# tp: protocol(name=gate, acquire=grab, release=drop)\n"
        "def hold(dev):\n"
        "    dev.grab()\n"
        "    dev.drop()\n")})
    assert check_protocols(project) == []


# ----------------------------------------------------------------------
# The PR-6 supervisor bug class (mutation pair)
# ----------------------------------------------------------------------
def test_tp303_flags_the_leaky_supervisor_fixture():
    findings = analyze_paths(
        [str(FLOW_FIXTURES / "flow_supervisor_leak.py")])
    assert {f.rule for f in findings} == {"TP303"}
    leaked = " | ".join(f.message for f in findings)
    assert "'parent_conn'" in leaked
    assert "'process'" in leaked


def test_fixed_supervisor_is_protocol_clean():
    findings = analyze_paths(
        [str(SRC / "repro" / "experiments" / "supervisor.py")])
    assert [f for f in findings if f.rule in PROTOCOL_RULES] == []
