"""The four paper presets match Table 4's workload character."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (PRESET_NAMES, characterize, financial1,
                             financial2, make_preset, msr_src, msr_ts)

N = 8000


class TestTable4Character:
    def test_financial1_write_intensive_random(self):
        stats = characterize(financial1(num_requests=N))
        assert stats.write_ratio == pytest.approx(0.779, abs=0.02)
        assert stats.avg_request_kb < 6.0
        assert stats.seq_read_fraction < 0.05
        assert stats.seq_write_fraction < 0.05

    def test_financial2_read_intensive(self):
        stats = characterize(financial2(num_requests=N))
        assert stats.write_ratio == pytest.approx(0.18, abs=0.02)
        assert stats.seq_read_fraction < 0.05

    def test_msr_ts_write_dominant_sequential(self):
        stats = characterize(msr_ts(num_requests=N))
        assert stats.write_ratio == pytest.approx(0.824, abs=0.02)
        assert stats.avg_request_kb > 6.0       # ~9KB requests
        assert stats.seq_read_fraction > 0.15   # strong read runs
        assert stats.seq_write_fraction > 0.2

    def test_msr_src_write_dominant(self):
        stats = characterize(msr_src(num_requests=N))
        assert stats.write_ratio == pytest.approx(0.887, abs=0.02)
        assert stats.seq_write_fraction > 0.15
        # src is less read-sequential than ts (22.6% vs 47.2%)
        ts = characterize(msr_ts(num_requests=N))
        assert stats.seq_read_fraction < ts.seq_read_fraction

    def test_msr_address_space_larger_than_financial(self):
        assert (msr_ts(num_requests=10).logical_pages
                > financial1(num_requests=10).logical_pages)

    def test_financial_has_stronger_locality_pressure(self):
        """Financial working sets are large relative to the cache; MSR
        accesses concentrate (the paper's hit-ratio asymmetry)."""
        fin = characterize(financial1(num_requests=N))
        msr = characterize(msr_ts(num_requests=N))
        assert fin.footprint_fraction > msr.footprint_fraction


class TestPresetPlumbing:
    def test_make_preset_by_name(self):
        for name in PRESET_NAMES:
            trace = make_preset(name, num_requests=50)
            assert len(trace) == 50
            assert trace.name == name

    def test_unknown_preset(self):
        with pytest.raises(WorkloadError):
            make_preset("nope")

    def test_custom_sizing(self):
        trace = financial1(logical_pages=4096, num_requests=100)
        assert trace.logical_pages == 4096
        assert trace.max_lpn() < 4096

    def test_seed_changes_trace(self):
        a = financial1(num_requests=100, seed=1)
        b = financial1(num_requests=100, seed=99)
        assert [r.lpn for r in a] != [r.lpn for r in b]
