"""The TP-rule AST lint pass: rules, pragmas, baseline, CLI exit codes."""

import pathlib

import pytest

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.__main__ import main
from repro.analysis.lint import (load_baseline, partition_findings,
                                 write_baseline)

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FIXTURE = ROOT / "tests" / "fixtures" / "tp_violations.py"


# ----------------------------------------------------------------------
# The two acceptance gates: src lints clean, the fixture lints dirty
# ----------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    assert lint_paths([str(SRC)]) == []


def test_fixture_triggers_every_rule():
    findings = lint_paths([str(FIXTURE)])
    fired = {finding.rule for finding in findings}
    assert fired == set(RULES)
    # exactly one violation was planted per rule
    assert len(findings) == len(RULES)


def test_cli_exit_codes(capsys):
    assert main(["lint", str(SRC), "--no-baseline"]) == 0
    assert main(["lint", str(FIXTURE), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "[TP003]" in out
    assert "tp_violations.py" in out


# ----------------------------------------------------------------------
# Per-rule unit checks
# ----------------------------------------------------------------------
def _codes(source, path="src/repro/sim.py"):
    return {finding.rule for finding in lint_source(source, path)}


def test_tp001_unseeded_random_instance():
    assert "TP001" in _codes("rng = random.Random()\n")
    assert "TP001" not in _codes("rng = random.Random(1215)\n")


def test_tp001_numpy_global_rng():
    assert "TP001" in _codes("x = np.random.rand(4)\n")


def test_tp002_wall_clock_variants():
    assert "TP002" in _codes("t = time.perf_counter()\n")
    assert "TP002" in _codes("t = datetime.now()\n")


def test_tp003_reports_position():
    findings = lint_source("x = 1\nassert x\n", "src/repro/sim.py")
    assert [(f.rule, f.line) for f in findings] == [("TP003", 2)]
    assert findings[0].render().startswith("src/repro/sim.py:2:0 [TP003]")


def test_tp004_setattr_and_augassign():
    assert "TP004" in _codes("object.__setattr__(cfg, 'x', 1)\n")
    assert "TP004" in _codes("self.config.interval += 1\n")
    assert "TP004" not in _codes("self.metrics.hits += 1\n")


def test_tp005_transitive_subclass():
    source = ("class Mid(LRUNode):\n"
              "    __slots__ = ('x',)\n"
              "class Leaf(Mid):\n"
              "    pass\n")
    findings = lint_source(source)
    assert [f.rule for f in findings] == ["TP005"]
    assert "Leaf" in findings[0].message


def test_tp006_only_flags_non_flash_receivers():
    assert "TP006" in _codes("block.erase()\n")
    assert "TP006" not in _codes("self.flash.erase(3)\n")
    # modules inside the flash package implement the ops themselves
    assert "TP006" not in _codes("block.erase()\n",
                                 path="src/repro/flash/flash.py")


def test_pragma_suppression():
    dirty = "t = time.time()\n"
    allowed = "t = time.time()  # tp: allow=TP002 - progress display\n"
    assert "TP002" in _codes(dirty)
    assert _codes(allowed) == set()


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
def test_baseline_roundtrip(tmp_path):
    findings = lint_paths([str(FIXTURE)])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    new, grandfathered = partition_findings(findings, baseline)
    assert new == []
    assert len(grandfathered) == len(findings)
    # the CLI accepts the grandfathered state as clean
    assert main(["lint", str(FIXTURE),
                 "--baseline", str(baseline_path)]) == 0


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


def test_rules_subcommand(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    assert "TP001" in out and "TP006" in out
    assert "SAN001" in out and "SAN009" in out
