"""Tests of the shared FTL machinery via the optimal FTL (no cache
policy in the way) — prefill, write path, GC of both block kinds."""

import pytest

from repro.config import SimulationConfig, SSDConfig
from repro.errors import TranslationError
from repro.ftl import DFTL, OptimalFTL
from repro.types import Op, Request, UNMAPPED


@pytest.fixture
def optimal(tiny_config) -> OptimalFTL:
    return OptimalFTL(tiny_config)


class TestPrefill:
    def test_every_lpn_mapped(self, optimal):
        assert all(ppn != UNMAPPED for ppn in optimal.flash_table)

    def test_prefill_resets_stats(self, optimal):
        assert optimal.flash.stats.total_writes == 0
        assert optimal.metrics.user_page_accesses == 0

    def test_consistency_after_prefill(self, optimal):
        optimal.check_consistency()

    def test_prefill_with_translation_pages(self, tiny_config):
        ftl = DFTL(tiny_config)
        for vtpn in range(ftl.geometry.translation_pages):
            assert ftl.gtd.is_mapped(vtpn)
        ftl.check_consistency()


class TestReadWritePath:
    def test_read_costs_one_data_read(self, optimal):
        result = optimal.read_page(7)
        assert result.data_reads == 1
        assert result.data_writes == 0
        assert optimal.metrics.user_page_reads == 1

    def test_write_remaps_and_invalidates(self, optimal):
        old_ppn = optimal.flash_table[7]
        result = optimal.write_page(7)
        assert result.data_writes == 1
        new_ppn = optimal.flash_table[7]
        assert new_ppn != old_ppn
        old_block = optimal.flash.block_of(old_ppn)
        assert old_block.meta(optimal.flash.offset_of(old_ppn)) is None

    def test_read_reflects_latest_write(self, optimal):
        optimal.write_page(3)
        ppn = optimal.flash_table[3]
        assert optimal.flash.read(ppn, __import__(
            "repro.types", fromlist=["PageKind"]).PageKind.DATA) == 3

    def test_out_of_range_lpn_rejected(self, optimal):
        with pytest.raises(TranslationError):
            optimal.read_page(optimal.ssd.logical_pages)

    def test_serve_request_spans_pages(self, optimal):
        request = Request(arrival=0.0, op=Op.WRITE, lpn=10, npages=4)
        result = optimal.serve_request(request)
        assert result.data_writes == 4
        assert optimal.metrics.user_page_writes == 4


class TestGarbageCollection:
    def overwrite(self, ftl, rounds=30):
        """Hammer a few pages so GC must trigger."""
        for round_ in range(rounds):
            for lpn in range(16):
                ftl.write_page(lpn)

    def test_gc_triggers_and_recovers_space(self, optimal):
        self.overwrite(optimal)
        assert optimal.metrics.gc_data_collections > 0
        threshold = (optimal.ssd.gc_threshold_blocks
                     + optimal.ssd.gc_reserve_blocks)
        assert optimal.flash.free_block_count >= threshold

    def test_gc_preserves_consistency(self, optimal):
        self.overwrite(optimal)
        optimal.check_consistency()

    def test_gc_migrations_counted(self, optimal):
        self.overwrite(optimal)
        metrics = optimal.metrics
        assert (metrics.data_writes_migration
                == metrics.data_reads_migration)
        assert (metrics.gc_data_valid_migrated
                == metrics.data_writes_migration)

    def test_optimal_never_touches_translation_pages(self, optimal):
        self.overwrite(optimal)
        assert optimal.metrics.translation_page_reads == 0
        assert optimal.metrics.translation_page_writes == 0
        assert optimal.metrics.erases_translation == 0

    def test_translation_blocks_collected_for_dftl(self, tiny_config):
        ftl = DFTL(tiny_config)
        # write across the whole space repeatedly: dirty evictions write
        # translation pages until translation blocks need GC too
        for round_ in range(12):
            for lpn in range(0, ftl.ssd.logical_pages, 3):
                ftl.write_page(lpn)
        assert ftl.metrics.trans_writes_writeback > 0
        assert ftl.metrics.erases_translation > 0
        ftl.check_consistency()

    def test_gc_hit_updates_cache_not_flash(self, tiny_config):
        ftl = DFTL(tiny_config)
        self_writes = 40
        for _ in range(self_writes):
            ftl.write_page(0)  # stays cached: GC updates should hit
        assert ftl.metrics.gc_update_hits >= 0  # smoke: no crash
        ftl.check_consistency()


class TestFlush:
    def test_flush_empties_dirty_set(self, tiny_config):
        ftl = DFTL(tiny_config)
        for lpn in range(8):
            ftl.write_page(lpn)
        assert ftl._dirty_entries_by_page()
        ftl.flush()
        assert not ftl._dirty_entries_by_page()

    def test_flush_makes_cache_agree_with_flash(self, tiny_config):
        ftl = DFTL(tiny_config)
        for lpn in range(8):
            ftl.write_page(lpn)
        ftl.flush()
        for lpn in range(ftl.ssd.logical_pages):
            cached = ftl.cache_peek(lpn)
            if cached is not None:
                assert cached == ftl.flash_table[lpn]

    def test_flush_counts_writebacks(self, tiny_config):
        ftl = DFTL(tiny_config)
        ftl.write_page(0)
        before = ftl.metrics.trans_writes_writeback
        ftl.flush()
        assert ftl.metrics.trans_writes_writeback > before


class TestWearLeveling:
    def test_wear_leveler_forces_collections(self):
        from repro.gc import WearLeveler
        config = SimulationConfig(ssd=SSDConfig(
            logical_pages=512, page_size=256, pages_per_block=8))
        leveler = WearLeveler(threshold=3)
        ftl = OptimalFTL(config, wear_leveler=leveler)
        for round_ in range(200):
            for lpn in range(8):
                ftl.write_page(lpn)
        assert leveler.forced_collections > 0
        # leveling keeps the spread near the threshold
        counts = [b.erase_count for b in ftl.flash.blocks]
        assert max(counts) - min(counts) <= 3 * leveler.threshold
        ftl.check_consistency()
