"""Fault injection: deterministic plans, ECC retries, bad-block
management, and graceful wear-out across the FTL zoo."""

import random

import pytest

from repro.config import SimulationConfig, SSDConfig
from repro.errors import (ConfigError, DeviceWornOutError, FlashError,
                          PowerLossError, ProgramError, ReadError)
from repro.faults import FaultInjector, FaultPlan
from repro.flash import FlashMemory
from repro.ftl import make_ftl
from repro.recovery import verify_recovery
from repro.types import BlockKind, PageKind, PageState

from test_integration import ALL_FTLS, config_for


def faulty_ssd(**kwargs) -> SSDConfig:
    defaults = dict(logical_pages=512, page_size=256, pages_per_block=8)
    defaults.update(kwargs)
    return SSDConfig(**defaults)


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert not plan.injects_media_faults

    @pytest.mark.parametrize("field, value", [
        ("read_error_rate", -0.1), ("read_error_rate", 1.5),
        ("program_fail_rate", 2.0), ("erase_fail_rate", -1.0),
        ("max_read_retries", -1), ("bad_page_retire_fraction", 0.0),
        ("bad_page_retire_fraction", 1.5), ("power_cut_after_ops", -3),
    ])
    def test_invalid_plans_rejected(self, field, value):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: value})

    def test_config_knobs_reach_the_injector(self):
        ssd = faulty_ssd(read_error_rate=0.25, program_fail_rate=0.125,
                         erase_fail_rate=0.0625, fault_seed=42,
                         max_read_retries=3)
        ftl = make_ftl("dftl", SimulationConfig(ssd=ssd))
        plan = ftl.flash.injector.plan
        assert plan.read_error_rate == 0.25
        assert plan.program_fail_rate == 0.125
        assert plan.erase_fail_rate == 0.0625
        assert plan.seed == 42
        assert plan.max_read_retries == 3

    def test_config_validates_rates(self):
        with pytest.raises(ConfigError):
            faulty_ssd(read_error_rate=1.5)


class TestInjectorDeterminism:
    def test_same_seed_same_faults(self):
        def sequence(seed):
            inj = FaultInjector(FaultPlan(seed=seed,
                                          program_fail_rate=0.3))
            return [inj.program_fails() for _ in range(200)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_zero_rates_never_roll_the_rng(self):
        inj = FaultInjector(FaultPlan(seed=1))
        before = inj._rng.getstate()
        for _ in range(50):
            assert not inj.read_attempt_fails()
            assert not inj.program_fails()
            assert not inj.erase_fails()
        assert inj._rng.getstate() == before

    def test_operation_counter_advances(self):
        inj = FaultInjector()
        for _ in range(5):
            inj.on_operation()
        assert inj.ops_seen == 5


class TestReadFaults:
    def test_transient_errors_recovered_and_counted(self):
        ssd = faulty_ssd(read_error_rate=0.4, fault_seed=3)
        ftl = make_ftl("optimal", SimulationConfig(ssd=ssd))
        for lpn in range(64):
            ftl.read_page(lpn)
        stats = ftl.flash.stats
        assert stats.ecc_recovered_reads > 0
        assert stats.read_retries >= stats.ecc_recovered_reads
        assert stats.read_backoff_us > 0
        assert stats.uncorrectable_reads == 0

    def test_certain_failure_exhausts_retry_budget(self):
        ssd = faulty_ssd(read_error_rate=1.0, max_read_retries=3)
        ftl = make_ftl("optimal", SimulationConfig(ssd=ssd))
        with pytest.raises(ReadError):
            ftl.read_page(0)
        stats = ftl.flash.stats
        assert stats.uncorrectable_reads == 1
        assert stats.read_retries == 3

    def test_read_error_is_flash_error(self):
        assert issubclass(ReadError, FlashError)


class TestProgramFaults:
    def test_failed_program_marks_page_bad_and_retries(self):
        ssd = faulty_ssd()
        flash = FlashMemory(ssd)
        # fail exactly the first attempt
        flash.injector.program_fails = iter([True, False]).__next__
        ppn = flash.program(PageKind.DATA, meta=0)
        block = flash.block_of(ppn)
        assert flash.offset_of(ppn) == 1  # page 0 went bad
        assert block.state(0) is PageState.BAD
        assert block.bad_count == 1
        assert flash.stats.program_failures == 1
        assert flash.bad_page_count == 1

    def test_bad_pages_survive_erase(self):
        ssd = faulty_ssd()
        flash = FlashMemory(ssd)
        # exhaust the block: 1 bad + 7 programmed
        flash.injector.program_fails = (
            lambda it=iter([True] + [False] * 7): next(it))
        ppns = [flash.program(PageKind.DATA, meta=i) for i in range(7)]
        block = flash.block_of(ppns[0])
        for ppn in ppns:
            flash.invalidate(ppn)
        assert flash.erase(block.block_id)
        assert block.state(0) is PageState.BAD
        assert block.free_count == ssd.pages_per_block - 1

    def test_write_pointer_skips_bad_pages_after_erase(self):
        ssd = faulty_ssd()
        flash = FlashMemory(ssd)
        flash.injector.program_fails = (
            lambda it=iter([True] + [False] * 100): next(it))
        first = flash.program(PageKind.DATA, meta=0)
        block = flash.block_of(first)
        ppns = [first] + [flash.program(PageKind.DATA, meta=i)
                          for i in range(1, 7)]
        for ppn in ppns:
            flash.invalidate(ppn)
        flash.erase(block.block_id)
        block.kind = BlockKind.DATA
        # offset 0 is bad: the next program of this block lands at 1
        assert block.program(meta=9, seq=1) == 1

    def test_mark_bad_rejects_free_region_blocks(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        with pytest.raises(ProgramError):
            flash.blocks[0].mark_bad()


class TestEraseFaultsAndRetirement:
    def _full_invalid_block(self, flash):
        ppns = [flash.program(PageKind.DATA, meta=i) for i in range(8)]
        for ppn in ppns:
            flash.invalidate(ppn)
        return flash.block_of(ppns[0])

    def test_erase_failure_retires_the_block(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        block = self._full_invalid_block(flash)
        flash.injector.erase_fails = lambda: True
        assert flash.erase(block.block_id) is False
        assert block.kind is BlockKind.RETIRED
        assert block.block_id in flash.retired_block_ids
        assert flash.stats.erase_failures == 1
        assert flash.stats.retired_blocks == 1
        # retired blocks never return to the free pool
        assert block.block_id not in flash._free

    def test_retired_block_rejects_further_erases(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        block = self._full_invalid_block(flash)
        flash.injector.erase_fails = lambda: True
        flash.erase(block.block_id)
        flash.injector.erase_fails = lambda: False
        with pytest.raises(FlashError):
            flash.erase(block.block_id)

    def test_bad_page_threshold_retires_on_erase(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        # 4 of 8 pages bad = the default 0.5 retirement threshold
        fails = iter([True] * 4 + [False] * 100)
        flash.injector.program_fails = lambda: next(fails)
        ppns = [flash.program(PageKind.DATA, meta=i) for i in range(4)]
        block = flash.block_of(ppns[0])
        assert block.bad_count == 4
        for ppn in ppns:
            flash.invalidate(ppn)
        assert flash.erase(block.block_id) is False
        assert block.kind is BlockKind.RETIRED

    def test_spare_exhaustion_raises_worn_out(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        flash.injector.erase_fails = lambda: True
        spares = tiny_ssd.spare_blocks
        assert spares > 0
        with pytest.raises(DeviceWornOutError):
            for _ in range(spares + 1):
                block = self._full_invalid_block(flash)
                flash.erase(block.block_id)
        assert flash.retired_block_count == spares + 1
        assert flash.spare_blocks_remaining < 0

    def test_worn_out_is_flash_error(self):
        assert issubclass(DeviceWornOutError, FlashError)


class TestEndToEndDegradation:
    @pytest.mark.parametrize("name", ("dftl", "tpftl", "zftl",
                                      "optimal"))
    def test_low_rates_stay_consistent(self, name):
        ssd = faulty_ssd(read_error_rate=0.01, program_fail_rate=0.002,
                         fault_seed=11)
        ftl = make_ftl(name, SimulationConfig(ssd=ssd))
        rng = random.Random(1)
        for _ in range(1500):
            ftl.write_page(rng.randrange(512))
        verify_recovery(ftl)
        assert ftl.flash.stats.program_failures > 0
        assert ftl.flash.bad_page_count > 0

    @pytest.mark.parametrize("name", ("dftl", "tpftl", "optimal"))
    def test_heavy_faults_end_in_worn_out_not_crash(self, name):
        ssd = faulty_ssd(read_error_rate=0.02, program_fail_rate=0.02,
                         erase_fail_rate=0.02, fault_seed=7)
        ftl = make_ftl(name, SimulationConfig(ssd=ssd))
        rng = random.Random(1)
        with pytest.raises(DeviceWornOutError):
            for _ in range(100_000):
                ftl.write_page(rng.randrange(512))

    @pytest.mark.parametrize("name", ("block", "hybrid"))
    def test_block_mapped_ftls_reject_program_faults(self, name):
        ssd = faulty_ssd(program_fail_rate=0.1)
        with pytest.raises(ConfigError):
            make_ftl(name, SimulationConfig(ssd=ssd))

    @pytest.mark.parametrize("name", ("block", "hybrid"))
    def test_block_mapped_ftls_take_read_and_erase_faults(self, name):
        ssd = faulty_ssd(read_error_rate=0.02, erase_fail_rate=0.005,
                         fault_seed=5)
        ftl = make_ftl(name, SimulationConfig(ssd=ssd))
        rng = random.Random(2)
        try:
            for _ in range(1200):
                ftl.write_page(rng.randrange(512))
        except DeviceWornOutError:
            pass  # graceful wear-out is an acceptable ending
        assert ftl.flash.stats.ecc_recovered_reads > 0

    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_no_faults_by_default(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(3)
        for _ in range(300):
            ftl.write_page(rng.randrange(512))
        assert ftl.flash.stats.fault_summary() == {
            "read_retries": 0, "ecc_recovered_reads": 0,
            "uncorrectable_reads": 0, "read_backoff_us": 0.0,
            "program_failures": 0, "erase_failures": 0,
            "retired_blocks": 0,
        }


class TestDeviceWiring:
    def test_run_result_carries_fault_counters(self, tiny_config):
        from repro.ssd import simulate
        from conftest import make_trace, random_ops
        ssd = faulty_ssd(read_error_rate=0.05, fault_seed=9)
        config = SimulationConfig(ssd=ssd)
        ftl = make_ftl("dftl", config)
        trace = make_trace(random_ops(200, 512, seed=6))
        result = simulate(ftl, trace)
        assert result.faults["ecc_recovered_reads"] > 0
        assert result.summary()["ecc_recovered_reads"] > 0

    def test_spare_blocks_accounting(self, tiny_ssd):
        assert (tiny_ssd.spare_blocks
                == tiny_ssd.physical_blocks
                - tiny_ssd.min_required_blocks)
        assert tiny_ssd.spare_blocks > 0


class TestPowerCutArming:
    def test_cut_fires_at_the_armed_operation(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        flash.injector.arm_power_loss(3)
        for i in range(3):
            flash.program(PageKind.DATA, meta=i)
        with pytest.raises(PowerLossError):
            flash.program(PageKind.DATA, meta=3)
        assert flash.injector.power_cuts == 1

    def test_disarm_restores_service(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        flash.injector.arm_power_loss(0)
        with pytest.raises(PowerLossError):
            flash.program(PageKind.DATA, meta=0)
        flash.injector.disarm_power_loss()
        assert not flash.injector.power_loss_armed
        flash.program(PageKind.DATA, meta=0)

    def test_cut_preserves_completed_state(self, tiny_ssd):
        flash = FlashMemory(tiny_ssd)
        flash.injector.arm_power_loss(2)
        a = flash.program(PageKind.DATA, meta=1)
        b = flash.program(PageKind.DATA, meta=2)
        with pytest.raises(PowerLossError):
            flash.program(PageKind.DATA, meta=3)
        # the two completed programs are intact
        assert flash.block_of(a).meta(flash.offset_of(a)) == 1
        assert flash.block_of(b).meta(flash.offset_of(b)) == 2
