"""The tpftl-sim CLI and JSON exports."""

import json

import pytest

from repro.tools import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.ftl == "tpftl"
        assert args.workload == "financial1"
        assert args.channels == 1

    def test_workload_and_trace_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--workload", "msr-ts", "--trace", "x.spc"])

    def test_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--ftl", "nope"])


class TestMain:
    COMMON = ["--requests", "600", "--warmup", "100",
              "--pages", "4096"]

    def test_table_output(self, capsys):
        assert main(["--ftl", "dftl"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "hit_ratio" in out
        assert "write_amplification" in out

    def test_json_to_stdout(self, capsys):
        assert main(["--json", "-"] + self.COMMON) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ftl"] == "tpftl"
        assert 0.0 <= payload["hit_ratio"] <= 1.0
        assert payload["channels"] == 1

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["--json", str(target)] + self.COMMON) == 0
        payload = json.loads(target.read_text())
        assert payload["requests"] == 500  # 600 - 100 warmup

    def test_cache_fraction(self, capsys):
        assert main(["--cache-fraction", "0.5", "--json", "-"]
                    + self.COMMON) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_bytes"] == 4096 * 8 // 2

    def test_cache_bytes(self, capsys):
        assert main(["--cache-bytes", "2048", "--json", "-"]
                    + self.COMMON) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_bytes"] == 2048

    def test_channels(self, capsys):
        assert main(["--channels", "4", "--json", "-"]
                    + self.COMMON) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["channels"] == 4

    def test_tpftl_monogram(self, capsys):
        assert main(["--tpftl-config", "bc", "--json", "-"]
                    + self.COMMON) == 0

    def test_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.spc"
        trace.write_text("0,0,4096,w,0.0\n0,8,4096,r,0.1\n")
        assert main(["--trace", str(trace), "--pages", "4096",
                     "--warmup", "0", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 2


class TestExperimentJSON:
    def test_result_round_trips_through_json(self):
        from repro.experiments.common import ExperimentResult
        result = ExperimentResult(
            experiment_id="x", title="T", headers=["A"],
            rows=[["v"]], notes="n",
            data={("tuple", 1): {0.5: 1.0}, "plain": [1, 2]})
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "x"
        assert payload["rows"] == [["v"]]
        assert payload["data"]["plain"] == [1, 2]
        # tuple/float keys stringified
        assert "('tuple', 1)" in payload["data"]
