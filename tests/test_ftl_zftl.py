"""ZFTL behaviour: zone residency, switches, first-tier buffering."""

import random

import pytest

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.ftl import ZFTL
from repro.recovery import verify_recovery


def make_zftl(budget: int = 600, switch_threshold: int = 4,
              logical_pages: int = 512) -> ZFTL:
    """A ZFTL whose zone spans a controllable number of pages."""
    ssd = SSDConfig(logical_pages=logical_pages, page_size=256,
                    pages_per_block=8)
    config = SimulationConfig(
        ssd=ssd, cache=CacheConfig(budget_bytes=ssd.gtd_bytes + budget))
    return ZFTL(config, switch_threshold=switch_threshold)


class TestZoneResidency:
    def test_first_access_activates_a_zone(self):
        ftl = make_zftl()
        ftl.read_page(10)
        assert ftl.active_zone == ftl.zone_of(10)
        assert ftl.zone_switches == 1

    def test_in_zone_accesses_always_hit(self):
        ftl = make_zftl()
        ftl.read_page(0)   # activates zone 0
        hits_before = ftl.metrics.hits
        reads_before = ftl.metrics.translation_page_reads
        span = ftl.zone_tpages * ftl.geometry.entries_per_page
        for lpn in range(0, min(span, 64), 3):
            ftl.read_page(lpn)
        assert ftl.metrics.hits > hits_before
        assert ftl.metrics.translation_page_reads == reads_before

    def test_zone_sized_from_budget(self):
        small = make_zftl(budget=300)
        large = make_zftl(budget=1200)
        assert large.zone_tpages >= small.zone_tpages


class TestZoneSwitching:
    def test_single_stray_does_not_switch(self):
        ftl = make_zftl(switch_threshold=4)
        ftl.read_page(0)
        zone0 = ftl.active_zone
        far = ftl.zone_tpages * ftl.geometry.entries_per_page * 2
        ftl.read_page(far % 512)
        assert ftl.active_zone == zone0

    def test_sustained_strays_switch(self):
        ftl = make_zftl(switch_threshold=3)
        ftl.read_page(0)
        far = (ftl.zone_tpages * ftl.geometry.entries_per_page) % 512
        if ftl.zone_of(far) == ftl.active_zone:
            pytest.skip("zone covers the whole device at this budget")
        for _ in range(3):
            ftl.read_page(far)
        assert ftl.active_zone == ftl.zone_of(far)
        assert ftl.zone_switches == 2

    def test_switch_flushes_dirty_zone(self):
        ftl = make_zftl(switch_threshold=2)
        ftl.write_page(0)
        new_ppn = ftl.cache_peek(0)
        far = (ftl.zone_tpages * ftl.geometry.entries_per_page) % 512
        if ftl.zone_of(far) == ftl.active_zone:
            pytest.skip("zone covers the whole device at this budget")
        for _ in range(2):
            ftl.read_page(far)
        assert ftl.flash_table[0] == new_ppn  # persisted by the flush
        assert not ftl.zone_dirty

    def test_switch_cost_visible_in_translation_reads(self):
        ftl = make_zftl(switch_threshold=1)
        ftl.read_page(0)
        reads_after_first = ftl.metrics.trans_reads_load
        assert reads_after_first >= ftl.zone_tpages


class TestFirstTier:
    def test_out_of_zone_write_lands_in_tier1(self):
        ftl = make_zftl(switch_threshold=100)  # effectively pinned zone
        ftl.read_page(0)
        far = (ftl.zone_tpages * ftl.geometry.entries_per_page) % 512
        if ftl.zone_of(far) == ftl.active_zone:
            pytest.skip("zone covers the whole device at this budget")
        ftl.write_page(far)
        assert far in ftl.tier1

    def test_tier1_overflow_batch_evicts(self):
        ftl = make_zftl(budget=300, switch_threshold=10_000)
        ftl.read_page(0)
        span = ftl.zone_tpages * ftl.geometry.entries_per_page
        writes_before = ftl.metrics.trans_writes_writeback
        lpn = span
        wrote = 0
        while wrote <= ftl.tier1_capacity:
            if ftl.zone_of(lpn % 512) != ftl.active_zone:
                ftl.write_page(lpn % 512)
                wrote += 1
            lpn += 1
        assert ftl.metrics.trans_writes_writeback > writes_before

    def test_tier1_entry_is_a_hit(self):
        ftl = make_zftl(switch_threshold=10_000)
        ftl.read_page(0)
        far = (ftl.zone_tpages * ftl.geometry.entries_per_page) % 512
        if ftl.zone_of(far) == ftl.active_zone:
            pytest.skip("zone covers the whole device at this budget")
        ftl.write_page(far)
        hits = ftl.metrics.hits
        ftl.read_page(far)
        assert ftl.metrics.hits == hits + 1


class TestEndToEnd:
    def test_consistency_and_recovery_after_stress(self):
        ftl = make_zftl(switch_threshold=4)
        rng = random.Random(19)
        for _ in range(700):
            lpn = rng.randrange(512)
            if rng.random() < 0.7:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
        ftl.flush()
        ftl.check_consistency()
        verify_recovery(ftl)

    def test_zoned_locality_wins_over_scattered(self):
        """ZFTL's signature: great when the working set fits one zone,
        poor when accesses ping-pong across zones."""
        rng = random.Random(23)
        zoned = make_zftl(switch_threshold=4)
        span = zoned.zone_tpages * zoned.geometry.entries_per_page
        for _ in range(500):
            zoned.read_page(rng.randrange(min(span, 512)))
        scattered = make_zftl(switch_threshold=4)
        for _ in range(500):
            scattered.read_page(rng.randrange(512))
        assert (zoned.metrics.hit_ratio
                > scattered.metrics.hit_ratio)
