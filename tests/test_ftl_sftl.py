"""S-FTL behaviour: page-granular caching, compression, dirty buffer."""

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.ftl import SFTL
from repro.ftl.sftl import (BUFFER_ENTRY_BYTES, PAGE_HEADER_BYTES,
                            RUN_BYTES, SPARSE_DIRTY_LIMIT)


def make_sftl(budget: int = 1024, buffer_fraction: float = 0.1,
              logical_pages: int = 512) -> SFTL:
    ssd = SSDConfig(logical_pages=logical_pages, page_size=256,
                    pages_per_block=8)
    config = SimulationConfig(
        ssd=ssd,
        cache=CacheConfig(budget_bytes=ssd.gtd_bytes + budget,
                          sftl_dirty_buffer_fraction=buffer_fraction))
    return SFTL(config)


class TestPageGranularCaching:
    def test_miss_loads_whole_page(self):
        ftl = make_sftl()
        ftl.read_page(0)
        assert ftl.metrics.trans_reads_load == 1
        # any entry of the same translation page now hits
        ftl.read_page(63)
        assert ftl.metrics.hits == 1
        assert ftl.metrics.trans_reads_load == 1

    def test_sequential_prefilled_page_compresses_to_one_run(self):
        ftl = make_sftl()
        ftl.read_page(0)
        page = ftl.pages.get(0, touch=False)
        assert page.runs == 1
        assert page.charged_bytes == PAGE_HEADER_BYTES + RUN_BYTES

    def test_fragmented_page_costs_more(self):
        ftl = make_sftl(budget=2048)
        # fragment page 0's mappings with scattered rewrites
        for lpn in (0, 5, 9, 20, 33):
            ftl.write_page(lpn)
        ftl.flush()
        ftl.pages = type(ftl.pages)()  # drop cache state
        ftl.page_budget.used = 0
        ftl.read_page(0)
        page = ftl.pages.get(0, touch=False)
        assert page.runs > 1
        assert page.charged_bytes > PAGE_HEADER_BYTES + RUN_BYTES


class TestReplacement:
    def test_page_evicted_when_budget_full(self):
        # room for two compressed pages (16B each) only
        ftl = make_sftl(budget=40, buffer_fraction=0.0)
        epp = ftl.geometry.entries_per_page
        for vtpn in range(4):
            ftl.read_page(vtpn * epp)
        assert ftl.metrics.replacements > 0

    def test_clean_page_eviction_free(self):
        ftl = make_sftl(budget=40, buffer_fraction=0.0)
        epp = ftl.geometry.entries_per_page
        for vtpn in range(4):
            ftl.read_page(vtpn * epp)
        assert ftl.metrics.translation_page_writes == 0
        assert ftl.metrics.dirty_replacements == 0

    def test_dirty_page_writeback_is_single_program(self):
        """Eq. 1 footnote: S-FTL victims are whole pages, written back
        in Tfw without a read-modify-write read."""
        ftl = make_sftl(budget=40, buffer_fraction=0.0)
        epp = ftl.geometry.entries_per_page
        ftl.write_page(0)
        reads_before = ftl.metrics.trans_reads_writeback
        for vtpn in range(1, 4):
            ftl.read_page(vtpn * epp)
        assert ftl.metrics.dirty_replacements >= 1
        assert ftl.metrics.trans_writes_writeback >= 1
        assert ftl.metrics.trans_reads_writeback == reads_before

    def test_dirty_eviction_persists_values(self):
        ftl = make_sftl(budget=40, buffer_fraction=0.0)
        epp = ftl.geometry.entries_per_page
        ftl.write_page(0)
        new_ppn = ftl.cache_peek(0)
        for vtpn in range(1, 4):
            ftl.read_page(vtpn * epp)
        assert ftl.flash_table[0] == new_ppn


class TestDirtyBuffer:
    def test_sparse_dirty_page_parks_in_buffer(self):
        ftl = make_sftl(budget=256, buffer_fraction=0.5)
        epp = ftl.geometry.entries_per_page
        ftl.write_page(0)  # one dirty entry: sparse
        writes_before = ftl.metrics.trans_writes_writeback
        for vtpn in range(1, 6):
            ftl.read_page(vtpn * epp)
        # the sparse page avoided a writeback via the buffer
        if 0 not in ftl.pages:
            assert 0 in ftl.buffer
            assert ftl.metrics.trans_writes_writeback == writes_before

    def test_buffered_entry_still_hits(self):
        ftl = make_sftl(budget=256, buffer_fraction=0.5)
        epp = ftl.geometry.entries_per_page
        ftl.write_page(0)
        for vtpn in range(1, 6):
            ftl.read_page(vtpn * epp)
        if 0 in ftl.buffer:
            hits_before = ftl.metrics.hits
            ftl.read_page(0)
            assert ftl.metrics.hits == hits_before + 1

    def test_densely_dirty_page_not_buffered(self):
        ftl = make_sftl(budget=256, buffer_fraction=0.5)
        epp = ftl.geometry.entries_per_page
        for lpn in range(SPARSE_DIRTY_LIMIT + 2):
            ftl.write_page(lpn)
        for vtpn in range(1, 6):
            ftl.read_page(vtpn * epp)
        assert 0 not in ftl.buffer

    def test_zero_buffer_fraction_disables_buffer(self):
        ftl = make_sftl(budget=256, buffer_fraction=0.0)
        assert ftl.buffer_budget is None


class TestGCIntegration:
    def test_gc_update_hits_cached_page(self):
        ftl = make_sftl(budget=2048)
        ftl.read_page(0)
        assert ftl._cache_update_if_present(0, 12345)
        assert ftl.cache_peek(0) == 12345

    def test_gc_update_misses_uncached_page(self):
        ftl = make_sftl()
        assert not ftl._cache_update_if_present(0, 12345)

    def test_flush_extras_drains_buffer_group(self):
        ftl = make_sftl(budget=256, buffer_fraction=0.5)
        ftl.buffer[0] = {3: 99}
        ftl.buffer_budget.charge(BUFFER_ENTRY_BYTES)
        extras = ftl._gc_flush_extras(0)
        assert extras == {3: 99}
        assert 0 not in ftl.buffer


class TestEndToEnd:
    def test_mixed_workload_consistency(self, ):
        ftl = make_sftl(budget=128)
        import random
        rng = random.Random(7)
        for _ in range(300):
            lpn = rng.randrange(512)
            if rng.random() < 0.6:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
        ftl.flush()
        ftl.check_consistency()
