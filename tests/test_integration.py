"""Cross-FTL integration tests: every FTL must be a correct block
device, with self-consistent accounting, whatever the cache policy."""

import random

import pytest

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.ftl import make_ftl
from repro.ssd import simulate
from repro.types import Op, Request, Trace

from conftest import make_trace, random_ops

DEMAND_FTLS = ("dftl", "tpftl", "sftl", "cdftl", "zftl")
ALL_FTLS = DEMAND_FTLS + ("optimal", "block", "hybrid")


def config_for(name: str) -> SimulationConfig:
    ssd = SSDConfig(logical_pages=512, page_size=256, pages_per_block=8)
    if name in ("sftl", "cdftl"):
        return SimulationConfig(ssd=ssd,
                                cache=CacheConfig(budget_bytes=2048))
    return SimulationConfig(ssd=ssd)


class TestMappingCorrectness:
    """Replay random ops against a reference dict; all reads must land
    on a flash page whose recorded identity is the right LPN."""

    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_reads_always_see_latest_write(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(101)
        for step in range(800):
            lpn = rng.randrange(512)
            if rng.random() < 0.6:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
            if step % 100 == 0:
                current = ftl.lookup_current(lpn)
                block = ftl.flash.block_of(current)
                assert block.meta(ftl.flash.offset_of(current)) == lpn

    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_consistency_check_passes_after_stress(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(55)
        for _ in range(600):
            lpn = rng.randrange(512)
            if rng.random() < 0.7:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
        if hasattr(ftl, "flush"):
            ftl.flush()
        ftl.check_consistency()

    @pytest.mark.parametrize("name", DEMAND_FTLS)
    def test_every_lpn_readable_after_stress(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(77)
        for _ in range(500):
            ftl.write_page(rng.randrange(512))
        for lpn in range(0, 512, 17):
            ftl.read_page(lpn)  # must not raise


class TestAccountingAgreement:
    """FTL-level cause attribution must sum to the flash ground truth."""

    @pytest.mark.parametrize("name", DEMAND_FTLS)
    def test_translation_write_attribution_sums(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(31)
        for _ in range(700):
            lpn = rng.randrange(512)
            if rng.random() < 0.75:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
        assert (ftl.metrics.translation_page_writes
                == ftl.flash.stats.translation_writes)
        assert (ftl.metrics.translation_page_reads
                == ftl.flash.stats.translation_reads)

    @pytest.mark.parametrize("name", DEMAND_FTLS + ("optimal",))
    def test_data_write_attribution_sums(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(32)
        writes = 0
        for _ in range(600):
            lpn = rng.randrange(512)
            if rng.random() < 0.75:
                ftl.write_page(lpn)
                writes += 1
            else:
                ftl.read_page(lpn)
        assert (ftl.flash.stats.data_writes
                == writes + ftl.metrics.data_writes_migration)

    @pytest.mark.parametrize("name", DEMAND_FTLS)
    def test_erase_attribution_sums(self, name):
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(33)
        for _ in range(800):
            ftl.write_page(rng.randrange(512))
        assert (ftl.metrics.total_erases
                == ftl.flash.stats.total_erases)


class TestDeviceEndToEnd:
    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_full_trace_replay(self, name):
        trace = make_trace(random_ops(400, 512, seed=9))
        result = simulate(make_ftl(name, config_for(name)), trace)
        assert result.requests == 400
        assert result.response.mean > 0.0
        assert result.metrics.user_page_accesses >= 400

    def test_identical_trace_identical_results(self):
        trace = make_trace(random_ops(300, 512, seed=10))
        a = simulate(make_ftl("tpftl", config_for("tpftl")), trace)
        b = simulate(make_ftl("tpftl", config_for("tpftl")), trace)
        assert a.summary() == b.summary()


class TestPaperOrderings:
    """Directional claims of the paper at integration-test scale."""

    @pytest.fixture(scope="class")
    def runs(self):
        rng = random.Random(42)
        requests = []
        clock = 0.0
        # random-dominant write-heavy workload with a hot set
        for _ in range(3000):
            clock += rng.expovariate(1 / 400.0)
            hot = rng.random() < 0.8
            lpn = (rng.randrange(64) * 7) % 512 if hot \
                else rng.randrange(512)
            op = Op.WRITE if rng.random() < 0.8 else Op.READ
            requests.append(Request(arrival=clock, op=op, lpn=lpn,
                                    npages=1))
        trace = Trace(requests=requests, logical_pages=512)
        return {
            name: simulate(make_ftl(name, config_for(name)), trace)
            for name in ("dftl", "tpftl", "optimal")
        }

    def test_tpftl_prd_below_dftl(self, runs):
        assert (runs["tpftl"].metrics.p_replace_dirty
                < runs["dftl"].metrics.p_replace_dirty)

    def test_tpftl_translation_writes_below_dftl(self, runs):
        assert (runs["tpftl"].metrics.translation_page_writes
                < runs["dftl"].metrics.translation_page_writes)

    def test_optimal_bounds_everyone(self, runs):
        for name in ("dftl", "tpftl"):
            assert (runs["optimal"].response.mean
                    <= runs[name].response.mean)
            assert (runs["optimal"].metrics.write_amplification
                    <= runs[name].metrics.write_amplification + 1e-9)

    def test_tpftl_response_not_worse_than_dftl(self, runs):
        assert (runs["tpftl"].response.mean
                <= runs["dftl"].response.mean)
