"""The TP2xx domain/unit pass: lattice, seeding, rules, escapes.

Exercises the abstract-interpretation layer on small in-memory
programs via ``analyze_source`` (which runs TP1xx + TP2xx; the
snippets here are crafted to stay TP1xx-clean so every finding is a
domain finding), plus unit tests for the lattice operators and the
name-seeding heuristics.
"""

import pytest

from repro.analysis.flow import analyze_source
from repro.analysis.flow.domains import (
    BLOCK, BYTES, CONFLICT, LPN, PAGE_OFFSET, PAGES, PPN, TIME_MS,
    TIME_US, UNKNOWN, VPN, _clash, _join, _soft_join, domain_from_name)


def _findings(source):
    return analyze_source(source)


def _rules(source):
    return [f.rule for f in _findings(source)]


# ----------------------------------------------------------------------
# Lattice operators
# ----------------------------------------------------------------------
def test_join_unknown_is_bottom():
    assert _join(UNKNOWN, LPN) == LPN
    assert _join(LPN, UNKNOWN) == LPN
    assert _join(LPN, LPN) == LPN


def test_join_clash_is_conflict_and_conflict_absorbs():
    assert _join(LPN, PPN) == CONFLICT
    assert _join(CONFLICT, LPN) == CONFLICT


def test_soft_join_demotes_clashes_to_unknown():
    """Expression joins (ternaries, may-callee returns) must not
    manufacture CONFLICT out of honest polymorphism."""
    assert _soft_join(LPN, PPN) == UNKNOWN
    assert _soft_join(LPN, LPN) == LPN
    assert _soft_join(UNKNOWN, TIME_US) == TIME_US


@pytest.mark.parametrize("a,b,category", [
    (TIME_US, TIME_MS, "time"),
    (BYTES, PAGES, "count"),
    (LPN, PPN, "address"),
    (LPN, TIME_US, "mixed"),
    (PAGE_OFFSET, BYTES, "mixed"),
    (PAGE_OFFSET, LPN, None),      # offsets increment addresses
    (LPN, PAGES, None),            # address vs count: bounds checks
    (LPN, UNKNOWN, None),
    (CONFLICT, PPN, None),
    (LPN, LPN, None),
])
def test_clash_categories(a, b, category):
    assert _clash(a, b) == category
    assert _clash(b, a) == category


# ----------------------------------------------------------------------
# Name seeding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,expected", [
    ("lpn", LPN), ("victim_lpn", LPN), ("lpns", LPN),
    ("ppn", PPN), ("ptpn", PPN), ("old_ppn", PPN),
    ("vtpn", VPN), ("mvpn", VPN),
    ("lbn", BLOCK), ("block", BLOCK),
    ("offset", PAGE_OFFSET),
    ("service_us", TIME_US), ("arrival", TIME_US),
    ("response_ms", TIME_MS),
    ("nbytes", BYTES), ("budget_bytes", BYTES),
    ("capacity_entries", PAGES), ("npages", PAGES),
    ("UNMAPPED", UNKNOWN),         # constants are domain-neutral
    ("PPN_BYTES", UNKNOWN),
    ("bytes_per_entry", UNKNOWN),  # ratios are unitless
    ("lpn_to_ppn", UNKNOWN),       # two domains -> no single hint
    ("value", UNKNOWN),
])
def test_domain_from_name(name, expected):
    assert domain_from_name(name) == expected


# ----------------------------------------------------------------------
# TP201: cross-domain argument/store flow
# ----------------------------------------------------------------------
_FLASH = (
    "class Flash:\n"
    "    def invalidate(self, ppn):\n"
    "        self.last_dead = ppn\n\n\n")


def test_tp201_lpn_into_ppn_parameter():
    source = _FLASH + (
        "class FTL:\n"
        "    def __init__(self):\n"
        "        self.flash = Flash()\n\n"
        "    def serve(self, lpn):\n"
        "        self.flash.invalidate(lpn)\n")
    assert _rules(source) == ["TP201"]


def test_tp201_interprocedural_return_propagation():
    """flash_table loads yield PPNs; that inferred return domain must
    flow through an unannotated helper into the index position."""
    source = (
        "class FTL:\n"
        "    def __init__(self):\n"
        "        self.flash_table = {}\n\n"
        "    def translate(self, lpn):\n"
        "        found = self.flash_table[lpn]\n"
        "        return found\n\n"
        "    def stamp(self, lpn):\n"
        "        self.flash_table[self.translate(lpn)] = 0\n")
    findings = _findings(source)
    assert [f.rule for f in findings] == ["TP201"]
    assert "flash_table" in findings[0].message


def test_tp201_name_hinted_store_clash():
    source = (
        "def alias(lpn):\n"
        "    ppn = lpn\n"
        "    return ppn\n")
    assert _rules(source) == ["TP201"]


def test_polymorphic_parameters_stay_silent():
    """Unpinned params (generic containers) serve several domains;
    inference joins to CONFLICT and must not report."""
    source = (
        "class LRU:\n"
        "    def get(self, key):\n"
        "        return key\n\n\n"
        "class Caches:\n"
        "    def __init__(self):\n"
        "        self.lru = LRU()\n\n"
        "    def by_lpn(self, lpn):\n"
        "        return self.lru.get(lpn)\n\n"
        "    def by_vtpn(self, vtpn):\n"
        "        return self.lru.get(vtpn)\n")
    assert _rules(source) == []


# ----------------------------------------------------------------------
# TP202 / TP203 / TP204: arithmetic and comparisons
# ----------------------------------------------------------------------
def test_tp202_comparison_across_address_domains():
    assert _rules("def same(lpn, ppn):\n"
                  "    return lpn == ppn\n") == ["TP202"]


def test_tp203_time_unit_arithmetic():
    assert _rules("def total(service_us, delay_ms):\n"
                  "    return service_us + delay_ms\n") == ["TP203"]


def test_tp204_bytes_vs_entries_arithmetic():
    assert _rules("def slack(budget_bytes, nentries):\n"
                  "    return budget_bytes - nentries\n") == ["TP204"]


def test_offset_increments_are_transparent():
    """base + offset is pointer arithmetic, not a domain clash, and
    the sum keeps the address domain."""
    source = (
        "def span(first_lpn, offset):\n"
        "    lpn = first_lpn + offset\n"
        "    return lpn\n")
    assert _rules(source) == []


def test_address_vs_count_bounds_check_allowed():
    assert _rules("def in_range(lpn, npages):\n"
                  "    return lpn < npages\n") == []


# ----------------------------------------------------------------------
# Conversion escapes
# ----------------------------------------------------------------------
def test_multiplicative_ops_launder_domains():
    """Scaling is how units convert; * and // always yield UNKNOWN
    and the assignment-target name re-types the result."""
    source = (
        "def capacity(budget_bytes, entry_bytes):\n"
        "    entries = budget_bytes // entry_bytes\n"
        "    return entries\n")
    assert _rules(source) == []


def test_conversion_helper_launders():
    source = _FLASH + (
        "def to_ppn(value):\n"
        "    return value\n\n\n"
        "class FTL:\n"
        "    def __init__(self):\n"
        "        self.flash = Flash()\n\n"
        "    def serve(self, lpn):\n"
        "        self.flash.invalidate(to_ppn(lpn))\n")
    assert _rules(source) == []


def test_domain_pragma_retypes_and_suppresses():
    source = (
        "def alias(lpn):\n"
        "    ppn = lpn  # tp: domain(ppn)\n"
        "    return ppn\n")
    assert _rules(source) == []


def test_allow_pragma_suppresses_domain_findings():
    source = _FLASH + (
        "class FTL:\n"
        "    def __init__(self):\n"
        "        self.flash = Flash()\n\n"
        "    def serve(self, lpn):\n"
        "        self.flash.invalidate(lpn)  # tp: allow=TP201 - xxx\n")
    assert _rules(source) == []
